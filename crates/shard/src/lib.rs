//! **mmdb-shard** — hash-partitioned sharding over the mmdb engine.
//!
//! [`ShardedMmdb`] splits the record space across `N` independent
//! [`Mmdb`] engines. Each shard owns its *own* REDO log, its own
//! ping-pong backup pair, and (in the server) its own dedicated
//! checkpointer thread — so checkpoint work on shard *i* never blocks
//! transactions on shard *j*. This is the scale-out reading of the
//! paper's segment model: where a segment is the granule of
//! *checkpointer* independence inside one engine, a shard is the granule
//! of *whole-subsystem* independence (log + backups + checkpointer),
//! with the same partial-checkpoint logic running per shard.
//!
//! ## Partitioning
//!
//! Records hash by id: global record `r` lives on shard `r % N`, at
//! local id `r / N` (round-robin striping, so contiguous global ranges
//! spread evenly). Each shard's database is sized to `ceil(R/N)` records
//! rounded up to whole segments, so every shard is a fully valid
//! standalone engine directory.
//!
//! ## Routing
//!
//! The router classifies each transaction:
//!
//! * **single-shard** (fast path): lock that one shard, run the
//!   transaction on it. Shards never interact.
//! * **cross-shard**: acquire the participating shard locks in
//!   ascending index order (deadlock-free), then run two-phase commit
//!   over the per-shard logs: prepare every branch (forced `Prepare`
//!   record), force a `Decide` record on the lowest participating shard
//!   (the commit point), commit every prepared branch, release the
//!   locks in reverse order. No torn cross-shard state is ever logged:
//!   until the decision is durable, every branch is in-doubt and
//!   recovery resolves it by presumed abort.
//!
//! ## Group commit
//!
//! Under [`CommitDurability::Group`] the router splits every commit into
//! *append* and *wait*: the engine appends the commit record (no force)
//! and the router releases the shard mutex, signals the shard's
//! dedicated log-flusher thread, and parks on the log's durable-LSN
//! watermark until a batched force covers the commit's end-LSN. One real
//! `fsync` thus acks every commit that arrived while the previous force
//! was in flight — same durability contract as per-commit forcing
//! (nothing is acked before it is on disk), a fraction of the forces.
//! The flusher completes each force (modeled latency, watermark publish)
//! *outside* the engine lock, so committers on other connections run
//! concurrently with the device write.
//!
//! ## Recovery
//!
//! [`ShardedMmdb::open_dir`] replays all shard logs in parallel (one
//! thread per shard), pools the `Decide` records every shard saw, and
//! resolves each in-doubt prepared branch: commit if *any* shard's log
//! window carries `Decide{gid, commit: true}`, otherwise presumed
//! abort. Resolution re-installs the branch's after-images as a fresh
//! committed transaction, which is idempotent across repeated crashes.

use mmdb_audit::{Audit, AuditEvent, AuditViolation};
use mmdb_core::{
    CheckpointStart, CkptReport, CommitDurability, CompactReport, DurableWatermark, LogMode, Mmdb,
    MmdbConfig, ReadMirror, RecoveryReport, ShipTap, StepOutcome, TxnRun, DEFAULT_TAP_WINDOW_BYTES,
};
use mmdb_obs::{to_prometheus_sharded, MetricsSnapshot, Obs};
use mmdb_sync::{
    leak_name, LockRank, RankedCondvar, RankedGuard, RankedMutex, RankedRwLock, RankedRwReadGuard,
    RankedRwWriteGuard,
};
use mmdb_types::{DbParams, Lsn, MmdbError, RecordId, Result, TxnId, Word};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Name of the topology marker file written at the root of a sharded
/// directory (each shard's own data lives under `shard.<i>/`).
pub const TOPOLOGY_FILE: &str = "shards";

/// Upper bound on the shard count — a sanity rail, not a real limit.
pub const MAX_SHARDS: usize = 1024;

/// Shape of one shard's database: per-shard capacity is `ceil(R/N)`
/// records rounded up to whole segments, so each shard is a valid
/// standalone engine (`s_db % s_seg == 0` by construction).
pub fn shard_db_params(global: &DbParams, shards: usize) -> DbParams {
    let recs_per_seg = global.records_per_segment().max(1);
    let recs_per_shard = global.n_records().div_ceil(shards as u64).max(1);
    let segs = recs_per_shard.div_ceil(recs_per_seg).max(1);
    DbParams {
        s_db: segs * global.s_seg,
        s_rec: global.s_rec,
        s_seg: global.s_seg,
    }
}

/// The configuration each shard engine runs with: the global
/// configuration with the database shrunk to the shard's slice (and the
/// model's per-transaction record count clamped to what fits).
pub fn shard_config(global: &MmdbConfig, shards: usize) -> MmdbConfig {
    let mut cfg = *global;
    cfg.params.db = shard_db_params(&global.params.db, shards);
    cfg.params.txn.n_ru = cfg
        .params
        .txn
        .n_ru
        .min(cfg.params.db.n_records() as u32)
        .max(1);
    cfg
}

/// Report of one coordinated sharded recovery.
#[derive(Debug, Clone, Default)]
pub struct ShardedRecovery {
    /// Per-shard engine recovery reports (`None` for a freshly created
    /// shard with no backup yet).
    pub shards: Vec<Option<RecoveryReport>>,
    /// In-doubt prepared branches resolved as committed (a `Decide`
    /// record with `commit: true` was found on some shard's log).
    pub in_doubt_committed: u64,
    /// In-doubt prepared branches resolved by presumed abort.
    pub in_doubt_aborted: u64,
}

/// One interactive (wire-level) transaction's router state: unbound
/// until the first record it touches picks its shard.
#[derive(Debug, Clone, Copy)]
struct Binding {
    /// `(shard index, shard-local transaction id)` once bound.
    bound: Option<(usize, TxnId)>,
}

/// The state shared between the router and the per-shard log-flusher
/// threads: the engines themselves plus each shard's flush signal.
struct ShardCore {
    /// Shard `i`'s engine gate carries rank `engine(i)`: ascending index
    /// order (the 2PC discipline) is strictly descending rank, so the
    /// debug-build detector proves every interleaving deadlock-free.
    ///
    /// The gate is a reader/writer lock whose **exclusive** acquisition
    /// is named `lock()` — every pre-existing path (checkpointer,
    /// recovery, 2PC, quiesce, maintenance) takes it and keeps exactly
    /// the semantics it had under the old mutex. **Shared** acquisition
    /// (`read()`) admits concurrent single-shard committers and
    /// lock-free-read fallbacks, which reach only the engine's
    /// interior-locked state (see `DESIGN.md` §6.10).
    shards: Vec<RankedRwLock<Mmdb>>,
    /// One flush signal per shard: committers set `pending` and notify;
    /// the shard's flusher consumes it and forces the log.
    flush: Vec<FlushSignal>,
    /// Set by [`FlusherPool::drop`]; flushers run one final drain force
    /// and exit.
    stop: AtomicBool,
}

impl ShardCore {
    /// Exclusive access to shard `i` — the single choke point every
    /// `&mut Mmdb` path funnels through. Queued shared-mode installs are
    /// copied back into the authoritative segments *here*, so exclusive
    /// holders (checkpointer, recovery, 2PC, fsck) always see
    /// fully-synced segment data and metadata.
    #[track_caller]
    fn lock(&self, i: usize) -> RankedRwWriteGuard<'_, Mmdb> {
        let mut g = self.shards[i].lock();
        g.sync_pending();
        g
    }

    /// Shared access to shard `i` (concurrent single-shard committers).
    #[track_caller]
    fn read(&self, i: usize) -> RankedRwReadGuard<'_, Mmdb> {
        self.shards[i].read()
    }
}

/// A committer-to-flusher doorbell (one per shard). Alongside the
/// pending bit it carries the trace id of the most recent traced ringer,
/// so the flusher's batched force can be attributed to the request that
/// triggered it.
struct FlushSignal {
    pending: RankedMutex<(bool, u64)>,
    cv: RankedCondvar,
}

impl FlushSignal {
    fn new(shard: usize) -> FlushSignal {
        FlushSignal {
            pending: RankedMutex::new(
                leak_name(format!("flusher_signal.{shard}")),
                LockRank::flusher_signal(shard),
                (false, 0),
            ),
            cv: RankedCondvar::new(),
        }
    }

    fn ring(&self, trace_id: u64) {
        let mut pending = self.pending.lock();
        pending.0 = true;
        if trace_id != 0 {
            pending.1 = trace_id;
        }
        self.cv.notify_one();
    }
}

/// The per-shard log-flusher threads (group commit only; inert
/// otherwise). Dropping the pool stops and joins them — a final drain
/// force runs first, so no signaled commit is left unforced.
struct FlusherPool {
    core: Option<Arc<ShardCore>>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl FlusherPool {
    fn inert() -> FlusherPool {
        FlusherPool {
            core: None,
            joins: Vec::new(),
        }
    }

    fn spawn(
        core: &Arc<ShardCore>,
        watermarks: &[Arc<DurableWatermark>],
        obs: &Obs,
    ) -> FlusherPool {
        let joins = (0..core.shards.len())
            .map(|shard| {
                let core = Arc::clone(core);
                let watermark = Arc::clone(&watermarks[shard]);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("mmdb-flush-{shard}"))
                    .spawn(move || flusher_loop(&core, shard, &watermark, &obs))
                    .unwrap_or_else(|e| panic!("cannot spawn log flusher: {e}"))
            })
            .collect();
        FlusherPool {
            core: Some(Arc::clone(core)),
            joins,
        }
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        if let Some(core) = &self.core {
            core.stop.store(true, Ordering::SeqCst);
            for sig in &core.flush {
                sig.cv.notify_all();
            }
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        self.core = None;
    }
}

/// The flusher's idle tick: a backstop force when no doorbell arrives
/// (lost wakeups cannot happen with correct signaling; this bounds the
/// damage if a non-router writer appends without ringing).
const FLUSH_BACKSTOP: Duration = Duration::from_millis(20);

/// How long a group committer waits for its ack before giving up. With a
/// live flusher the wait is one force (microseconds to milliseconds);
/// hitting this bound means the flusher died or the device hung.
const GROUP_ACK_TIMEOUT: Duration = Duration::from_secs(30);

/// Accumulation window between the doorbell and the force: commits that
/// arrive while a force is in flight batch naturally, but on a fast
/// device the force is too quick for much to gather — most committers
/// are still parked on the shard mutex or in the network stack when it
/// completes. Pausing a beat after the first ring lets them append
/// first, trading a bounded latency bump for a much larger group — the
/// classic group-commit timer. Small against even a fast fsync, so the
/// single-committer latency cost stays in the noise.
const GROUP_ACCUMULATION_WINDOW: Duration = Duration::from_micros(200);

/// Optimistic-read retry budget before a point read falls back to the
/// exclusive-locked path. A failed attempt means a writer was mid-copy
/// on that exact record (nanoseconds) or crash/recovery closed the
/// mirror gate (the fallback path then reports the real state).
const LOCKFREE_READ_RETRIES: usize = 8;

/// One shard's group-commit log flusher: park on the doorbell, force the
/// tail under the engine lock, then *release the lock* and complete the
/// force (modeled device latency + watermark publish). Commits that
/// arrive during the completion are batched into the next force.
fn flusher_loop(core: &Arc<ShardCore>, shard: usize, watermark: &Arc<DurableWatermark>, obs: &Obs) {
    let mut last_force: Option<std::time::Instant> = None;
    loop {
        let trace_id;
        {
            let sig = &core.flush[shard];
            let mut pending = sig.pending.lock();
            if !pending.0 && !core.stop.load(Ordering::SeqCst) {
                let (guard, _) = sig.cv.wait_timeout(pending, FLUSH_BACKSTOP);
                pending = guard;
            }
            pending.0 = false;
            trace_id = pending.1;
            pending.1 = 0;
        }
        // Read the stop flag *before* forcing: anything signaled before
        // stop is covered by this final drain force.
        let stopping = core.stop.load(Ordering::SeqCst);
        if !stopping {
            std::thread::sleep(GROUP_ACCUMULATION_WINDOW);
        }
        let t = obs.timer();
        match core.lock(shard).force_log_group() {
            Ok(Some(pending_force)) => {
                let commits = pending_force.commits();
                obs.counter("log.group_commit.forces", 1);
                obs.counter("log.group_commit.commits", commits);
                obs.observe("log.group_commit.size", commits);
                if let Some(prev) = last_force {
                    obs.observe_duration_us("log.group_commit.interval_us", prev.elapsed());
                }
                last_force = Some(std::time::Instant::now());
                // The engine lock dropped above; the modeled latency and
                // the watermark publish run here, off the critical path.
                pending_force.complete();
                // The batched force on the flusher thread, tagged with
                // the latest ringer's trace id so `trace --remote` can
                // tie it back to the commit that triggered it.
                obs.phase_for_trace("group.force", t, commits, trace_id);
            }
            Ok(None) => {}
            Err(e) => {
                obs.counter("log.group_commit.force_errors", 1);
                watermark.fail(format!("group-commit force failed on shard {shard}: {e}"));
            }
        }
        if stopping {
            return;
        }
    }
}

/// How long a semi-synchronous committer waits for a standby's ack
/// before failing the commit. Generous against network hiccups, but
/// bounded: a dead standby must not wedge the primary forever.
const REPL_ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// The semi-synchronous replication gate: one watermark per shard
/// tracking the highest log LSN any standby has durably applied.
///
/// The gate is always constructed (it is a few atomics) but inert until
/// *both* switches flip: the server enables `sync` when started with
/// semi-synchronous replication, and the first standby hello `engage`s
/// it. Until then commits ack at local durability exactly as before —
/// so a primary configured for semi-sync still serves writes while its
/// standby is (re)connecting, mirroring the paper's stance that the
/// backup's freshness is a recovery-cost knob, not a liveness
/// dependency.
pub struct ReplGate {
    /// Per-shard standby-acknowledged LSN (maximum over standbys; with
    /// one standby, exactly its applied position).
    acks: Vec<Arc<DurableWatermark>>,
    /// Per-shard log-truncation pins (raw LSNs), shared with each shard
    /// engine once ship taps are enabled: auto-truncation never cuts at
    /// or above the pin, and standby acks raise it — replication-slot
    /// semantics, so the checkpointer can never outrun the shipper.
    pins: Vec<Arc<AtomicU64>>,
    /// Commits wait for a standby ack (server `--repl-sync`).
    sync: AtomicBool,
    /// At least one standby has said hello on this incarnation.
    engaged: AtomicBool,
}

impl ReplGate {
    fn new(shards: usize) -> Arc<ReplGate> {
        Arc::new(ReplGate {
            acks: (0..shards)
                .map(|_| Arc::new(DurableWatermark::new(Lsn::ZERO)))
                .collect(),
            pins: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            sync: AtomicBool::new(false),
            engaged: AtomicBool::new(false),
        })
    }

    /// Turns semi-synchronous commit on: once a standby engages, every
    /// commit also waits for its ack.
    pub fn set_sync(&self, on: bool) {
        self.sync.store(on, Ordering::SeqCst);
    }

    /// Marks a standby as attached (called on `ReplHello`).
    pub fn engage(&self) {
        self.engaged.store(true, Ordering::SeqCst);
    }

    /// True once any standby has attached.
    pub fn is_engaged(&self) -> bool {
        self.engaged.load(Ordering::SeqCst)
    }

    /// Publishes a standby's acknowledged LSN for `shard`, releasing
    /// semi-sync committers parked at or below it and raising the
    /// shard's truncation pin (the log below the ack may now go).
    /// Monotone.
    pub fn advance(&self, shard: usize, acked: Lsn) {
        self.acks[shard].advance(acked);
        self.pins[shard].fetch_max(acked.raw(), Ordering::SeqCst);
    }

    /// The highest acknowledged LSN for `shard`.
    pub fn acked(&self, shard: usize) -> Lsn {
        self.acks[shard].get()
    }

    fn should_wait(&self) -> bool {
        self.sync.load(Ordering::SeqCst) && self.engaged.load(Ordering::SeqCst)
    }
}

/// A hash-partitioned database: `N` independent engines behind one
/// record-id space, with per-shard locking and two-phase cross-shard
/// commit. All methods take `&self`; locking is internal and per-shard.
pub struct ShardedMmdb {
    core: Arc<ShardCore>,
    /// Each shard's seqlock read mirror (cloned from its engine at
    /// construction): point reads consult it without touching the shard
    /// gate at all. The handle stays valid across crash and recovery —
    /// the mirror gate closes while content is rebuilt, failing reads
    /// over to the locked path.
    mirrors: Vec<Arc<ReadMirror>>,
    /// When false, point reads skip the mirror and take the shard gate —
    /// the forced-locked baseline the intra-shard bench sweeps against.
    lockfree_reads: AtomicBool,
    /// Each shard's durable-LSN watermark (cloned from its log at
    /// construction; group committers wait here).
    watermarks: Vec<Arc<DurableWatermark>>,
    /// True when commits take the group path: append, release the shard
    /// lock, signal the flusher, wait on the watermark. Requires
    /// [`CommitDurability::Group`] *and* a volatile tail (a stable tail
    /// is durable on append — nothing to wait for).
    group: bool,
    /// Per-shard flusher threads (inert unless `group`). Declared after
    /// `core` only by convention; its `Drop` joins the threads, after
    /// which [`ShardedMmdb::into_engines`] can unwrap `core`.
    flushers: FlusherPool,
    config: MmdbConfig,
    n_records: u64,
    record_words: usize,
    /// Global-transaction-id source for cross-shard 2PC (`gid` in the
    /// log's `Prepare`/`Decide` records). Seeded past every gid seen in
    /// any shard's recovery window, so decisions are never confused
    /// across incarnations.
    next_gid: AtomicU64,
    /// Id source for interactive (wire-level) transactions. These ids
    /// live in the router's namespace, not any engine's.
    next_txn: AtomicU64,
    open_txns: RankedMutex<HashMap<u64, Binding>>,
    audit: Audit,
    obs: Obs,
    /// The semi-sync replication gate (inert unless the server enables
    /// it and a standby attaches).
    repl: Arc<ReplGate>,
    /// Per-shard log-shipping taps, attached lazily by
    /// [`ShardedMmdb::enable_ship_taps`] when the server runs as a
    /// replication primary.
    taps: OnceLock<Vec<Arc<ShipTap>>>,
}

impl std::fmt::Debug for ShardedMmdb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMmdb")
            .field("shards", &self.core.shards.len())
            .field("n_records", &self.n_records)
            .finish()
    }
}

impl ShardedMmdb {
    // ----- construction ----------------------------------------------------

    /// A sharded database over in-memory devices (tests, examples).
    pub fn open_in_memory(config: MmdbConfig, shards: usize) -> Result<ShardedMmdb> {
        validate_shards(&config, shards)?;
        let scfg = shard_config(&config, shards);
        let mut engines = Vec::with_capacity(shards);
        for _ in 0..shards {
            engines.push(Mmdb::open_in_memory(scfg)?);
        }
        Ok(Self::assemble(config, engines))
    }

    /// A sharded database over file devices: each shard is a standalone
    /// engine directory `dir/shard.<i>/`, and a topology marker at the
    /// root pins the shard count. Shard logs are replayed in parallel
    /// (one recovery thread per shard) and in-doubt cross-shard branches
    /// are resolved from the pooled decision records.
    pub fn open_dir(
        config: MmdbConfig,
        dir: &Path,
        shards: usize,
    ) -> Result<(ShardedMmdb, ShardedRecovery)> {
        validate_shards(&config, shards)?;
        std::fs::create_dir_all(dir)?;
        check_topology_marker(dir, shards)?;

        let scfg = shard_config(&config, shards);
        let mut opened: Vec<Result<(Mmdb, Option<RecoveryReport>)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(shards);
            for i in 0..shards {
                let shard_dir = dir.join(format!("shard.{i}"));
                joins.push(scope.spawn(move || Mmdb::open_dir(scfg, &shard_dir)));
            }
            for j in joins {
                opened.push(j.join().unwrap_or_else(|_| {
                    Err(MmdbError::Invalid("shard recovery thread panicked".into()))
                }));
            }
        });
        let mut engines = Vec::with_capacity(shards);
        let mut reports = Vec::with_capacity(shards);
        for r in opened {
            let (engine, report) = r?;
            engines.push(engine);
            reports.push(report);
        }

        let db = Self::assemble(config, engines);
        let recovery = db.resolve_in_doubt(reports)?;
        Ok((db, recovery))
    }

    /// Wraps one existing engine as a 1-shard database. Global and local
    /// record ids coincide, and the router reuses the engine's audit and
    /// telemetry handles, so an unsharded server keeps its exact
    /// pre-sharding observability surface.
    pub fn from_single(db: Mmdb) -> ShardedMmdb {
        let config = *db.config();
        let audit = db.audit().clone();
        let obs = db.obs().clone();
        let n_records = db.n_records();
        let record_words = db.record_words();
        Self::build(config, vec![db], audit, obs, n_records, record_words)
    }

    /// Wraps caller-constructed engines (one per shard, each shaped by
    /// [`shard_config`]) as a sharded database. The fault-injection
    /// tests' entry point: it lets a shard run over e.g. a
    /// [`mmdb_core::FlakyLogDevice`].
    pub fn from_engines(config: MmdbConfig, engines: Vec<Mmdb>) -> Result<ShardedMmdb> {
        validate_shards(&config, engines.len())?;
        Ok(Self::assemble(config, engines))
    }

    fn assemble(config: MmdbConfig, engines: Vec<Mmdb>) -> ShardedMmdb {
        let audit = if config.audit {
            Audit::enabled()
        } else {
            Audit::disabled()
        };
        let obs = if config.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let n_records = config.params.db.n_records();
        let record_words = config.params.db.s_rec as usize;
        Self::build(config, engines, audit, obs, n_records, record_words)
    }

    fn build(
        config: MmdbConfig,
        engines: Vec<Mmdb>,
        audit: Audit,
        obs: Obs,
        n_records: u64,
        record_words: usize,
    ) -> ShardedMmdb {
        let group = config.commit_durability == CommitDurability::Group
            && config.params.log_mode == LogMode::VolatileTail;
        let watermarks: Vec<Arc<DurableWatermark>> =
            engines.iter().map(Mmdb::log_watermark).collect();
        let mirrors: Vec<Arc<ReadMirror>> = engines.iter().map(Mmdb::read_mirror).collect();
        let n = engines.len();
        let core = Arc::new(ShardCore {
            shards: engines
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    RankedRwLock::new(leak_name(format!("engine.{i}")), LockRank::engine(i), e)
                })
                .collect(),
            flush: (0..n).map(FlushSignal::new).collect(),
            stop: AtomicBool::new(false),
        });
        let open_txns = RankedMutex::new("router.txns", LockRank::ROUTER_TXNS, HashMap::new());
        // Contended acquisitions of every router-owned lock surface as
        // `sync.<name>.*` metrics on the router's registry.
        if let Some(sink) = obs.contention_sink() {
            for m in &core.shards {
                m.set_sink(Arc::clone(&sink));
            }
            for sig in &core.flush {
                sig.pending.set_sink(Arc::clone(&sink));
            }
            open_txns.set_sink(sink);
        }
        let flushers = if group {
            FlusherPool::spawn(&core, &watermarks, &obs)
        } else {
            FlusherPool::inert()
        };
        let db = ShardedMmdb {
            repl: ReplGate::new(n),
            taps: OnceLock::new(),
            core,
            mirrors,
            lockfree_reads: AtomicBool::new(true),
            watermarks,
            group,
            flushers,
            config,
            n_records,
            record_words,
            next_gid: AtomicU64::new(1),
            next_txn: AtomicU64::new(1),
            open_txns,
            audit,
            obs,
        };
        db.audit.emit(|| AuditEvent::ShardTopology { shards: n });
        db
    }

    /// Pools decision records across every shard's recovery window and
    /// finishes each in-doubt prepared branch: re-install its
    /// after-images as a fresh committed transaction if some shard saw
    /// `Decide{gid, commit: true}`, otherwise presume abort (nothing to
    /// do — a prepared branch installs nothing until committed).
    fn resolve_in_doubt(&self, reports: Vec<Option<RecoveryReport>>) -> Result<ShardedRecovery> {
        let mut decisions: HashMap<u64, bool> = HashMap::new();
        let mut max_gid = 0u64;
        for report in reports.iter().flatten() {
            for &(gid, commit) in &report.decisions {
                let d = decisions.entry(gid).or_insert(false);
                *d = *d || commit;
            }
            max_gid = max_gid.max(report.max_gid);
        }
        self.next_gid.store(max_gid + 1, Ordering::SeqCst);

        let mut committed = 0u64;
        let mut aborted = 0u64;
        for (i, report) in reports.iter().enumerate() {
            let Some(report) = report else { continue };
            for entry in &report.in_doubt {
                if decisions.get(&entry.gid).copied().unwrap_or(false) {
                    // Writes are absolute after-images in shard-local id
                    // space: replaying them as a fresh transaction is
                    // idempotent across repeated recoveries. The flushers
                    // are not guaranteed running yet, so under group
                    // commit the resolution is forced inline.
                    {
                        let mut g = self.lock(i);
                        g.run_txn(&entry.writes)?;
                        if self.group {
                            g.force_log()?;
                        }
                    }
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
        }
        self.obs.counter("router.indoubt_committed", committed);
        self.obs.counter("router.indoubt_aborted", aborted);
        Ok(ShardedRecovery {
            shards: reports,
            in_doubt_committed: committed,
            in_doubt_aborted: aborted,
        })
    }

    // ----- topology & accessors --------------------------------------------

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Total records across the whole database (global id space).
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Words per record.
    pub fn record_words(&self) -> usize {
        self.record_words
    }

    /// The global configuration (per-shard engines run
    /// [`shard_config`] of this).
    pub fn config(&self) -> &MmdbConfig {
        &self.config
    }

    /// The router's telemetry handle (the engine handles live per
    /// shard; a 1-shard [`ShardedMmdb::from_single`] shares this with
    /// its engine).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The router's audit handle (shard-routing invariants are checked
    /// here; each engine audits its own protocol invariants).
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// Which shard a global record id lives on.
    pub fn shard_of(&self, rid: RecordId) -> Result<usize> {
        if rid.raw() >= self.n_records {
            return Err(MmdbError::RecordOutOfRange {
                record: rid,
                n_records: self.n_records,
            });
        }
        Ok((rid.raw() % self.shards() as u64) as usize)
    }

    /// A global record id's shard-local id.
    pub fn local_rid(&self, rid: RecordId) -> RecordId {
        RecordId(rid.raw() / self.shards() as u64)
    }

    /// Locks shard `i` exclusively, recording the acquisition wait as an
    /// `engine.lock_wait` phase (a child of the active request scope,
    /// when the calling thread is dispatching one).
    #[track_caller]
    fn lock(&self, i: usize) -> RankedRwWriteGuard<'_, Mmdb> {
        let t = self.obs.timer();
        let g = self.core.lock(i);
        self.obs.phase_detail("engine.lock_wait", t, i as u64);
        g
    }

    /// Takes shard `i`'s gate **shared** — the concurrent single-shard
    /// commit path. Shared holders coexist with each other (and with
    /// lock-free mirror readers, which take nothing at all) but exclude
    /// every `&mut` path.
    #[track_caller]
    fn read_shard(&self, i: usize) -> RankedRwReadGuard<'_, Mmdb> {
        let t = self.obs.timer();
        let g = self.core.read(i);
        self.obs.phase_detail("engine.lock_wait", t, i as u64);
        g
    }

    /// Rings shard `i`'s flusher doorbell (group commit only — a no-op
    /// signal otherwise, but callers gate on `self.group` anyway),
    /// tagging it with the calling request's trace id so the flusher's
    /// batched force is attributable to the commit that triggered it.
    fn signal_flush(&self, i: usize) {
        self.core.flush[i].ring(mmdb_obs::current_trace_id());
    }

    /// Parks the calling committer until shard `i`'s durable-LSN
    /// watermark covers `lsn`. `Lsn::ZERO` is vacuously durable (the
    /// marker for "this commit was already forced" — e.g. a 2PC branch).
    fn wait_durable(&self, i: usize, lsn: Lsn) -> Result<()> {
        if lsn == Lsn::ZERO {
            return Ok(());
        }
        let t = self.obs.timer();
        if self.watermarks[i].wait_for(lsn, GROUP_ACK_TIMEOUT)? {
            self.obs
                .phase_hist("group.wait", "router.group_wait_ns", t, i as u64);
            Ok(())
        } else {
            Err(MmdbError::Invalid(format!(
                "group-commit ack timed out after {GROUP_ACK_TIMEOUT:?} waiting for {lsn} \
                 on shard {i} (flusher stalled?)"
            )))
        }
    }

    /// Parks a semi-synchronous committer until a standby acknowledges
    /// `lsn` on shard `i`. A no-op unless the gate is both enabled
    /// (server semi-sync) and engaged (a standby attached); bounded by
    /// [`REPL_ACK_TIMEOUT`] so a dead standby fails commits instead of
    /// wedging them.
    fn repl_wait(&self, i: usize, lsn: Lsn) -> Result<()> {
        if lsn == Lsn::ZERO || !self.repl.should_wait() {
            return Ok(());
        }
        let t = self.obs.timer();
        if self.repl.acks[i].wait_for(lsn, REPL_ACK_TIMEOUT)? {
            self.obs.phase_detail("repl.sync_wait", t, i as u64);
            Ok(())
        } else {
            Err(MmdbError::Invalid(format!(
                "semi-sync replication ack timed out after {REPL_ACK_TIMEOUT:?} waiting for \
                 {lsn} on shard {i} (standby down?)"
            )))
        }
    }

    /// The replication gate (semi-sync ack watermarks). Servers wire
    /// standby acks into it; it is inert otherwise.
    pub fn repl_gate(&self) -> &Arc<ReplGate> {
        &self.repl
    }

    /// Attaches a log-shipping tap to every shard engine (idempotent).
    /// From here on, each force feeds its freshly durable bytes into the
    /// shard's tap, so the replication shipper serves standbys without a
    /// second device read. Called by the server when it starts as a
    /// replication primary.
    pub fn enable_ship_taps(&self) {
        self.taps.get_or_init(|| {
            (0..self.shards())
                .map(|i| {
                    let tap = self.with_shard(i, |e| {
                        let tap = ShipTap::new(
                            leak_name(format!("ship_tap.{i}")),
                            e.log_durable_lsn(),
                            DEFAULT_TAP_WINDOW_BYTES,
                        );
                        e.set_ship_tap(Arc::clone(&tap));
                        // Pin truncation at the shard's current log
                        // start (under the shard lock, so no checkpoint
                        // races the seed): from here on the standby's
                        // acks decide what the checkpointer may cut.
                        let pin = &self.repl.pins[i];
                        pin.fetch_max(e.log_start_lsn().raw(), Ordering::SeqCst);
                        e.set_repl_truncate_pin(Arc::clone(pin));
                        tap
                    });
                    tap
                })
                .collect()
        });
    }

    /// Shard `i`'s log-shipping tap, if [`ShardedMmdb::enable_ship_taps`]
    /// has run.
    pub fn ship_tap(&self, i: usize) -> Option<&Arc<ShipTap>> {
        self.taps.get().map(|taps| &taps[i])
    }

    /// Runs `f` with shard `i` locked — the access path for per-shard
    /// checkpointer threads and maintenance.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&mut Mmdb) -> R) -> R {
        f(&mut self.lock(i))
    }

    /// Tears the router down and returns the shard engines in index
    /// order. Flusher threads are stopped and joined first (with a final
    /// drain force), so no `ShardCore` clone outlives the router.
    pub fn into_engines(self) -> Vec<Mmdb> {
        let ShardedMmdb { core, flushers, .. } = self;
        drop(flushers);
        let core = Arc::try_unwrap(core)
            .unwrap_or_else(|_| unreachable!("flushers joined; no ShardCore clones remain"));
        core.shards
            .into_iter()
            .map(RankedRwLock::into_inner)
            .collect()
    }

    // ----- reads -----------------------------------------------------------

    /// Reads a record's last committed value (no transaction).
    ///
    /// The hot path is **lock-free**: the shard's seqlock read mirror is
    /// consulted without taking the shard gate, retrying a handful of
    /// times if a concurrent writer (or the crash/recovery gate)
    /// interferes, then failing over to the exclusive-locked read. The
    /// mirror only ever holds committed values, so the result is exactly
    /// what the locked path would have returned at some instant during
    /// the call — the same linearizability contract the mutex gave.
    pub fn read_committed(&self, rid: RecordId) -> Result<Vec<Word>> {
        let shard = self.shard_of(rid)?;
        let local = self.local_rid(rid);
        if self.lockfree_reads.load(Ordering::Relaxed) {
            let mirror = &self.mirrors[shard];
            let mut out = vec![0; self.record_words];
            for _ in 0..LOCKFREE_READ_RETRIES {
                if mirror.try_read(local, &mut out) {
                    self.obs.counter("router.reads_lockfree", 1);
                    return Ok(out);
                }
            }
            self.obs.counter("router.reads_lockfree_fallback", 1);
        }
        self.lock(shard).read_committed(local)
    }

    /// Toggles the lock-free point-read path (on by default). Off forces
    /// every read through the shard gate — the single-mutex baseline the
    /// `bench-net --intra-sweep` harness compares against.
    pub fn set_lockfree_reads(&self, on: bool) {
        self.lockfree_reads.store(on, Ordering::SeqCst);
    }

    // ----- batch transactions ----------------------------------------------

    /// Runs a whole transaction (all updates, then commit). Single-shard
    /// write sets take the fast path — one shard lock, the engine's own
    /// two-color rerun loop. Cross-shard write sets run two-phase commit
    /// with ordered lock acquisition; the commit is all-or-nothing
    /// across shards under any crash.
    pub fn run_txn(&self, updates: &[(RecordId, Vec<Word>)]) -> Result<TxnRun> {
        // Values are *borrowed* into the per-shard buckets: the engine's
        // generic commit paths copy each value exactly once, straight
        // into the log record — no router-side clone of the write set.
        let mut by_shard: BTreeMap<usize, Vec<(RecordId, &[Word])>> = BTreeMap::new();
        for (rid, value) in updates {
            let shard = self.shard_of(*rid)?;
            by_shard
                .entry(shard)
                .or_default()
                .push((self.local_rid(*rid), value.as_slice()));
        }
        if self.audit.is_enabled() {
            for (rid, _) in updates {
                // Route through `shard_of` — the same function the
                // buckets above used — so the audit event reports the
                // route actually taken, not a re-derivation that could
                // silently diverge from it.
                let shard = self.shard_of(*rid)?;
                self.audit.emit(|| AuditEvent::ShardRouted {
                    record: *rid,
                    shard,
                });
            }
        }
        if by_shard.len() <= 1 {
            let shard = by_shard.keys().next().copied().unwrap_or(0);
            let local = by_shard.remove(&shard).unwrap_or_default();
            // Both guards below drop before the watermark wait: under
            // group commit the shard is free for other committers while
            // this one waits — and the flusher's force takes the gate
            // exclusively, so waiting with a guard held would deadlock.
            let run = 'exec: {
                // Shared-mode attempt: disjoint-segment committers run
                // concurrently under read guards, serializing only at
                // the interior log lock. `None` (checkpoint active,
                // quiesce pending, crashed, invalid updates…) falls
                // back to the exclusive path below.
                {
                    let g = self.read_shard(shard);
                    let t = self.obs.timer();
                    if let Some(run) = g.try_commit_shared(&local)? {
                        self.obs.phase_detail("txn.exec_shared", t, shard as u64);
                        self.obs.counter("router.txns_single_shared", 1);
                        break 'exec run;
                    }
                }
                let mut g = self.lock(shard);
                let t = self.obs.timer();
                let run = g.run_txn(&local)?;
                self.obs.phase_detail("txn.exec", t, shard as u64);
                run
            };
            if self.group {
                self.signal_flush(shard);
                self.wait_durable(shard, run.commit_lsn)?;
            }
            // Semi-sync: the commit is locally durable already; an ack
            // timeout here returns an error *without* a durability claim
            // (the caller must treat the outcome as uncertain, exactly
            // like a connection drop after commit).
            self.repl_wait(shard, run.commit_lsn)?;
            self.obs.counter("router.txns_single", 1);
            return Ok(run);
        }
        self.run_cross(&by_shard)
    }

    /// Cross-shard two-phase commit, rerun after two-color aborts (the
    /// same discipline as the engine's own [`Mmdb::run_txn`] rerun
    /// loop, lifted across shards).
    fn run_cross(&self, by_shard: &BTreeMap<usize, Vec<(RecordId, &[Word])>>) -> Result<TxnRun> {
        let max_runs = 10 * (self.config.params.db.n_segments().max(10)) as u32;
        let mut runs = 0;
        loop {
            runs += 1;
            if runs > max_runs {
                return Err(MmdbError::Invalid(format!(
                    "cross-shard transaction failed to commit after {max_runs} reruns"
                )));
            }
            // A fresh gid per attempt: an aborted attempt's Prepare
            // records must never alias a later attempt's decision.
            let gid = self.next_gid.fetch_add(1, Ordering::SeqCst);
            match self.try_cross_once(gid, by_shard) {
                Ok(txn) => {
                    self.obs.counter("router.txns_cross", 1);
                    self.obs
                        .observe("router.cross_runs_per_commit", runs as u64);
                    // Semi-sync: every branch forced its records inline,
                    // so each involved shard's durable LSN covers this
                    // commit — wait for standby acks up to there.
                    if self.repl.should_wait() {
                        for &shard in by_shard.keys() {
                            let lsn = self.with_shard(shard, |e| e.log_durable_lsn());
                            self.repl_wait(shard, lsn)?;
                        }
                    }
                    // 2PC branches force their Prepare and Decide records
                    // inline — already durable, nothing to wait for.
                    return Ok(TxnRun {
                        txn,
                        runs,
                        commit_lsn: Lsn::ZERO,
                    });
                }
                Err(MmdbError::TwoColorViolation { .. }) => {
                    self.obs.counter("router.cross_reruns", 1);
                    // Let the conflicting checkpoints advance, then rerun.
                    for &shard in by_shard.keys() {
                        let mut g = self.lock(shard);
                        if g.is_checkpoint_active() {
                            if let Ok(StepOutcome::WaitingForLog) = g.checkpoint_step() {
                                g.force_log()?;
                            }
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One cross-shard attempt: lock ascending, prepare every branch,
    /// force the decision on the lowest shard, commit every branch,
    /// unlock descending. Any failure before the decision aborts every
    /// prepared branch (presumed abort — consistent with what recovery
    /// would conclude from the logs).
    fn try_cross_once(
        &self,
        gid: u64,
        by_shard: &BTreeMap<usize, Vec<(RecordId, &[Word])>>,
    ) -> Result<TxnId> {
        let mut guards: Vec<(usize, RankedRwWriteGuard<'_, Mmdb>)> =
            Vec::with_capacity(by_shard.len());
        for &shard in by_shard.keys() {
            let g = self.lock(shard);
            self.audit
                .emit(|| AuditEvent::ShardLockAcquired { gid, shard });
            guards.push((shard, g));
        }

        // Phase one: stage and prepare a branch on every shard.
        let t_prepare = self.obs.timer();
        let mut prepared: Vec<(usize, TxnId)> = Vec::with_capacity(guards.len());
        let mut failure: Option<MmdbError> = None;
        'prepare: for (pos, (shard, g)) in guards.iter_mut().enumerate() {
            let txn = match g.begin_txn() {
                Ok(t) => t,
                Err(e) => {
                    failure = Some(e);
                    break 'prepare;
                }
            };
            let writes = by_shard.get(shard).map(Vec::as_slice).unwrap_or(&[]);
            for (local, value) in writes {
                if let Err(e) = g.write(txn, *local, value) {
                    // A two-color violation consumed the transaction
                    // already; any other failure leaves it to abort.
                    let _ = g.abort(txn);
                    failure = Some(e);
                    break 'prepare;
                }
            }
            match g.prepare_txn(txn, gid) {
                Ok(()) => prepared.push((pos, txn)),
                Err(e) => {
                    let _ = g.abort(txn);
                    failure = Some(e);
                    break 'prepare;
                }
            }
        }
        self.obs
            .phase_detail("2pc.prepare", t_prepare, prepared.len() as u64);
        if failure.is_none() {
            // Commit point: the decision is forced on the coordinator
            // (lowest participating shard index).
            let t_decide = self.obs.timer();
            if let Err(e) = guards[0].1.log_decision(gid, true) {
                failure = Some(e);
            }
            self.obs
                .phase_detail("2pc.decide", t_decide, guards[0].0 as u64);
        }
        if let Some(e) = failure {
            for &(pos, txn) in &prepared {
                let _ = guards[pos].1.abort_prepared(txn);
            }
            self.release_all(guards, gid);
            return Err(e);
        }

        // Phase two: the decision is durable — the transaction IS
        // committed, no matter what happens below. A branch whose
        // `commit_prepared` fails stays prepared in memory; the durable
        // `Decide` record recommits it at the next recovery, exactly as
        // if the crash had landed here. Propagating the error instead
        // would skip the lock releases (a dangling acquisition in the
        // audit's LIFO checker), strand the remaining branches in-doubt
        // until a restart, and hand the caller an `Err` for a committed
        // transaction — an invitation to retry and double-apply.
        let coordinator_txn = prepared[0].1;
        for &(pos, txn) in &prepared {
            if guards[pos].1.commit_prepared(txn).is_err() {
                // Reported via counter; the decision stands regardless.
                self.obs.counter("router.phase2_branch_failures", 1);
            }
        }
        self.release_all(guards, gid);
        Ok(coordinator_txn)
    }

    /// Releases shard locks in reverse acquisition order (the audited
    /// discipline — [`mmdb_audit::ShardChecker`] verifies it).
    fn release_all(&self, guards: Vec<(usize, RankedRwWriteGuard<'_, Mmdb>)>, gid: u64) {
        for (shard, g) in guards.into_iter().rev() {
            drop(g);
            self.audit
                .emit(|| AuditEvent::ShardLockReleased { gid, shard });
        }
    }

    // ----- interactive transactions ----------------------------------------
    //
    // Wire-level transactions bind to the shard of the first record they
    // touch; operations on any other shard are rejected (cross-shard
    // work goes through `run_txn`'s all-or-nothing batch path). With one
    // shard this is exactly the unsharded interactive surface.

    /// Begins an interactive transaction. The id lives in the router's
    /// namespace; the shard-local transaction begins lazily at the first
    /// record operation.
    pub fn begin_txn(&self) -> Result<TxnId> {
        let id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        self.open_map().insert(id, Binding { bound: None });
        self.obs.counter("router.interactive_begun", 1);
        Ok(TxnId(id))
    }

    /// Reads a record inside an interactive transaction.
    pub fn read(&self, txn: TxnId, rid: RecordId) -> Result<Vec<Word>> {
        let (shard, local_txn) = self.bind(txn, rid)?;
        let local = self.local_rid(rid);
        let result = self.lock(shard).read(local_txn, local);
        if let Err(e) = &result {
            self.evict_if_consumed(txn, e);
        }
        result
    }

    /// Writes a record inside an interactive transaction.
    pub fn write(&self, txn: TxnId, rid: RecordId, value: &[Word]) -> Result<()> {
        let (shard, local_txn) = self.bind(txn, rid)?;
        let local = self.local_rid(rid);
        let result = self.lock(shard).write(local_txn, local, value);
        if let Err(e) = &result {
            self.evict_if_consumed(txn, e);
        }
        result
    }

    /// Commits an interactive transaction. A transaction that never
    /// touched a record commits vacuously.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let Some(binding) = self.open_map().get(&txn.raw()).copied() else {
            return Err(MmdbError::NoSuchTxn(txn));
        };
        let result = match binding.bound {
            None => Ok(()),
            Some((shard, local_txn)) => {
                // The guard drops before the watermark wait, exactly as
                // in the batch fast path.
                let committed = {
                    let mut g = self.lock(shard);
                    g.commit(local_txn).map(|()| g.last_commit_lsn())
                };
                match committed {
                    Ok(commit_lsn) if self.group => {
                        self.signal_flush(shard);
                        self.wait_durable(shard, commit_lsn)
                            .and_then(|()| self.repl_wait(shard, commit_lsn))
                    }
                    Ok(commit_lsn) => self.repl_wait(shard, commit_lsn),
                    Err(e) => Err(e),
                }
            }
        };
        match &result {
            Ok(()) => {
                self.open_map().remove(&txn.raw());
            }
            Err(e) => self.evict_if_consumed(txn, e),
        }
        result
    }

    /// Aborts an interactive transaction.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let Some(binding) = self.open_map().get(&txn.raw()).copied() else {
            return Err(MmdbError::NoSuchTxn(txn));
        };
        let result = match binding.bound {
            None => Ok(()),
            Some((shard, local_txn)) => self.lock(shard).abort(local_txn),
        };
        match &result {
            Ok(()) => {
                self.open_map().remove(&txn.raw());
            }
            Err(e) => self.evict_if_consumed(txn, e),
        }
        result
    }

    #[track_caller]
    fn open_map(&self) -> RankedGuard<'_, HashMap<u64, Binding>> {
        self.open_txns.lock()
    }

    /// Resolves an interactive transaction to its shard branch, binding
    /// it to `rid`'s shard on first touch. Lock order is always
    /// `open_txns` → shard mutex, matching every other interactive path.
    fn bind(&self, txn: TxnId, rid: RecordId) -> Result<(usize, TxnId)> {
        let shard = self.shard_of(rid)?;
        let mut map = self.open_map();
        let Some(binding) = map.get_mut(&txn.raw()) else {
            return Err(MmdbError::NoSuchTxn(txn));
        };
        match binding.bound {
            Some((bound_shard, local_txn)) => {
                if bound_shard != shard {
                    return Err(MmdbError::Invalid(format!(
                        "{txn} is bound to shard {bound_shard}; record {} lives on shard \
                         {shard} (interactive transactions are single-shard — use a batch \
                         for cross-shard writes)",
                        rid.raw()
                    )));
                }
                Ok((shard, local_txn))
            }
            None => {
                let local_txn = self.lock(shard).begin_txn()?;
                binding.bound = Some((shard, local_txn));
                self.audit
                    .emit(|| AuditEvent::ShardRouted { record: rid, shard });
                Ok((shard, local_txn))
            }
        }
    }

    /// Drops the router binding when the engine has already consumed
    /// the shard-local transaction (two-color abort, unknown id) — the
    /// same eviction discipline the server applies to its per-connection
    /// open set.
    fn evict_if_consumed(&self, txn: TxnId, e: &MmdbError) {
        if matches!(
            e,
            MmdbError::TwoColorViolation { .. } | MmdbError::NoSuchTxn(_)
        ) {
            self.open_map().remove(&txn.raw());
        }
    }

    // ----- checkpointing ---------------------------------------------------

    /// Requests a checkpoint on every shard (the server's per-shard
    /// checkpointer threads normally do this independently; this is the
    /// router-level surface for the wire `Checkpoint` request). Returns
    /// `Quiescing` if any shard is draining, `Started` if any began;
    /// errors only if *every* shard refused.
    pub fn try_begin_checkpoint(&self) -> Result<CheckpointStart> {
        let mut started = None;
        let mut quiescing = false;
        let mut last_err = None;
        for i in 0..self.shards() {
            match self.lock(i).try_begin_checkpoint() {
                Ok(CheckpointStart::Started(r)) => started = Some(r),
                Ok(CheckpointStart::Quiescing) => quiescing = true,
                Err(e) => last_err = Some(e),
            }
        }
        if quiescing {
            Ok(CheckpointStart::Quiescing)
        } else if let Some(r) = started {
            Ok(CheckpointStart::Started(r))
        } else {
            Err(last_err.unwrap_or(MmdbError::CheckpointInProgress))
        }
    }

    /// Runs one full synchronous checkpoint on every shard, in index
    /// order, returning the per-shard reports.
    pub fn checkpoint_all(&self) -> Result<Vec<CkptReport>> {
        let mut reports = Vec::with_capacity(self.shards());
        for i in 0..self.shards() {
            reports.push(self.lock(i).checkpoint()?);
        }
        Ok(reports)
    }

    /// Seals every shard's active log chunk (see
    /// [`Mmdb::rotate_log`]); returns how many shards actually rotated.
    pub fn rotate_logs(&self) -> Result<usize> {
        let mut rotated = 0;
        for i in 0..self.shards() {
            if self.lock(i).rotate_log()? {
                rotated += 1;
            }
        }
        Ok(rotated)
    }

    /// Runs one log-compaction pass on every shard, in index order (see
    /// [`Mmdb::compact_log`]); returns the per-shard reports. Each
    /// shard's pass holds only that shard's lock, so compaction on shard
    /// *i* never blocks transactions on shard *j*.
    pub fn compact_logs(&self) -> Result<Vec<CompactReport>> {
        let mut reports = Vec::with_capacity(self.shards());
        for i in 0..self.shards() {
            reports.push(self.lock(i).compact_log()?);
        }
        Ok(reports)
    }

    // ----- introspection ---------------------------------------------------

    /// Combined database fingerprint: per-shard fingerprints folded in
    /// index order (order-sensitive, so swapped shard contents change
    /// the result).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.shards() as u64;
        for i in 0..self.shards() {
            h = h.rotate_left(13) ^ self.lock(i).fingerprint().wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// True when any shard engine is in the crashed state (no further
    /// operations until recovery).
    pub fn is_crashed(&self) -> bool {
        (0..self.shards()).any(|i| self.lock(i).is_crashed())
    }

    /// Total transactions committed across every shard engine. A
    /// cross-shard transaction counts once per participating branch,
    /// matching what each engine's own `txn_stats` reports.
    pub fn txn_committed(&self) -> u64 {
        (0..self.shards())
            .map(|i| self.lock(i).txn_stats().committed)
            .sum()
    }

    /// Audit violations from the router's shard-routing checkers plus
    /// every shard engine's protocol checkers.
    pub fn audit_violations(&self) -> Vec<AuditViolation> {
        let mut all = self.audit.violations();
        for i in 0..self.shards() {
            all.extend(self.lock(i).audit_violations());
        }
        all
    }

    /// Per-shard engine metric snapshots, in shard index order.
    pub fn shard_snapshots(&self) -> Vec<MetricsSnapshot> {
        (0..self.shards())
            .map(|i| self.lock(i).metrics_snapshot())
            .collect()
    }

    /// One merged snapshot of the whole topology: router counters,
    /// engine counters/gauges aggregated (summed) under their original
    /// names, and every shard's metrics again under a `shard.<i>.`
    /// prefix — the shard topology readable in a single `Stats` call.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let shard_snaps = self.shard_snapshots();
        let mut merged = MetricsSnapshot::capture(&self.obs);
        merged.put_gauge("shard.count", self.shards() as u64);
        let single = merged.counter("router.txns_single").unwrap_or(0);
        let cross = merged.counter("router.txns_cross").unwrap_or(0);
        if let Some(permille) = (cross * 1000).checked_div(single + cross) {
            merged.put_gauge("router.cross_permille", permille);
        }

        let mut agg_counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut agg_gauges: BTreeMap<String, u64> = BTreeMap::new();
        for (i, snap) in shard_snaps.iter().enumerate() {
            for (name, v) in &snap.counters {
                *agg_counters.entry(name.clone()).or_insert(0) += *v;
                merged.put_counter(&format!("shard.{i}.{name}"), *v);
            }
            for (name, v) in &snap.gauges {
                *agg_gauges.entry(name.clone()).or_insert(0) += *v;
                merged.put_gauge(&format!("shard.{i}.{name}"), *v);
            }
            for (name, h) in &snap.hists {
                merged.hists.push((format!("shard.{i}.{name}"), *h));
            }
        }
        for (name, v) in agg_counters {
            merged.put_counter(&name, v);
        }
        for (name, v) in agg_gauges {
            merged.put_gauge(&name, v);
        }
        merged.hists.sort_by(|a, b| a.0.cmp(&b.0));
        merged.hists.dedup_by(|a, b| a.0 == b.0);
        merged
    }

    /// The router's span-tree trace dump (slow-request log plus recent
    /// flight-recorder spans) as JSON — the document served to the wire
    /// `TraceDump` request and rendered by `mmdb-cli trace`.
    pub fn trace_dump_json(&self, limit: usize) -> String {
        mmdb_obs::TraceDumpDoc::capture(&self.obs, limit).to_json()
    }

    /// Prometheus exposition for the whole topology: per-shard families
    /// carry a `shard="<i>"` label (one `# TYPE` line per family), and
    /// router-only families follow unlabeled. Families the shards
    /// already expose are filtered from the router section so the
    /// document never carries a duplicate `# TYPE` line — the 1-shard
    /// [`ShardedMmdb::from_single`] case shares one registry between
    /// router and engine, where naive concatenation would duplicate
    /// every family.
    pub fn prometheus(&self) -> String {
        let shard_snaps = self.shard_snapshots();
        let mut text = to_prometheus_sharded(&shard_snaps);

        let mut shard_names: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for snap in &shard_snaps {
            shard_names.extend(snap.counters.iter().map(|(n, _)| n.as_str()));
            shard_names.extend(snap.gauges.iter().map(|(n, _)| n.as_str()));
            shard_names.extend(snap.hists.iter().map(|(n, _)| n.as_str()));
        }
        let mut router = MetricsSnapshot::capture(&self.obs);
        router
            .counters
            .retain(|(n, _)| !shard_names.contains(n.as_str()));
        router
            .gauges
            .retain(|(n, _)| !shard_names.contains(n.as_str()));
        router
            .hists
            .retain(|(n, _)| !shard_names.contains(n.as_str()));
        router.paper = None;
        text.push_str(&router.to_prometheus());
        text
    }
}

fn validate_shards(config: &MmdbConfig, shards: usize) -> Result<()> {
    if shards == 0 || shards > MAX_SHARDS {
        return Err(MmdbError::Invalid(format!(
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        )));
    }
    if shards as u64 > config.params.db.n_records() {
        return Err(MmdbError::Invalid(format!(
            "{shards} shards for {} records leaves empty shards",
            config.params.db.n_records()
        )));
    }
    Ok(())
}

/// Reads or writes the topology marker: a sharded directory remembers
/// its shard count, and reopening with a different count is refused
/// (records would silently land on the wrong shards).
fn check_topology_marker(dir: &Path, shards: usize) -> Result<()> {
    let path = dir.join(TOPOLOGY_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let existing: usize = text
                .trim()
                .strip_prefix("shards=")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    MmdbError::Invalid(format!("malformed topology marker {}", path.display()))
                })?;
            if existing != shards {
                return Err(MmdbError::Invalid(format!(
                    "directory is sharded {existing} ways; refusing to open with {shards}"
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(&path, format!("shards={shards}\n"))?;
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_obs::validate_prometheus;
    use mmdb_types::Algorithm;
    use std::path::PathBuf;

    fn cfg() -> MmdbConfig {
        MmdbConfig::small(Algorithm::FuzzyCopy)
    }

    fn fill(words: usize, seed: u32) -> Vec<Word> {
        (0..words as u32).map(|i| seed ^ (i << 8)).collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-shard-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn partition_math_covers_every_record() {
        let db = cfg().params.db;
        for shards in [1usize, 2, 3, 4, 8] {
            let sp = shard_db_params(&db, shards);
            assert_eq!(sp.s_db % sp.s_seg, 0, "whole segments at {shards}");
            sp.validate().expect("valid shard shape");
            // Every global record fits in its shard's local space.
            for rid in [0, 1, shards as u64, db.n_records() - 1] {
                let local = rid / shards as u64;
                assert!(local < sp.n_records(), "rid {rid} at {shards} shards");
            }
            // Capacity is not wasteful: at most one extra segment.
            assert!(
                sp.n_records() < db.n_records().div_ceil(shards as u64) + sp.records_per_segment()
            );
        }
    }

    #[test]
    fn single_and_cross_shard_batches_commit_and_read_back() {
        let db = ShardedMmdb::open_in_memory(cfg(), 4).expect("open");
        let w = db.record_words();
        // Single-shard: rids 0 and 4 both live on shard 0.
        db.run_txn(&[(RecordId(0), fill(w, 1)), (RecordId(4), fill(w, 2))])
            .expect("single-shard txn");
        // Cross-shard: rids 1, 2, 3 live on shards 1, 2, 3.
        db.run_txn(&[
            (RecordId(1), fill(w, 3)),
            (RecordId(2), fill(w, 4)),
            (RecordId(3), fill(w, 5)),
        ])
        .expect("cross-shard txn");
        assert_eq!(db.read_committed(RecordId(0)).expect("read"), fill(w, 1));
        assert_eq!(db.read_committed(RecordId(4)).expect("read"), fill(w, 2));
        assert_eq!(db.read_committed(RecordId(1)).expect("read"), fill(w, 3));
        assert_eq!(db.read_committed(RecordId(2)).expect("read"), fill(w, 4));
        assert_eq!(db.read_committed(RecordId(3)).expect("read"), fill(w, 5));
        assert!(db.audit_violations().is_empty(), "clean audit");
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("router.txns_single"), Some(1));
        assert_eq!(snap.counter("router.txns_cross"), Some(1));
    }

    #[test]
    fn interactive_txns_bind_to_one_shard() {
        let db = ShardedMmdb::open_in_memory(cfg(), 4).expect("open");
        let w = db.record_words();
        let t = db.begin_txn().expect("begin");
        db.write(t, RecordId(5), &fill(w, 9))
            .expect("write binds shard 1");
        // rid 6 lives on shard 2: rejected, transaction stays usable.
        let err = db.write(t, RecordId(6), &fill(w, 9)).expect_err("cross");
        assert!(matches!(err, MmdbError::Invalid(_)), "got {err}");
        db.write(t, RecordId(9), &fill(w, 10))
            .expect("same shard ok");
        db.commit(t).expect("commit");
        assert_eq!(db.read_committed(RecordId(5)).expect("read"), fill(w, 9));
        assert_eq!(db.read_committed(RecordId(9)).expect("read"), fill(w, 10));
        // Unbound transactions commit vacuously; unknown ids are errors.
        let empty = db.begin_txn().expect("begin");
        db.commit(empty).expect("vacuous commit");
        assert!(db.commit(TxnId(u64::MAX)).is_err());
    }

    #[test]
    fn prepared_without_decision_presumed_abort_after_crash() {
        let dir = tmpdir("presumed-abort");
        let w;
        {
            let (db, _) = ShardedMmdb::open_dir(cfg(), &dir, 2).expect("open");
            w = db.record_words();
            db.checkpoint_all().expect("seed backups");
            // Tear a cross-shard transaction open by hand: both branches
            // prepared (durably), no decision anywhere.
            for shard in [0usize, 1] {
                db.with_shard(shard, |e| -> Result<()> {
                    let t = e.begin_txn()?;
                    e.write(t, RecordId(0), &fill(w, 0xdead))?;
                    e.prepare_txn(t, 77)
                })
                .expect("prepare branch");
            }
            // db dropped here: the crash. Prepare records were forced.
        }
        let (db, rec) = ShardedMmdb::open_dir(cfg(), &dir, 2).expect("reopen");
        assert_eq!(rec.in_doubt_aborted, 2, "both branches presumed abort");
        assert_eq!(rec.in_doubt_committed, 0);
        for rid in [0u64, 1] {
            let v = db.read_committed(RecordId(rid)).expect("read");
            assert_ne!(v, fill(w, 0xdead), "rid {rid} must not show torn writes");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepared_with_decision_commits_all_branches_after_crash() {
        let dir = tmpdir("decided-commit");
        let w;
        {
            let (db, _) = ShardedMmdb::open_dir(cfg(), &dir, 2).expect("open");
            w = db.record_words();
            db.checkpoint_all().expect("seed backups");
            for shard in [0usize, 1] {
                db.with_shard(shard, |e| -> Result<()> {
                    let t = e.begin_txn()?;
                    e.write(t, RecordId(0), &fill(w, 0xbeef))?;
                    e.prepare_txn(t, 99)
                })
                .expect("prepare branch");
            }
            // The coordinator's forced decision is the commit point; the
            // crash lands before any commit_prepared.
            db.with_shard(0, |e| e.log_decision(99, true))
                .expect("decide");
        }
        let (db, rec) = ShardedMmdb::open_dir(cfg(), &dir, 2).expect("reopen");
        assert_eq!(rec.in_doubt_committed, 2, "decision commits both branches");
        assert_eq!(rec.in_doubt_aborted, 0);
        // Global rids 0 and 1 are local rid 0 on shards 0 and 1.
        for rid in [0u64, 1] {
            let v = db.read_committed(RecordId(rid)).expect("read");
            assert_eq!(v, fill(w, 0xbeef), "rid {rid} shows the decided write");
        }
        assert!(db.audit_violations().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_state_survives_clean_reopen_and_pins_topology() {
        let dir = tmpdir("reopen");
        let w;
        let fp;
        {
            let (db, rec) = ShardedMmdb::open_dir(cfg(), &dir, 4).expect("open");
            assert!(rec.shards.iter().all(Option::is_none), "fresh dir");
            w = db.record_words();
            for rid in 0..16u64 {
                db.run_txn(&[(RecordId(rid), fill(w, rid as u32))])
                    .expect("txn");
            }
            db.run_txn(&[(RecordId(20), fill(w, 20)), (RecordId(21), fill(w, 21))])
                .expect("cross");
            db.checkpoint_all().expect("checkpoint");
            fp = db.fingerprint();
        }
        assert!(
            ShardedMmdb::open_dir(cfg(), &dir, 2).is_err(),
            "topology marker refuses a different shard count"
        );
        let (db, _) = ShardedMmdb::open_dir(cfg(), &dir, 4).expect("reopen");
        assert_eq!(db.fingerprint(), fp, "state identical after recovery");
        for rid in 0..16u64 {
            assert_eq!(
                db.read_committed(RecordId(rid)).expect("read"),
                fill(w, rid as u32)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_snapshot_and_prometheus_exposition_are_valid() {
        let db = ShardedMmdb::open_in_memory(cfg(), 4).expect("open");
        let w = db.record_words();
        for rid in 0..8u64 {
            db.run_txn(&[(RecordId(rid), fill(w, rid as u32))])
                .expect("txn");
        }
        db.run_txn(&[(RecordId(0), fill(w, 50)), (RecordId(1), fill(w, 51))])
            .expect("cross");
        db.checkpoint_all().expect("checkpoint");

        let snap = db.metrics_snapshot();
        assert_eq!(snap.gauge("shard.count"), Some(4));
        // Aggregated counter equals the sum of the per-shard ones.
        let total = snap.counter("txn.committed").expect("aggregate");
        let per_shard: u64 = (0..4)
            .map(|i| {
                snap.counter(&format!("shard.{i}.txn.committed"))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, per_shard);
        assert!(total >= 10, "8 singles + 2 cross branches, got {total}");
        assert!(snap.gauge("router.cross_permille").is_some());

        let text = db.prometheus();
        validate_prometheus(&text).expect("valid exposition");
        assert!(text.contains("shard=\"3\""), "labeled per-shard samples");
    }

    #[test]
    fn from_single_preserves_the_unsharded_surface() {
        let db = Mmdb::open_in_memory(cfg()).expect("open");
        let sharded = ShardedMmdb::from_single(db);
        let w = sharded.record_words();
        sharded
            .run_txn(&[(RecordId(0), fill(w, 1)), (RecordId(1), fill(w, 2))])
            .expect("any batch is single-shard at N=1");
        let t = sharded.begin_txn().expect("begin");
        sharded.write(t, RecordId(2), &fill(w, 3)).expect("write");
        sharded.commit(t).expect("commit");
        assert_eq!(
            sharded.read_committed(RecordId(2)).expect("read"),
            fill(w, 3)
        );
        let snap = sharded.metrics_snapshot();
        assert_eq!(snap.counter("router.txns_cross").unwrap_or(0), 0);
        assert_eq!(snap.gauge("shard.count"), Some(1));
        validate_prometheus(&sharded.prometheus()).expect("no duplicate families");
        assert!(sharded.audit_violations().is_empty());
    }

    #[test]
    fn sync_contention_counters_reach_the_metrics_surface() {
        let mut config = cfg();
        config.telemetry = true;
        let db = ShardedMmdb::open_in_memory(config, 2).expect("open");
        let w = db.record_words();
        // Single- and cross-shard traffic so engine locks, the txn
        // table, and the watermark all get held at least once.
        db.run_txn(&[(RecordId(0), fill(w, 1))]).expect("single");
        db.run_txn(&[(RecordId(0), fill(w, 2)), (RecordId(1), fill(w, 3))])
            .expect("cross");
        // An interactive txn is what exercises the router's txn table.
        let t = db.begin_txn().expect("begin");
        db.write(t, RecordId(2), &fill(w, 4)).expect("write");
        db.commit(t).expect("commit");

        let snap = db.metrics_snapshot();
        let hist_names: Vec<&str> = snap.hists.iter().map(|(n, _)| n.as_str()).collect();
        for name in [
            "sync.engine.0.held_us",
            "sync.engine.1.held_us",
            "sync.router.txns.held_us",
        ] {
            assert!(
                hist_names.contains(&name),
                "missing {name}; hists: {hist_names:?}"
            );
        }
        // Contended counts exist only under real contention, but the
        // families must still render as one TYPE line each when present
        // alongside the per-shard samples.
        let text = db.prometheus();
        validate_prometheus(&text).expect("sync.* families keep the exposition valid");
        assert!(
            text.contains("sync_engine_0_held_us"),
            "sync hold-time family exported:\n{text}"
        );
    }

    fn group_cfg() -> MmdbConfig {
        let mut config = cfg();
        config.commit_durability = CommitDurability::Group;
        config
    }

    #[test]
    fn group_commit_acks_are_durable_and_counted() {
        let db = ShardedMmdb::open_in_memory(group_cfg(), 2).expect("open");
        let w = db.record_words();
        db.run_txn(&[(RecordId(0), fill(w, 1))]).expect("txn 0");
        db.run_txn(&[(RecordId(1), fill(w, 2))]).expect("txn 1");
        let t = db.begin_txn().expect("begin");
        db.write(t, RecordId(2), &fill(w, 3)).expect("write");
        db.commit(t).expect("interactive group commit");
        assert_eq!(db.read_committed(RecordId(0)).expect("read"), fill(w, 1));
        assert_eq!(db.read_committed(RecordId(1)).expect("read"), fill(w, 2));
        assert_eq!(db.read_committed(RecordId(2)).expect("read"), fill(w, 3));
        // Each ack returned only after a flusher force covered its
        // commit LSN, so the group counters already include all three.
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("log.group_commit.commits"), Some(3));
        assert!(snap.counter("log.group_commit.forces").unwrap_or(0) >= 1);
        assert!(db.audit_violations().is_empty());
    }

    #[test]
    fn concurrent_group_committers_all_get_durable_acks() {
        let db = Arc::new(ShardedMmdb::open_in_memory(group_cfg(), 2).expect("open"));
        let w = db.record_words();
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for round in 0..5u32 {
                        let seed = ((tid as u32) << 8) | round;
                        db.run_txn(&[(RecordId(tid), fill(w, seed))])
                            .expect("group txn");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("committer thread");
        }
        for tid in 0..4u64 {
            let last = ((tid as u32) << 8) | 4;
            assert_eq!(
                db.read_committed(RecordId(tid)).expect("read"),
                fill(w, last)
            );
        }
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("log.group_commit.commits"), Some(20));
        assert!(db.audit_violations().is_empty());
    }

    #[test]
    fn into_engines_joins_group_flushers_cleanly() {
        let db = ShardedMmdb::open_in_memory(group_cfg(), 2).expect("open");
        let w = db.record_words();
        db.run_txn(&[(RecordId(0), fill(w, 7)), (RecordId(2), fill(w, 8))])
            .expect("txn");
        let mut engines = db.into_engines();
        assert_eq!(engines.len(), 2);
        // Global rids 0 and 2 are local rids 0 and 1 on shard 0.
        assert_eq!(
            engines[0].read_committed(RecordId(0)).expect("read"),
            fill(w, 7)
        );
        assert_eq!(
            engines[0].read_committed(RecordId(1)).expect("read"),
            fill(w, 8)
        );
        engines.clear();
    }

    #[test]
    fn phase_two_branch_failure_still_commits_and_releases_locks() {
        let config = cfg();
        let scfg = shard_config(&config, 2);
        let shard0 = Mmdb::open_in_memory(scfg).expect("shard 0");
        let (device, control) = mmdb_core::FlakyLogDevice::new();
        let shard1 = Mmdb::open_with_log_device(scfg, Box::new(device)).expect("shard 1");
        let db = ShardedMmdb::from_engines(config, vec![shard0, shard1]).expect("router");
        let w = db.record_words();

        // Seed both shards so the cross transaction overwrites known
        // values (one forced append each).
        db.run_txn(&[(RecordId(0), fill(w, 1))])
            .expect("seed shard 0");
        db.run_txn(&[(RecordId(1), fill(w, 2))])
            .expect("seed shard 1");

        // The next append on shard 1's device (the Prepare force)
        // succeeds; the one after (the commit_prepared force) fails —
        // i.e. the failure lands *after* the durable decision.
        control.fail_after_next(1);
        let run = db
            .run_txn(&[(RecordId(0), fill(w, 11)), (RecordId(1), fill(w, 12))])
            .expect("the decision is durable: the transaction is committed");
        assert_eq!(run.runs, 1);

        // Shard 0's branch committed; shard 1's branch is stranded
        // prepared in memory (its commit force failed) — the durable
        // Decide record recommits it at the next recovery.
        assert_eq!(db.read_committed(RecordId(0)).expect("read"), fill(w, 11));
        assert_eq!(db.read_committed(RecordId(1)).expect("read"), fill(w, 2));
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("router.phase2_branch_failures"), Some(1));
        // Every acquired shard lock was released in LIFO order — the
        // audit's shard checker sees a balanced event stream.
        assert!(db.audit_violations().is_empty());
    }

    #[test]
    fn shard_count_validation() {
        assert!(ShardedMmdb::open_in_memory(cfg(), 0).is_err());
        assert!(ShardedMmdb::open_in_memory(cfg(), MAX_SHARDS + 1).is_err());
        assert!(ShardedMmdb::open_in_memory(cfg(), 8).is_ok());
    }

    #[test]
    fn request_scope_collects_router_phases_into_one_trace() {
        let db = ShardedMmdb::open_in_memory(cfg(), 4).expect("open");
        let w = db.record_words();
        let scope = db
            .obs()
            .request_scope("net.request", "net.request_ns", "txn", 0x51ab, 7);
        let trace_id = scope.trace_id();
        db.run_txn(&[(RecordId(0), fill(w, 1)), (RecordId(1), fill(w, 2))])
            .expect("cross-shard txn under scope");
        scope.finish();

        assert_eq!(trace_id, 0x51ab, "wire-supplied trace id is kept");
        let (spans, _, _) = db.obs().flight_spans(256);
        let mine: Vec<&str> = spans
            .iter()
            .filter(|s| s.label.starts_with("txn ") || s.label == "txn")
            .map(|s| s.name)
            .collect();
        for phase in [
            "engine.lock_wait",
            "2pc.prepare",
            "2pc.decide",
            "net.request",
        ] {
            assert!(mine.contains(&phase), "missing {phase} in {mine:?}");
        }
        // The attribution table carries the same request under op "txn".
        let attr = db.obs().attribution();
        let row = attr.iter().find(|r| r.op == "txn").expect("txn row");
        assert_eq!(row.requests, 1);
        assert!(row.phases.iter().any(|(n, _, _)| n == "2pc.prepare"));
        // And the dump document parses back with the trace id intact.
        let doc = mmdb_obs::TraceDumpDoc::from_json(&db.trace_dump_json(64)).expect("dump");
        assert!(doc.recent.iter().any(|s| s.trace_id == 0x51ab));
    }

    #[test]
    fn group_force_is_tagged_with_the_ringer_trace_id() {
        let db = ShardedMmdb::open_in_memory(group_cfg(), 2).expect("open");
        let w = db.record_words();
        let scope = db
            .obs()
            .request_scope("net.request", "net.request_ns", "txn", 0xF00D, 0);
        db.run_txn(&[(RecordId(0), fill(w, 1))]).expect("group txn");
        scope.finish();
        // The ack returned only after a force covered the commit LSN,
        // and the doorbell carried the scope's trace id to the flusher.
        // A force already in flight may have consumed an earlier (or
        // zero) tag, so ring again and wait for one more tagged force.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut round = 0u32;
        loop {
            let (spans, _, _) = db.obs().flight_spans(1024);
            if spans
                .iter()
                .any(|s| s.name == "group.force" && s.trace_id == 0xF00D)
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no group.force tagged 0xF00D after {round} rounds"
            );
            round += 1;
            let scope = db
                .obs()
                .request_scope("net.request", "net.request_ns", "txn", 0xF00D, 0);
            db.run_txn(&[(RecordId(1), fill(w, round))]).expect("txn");
            scope.finish();
        }
    }

    #[test]
    fn tracing_does_not_change_engine_behavior() {
        let run = |telemetry: bool| {
            let mut config = cfg();
            config.telemetry = telemetry;
            let db = ShardedMmdb::open_in_memory(config, 2).expect("open");
            let w = db.record_words();
            for rid in 0..6u64 {
                let scope =
                    db.obs()
                        .request_scope("net.request", "net.request_ns", "txn", rid + 1, 0);
                db.run_txn(&[(RecordId(rid % 4), fill(w, rid as u32))])
                    .expect("txn");
                scope.finish();
            }
            db.run_txn(&[(RecordId(0), fill(w, 90)), (RecordId(1), fill(w, 91))])
                .expect("cross");
            db.checkpoint_all().expect("checkpoint");
            db.fingerprint()
        };
        assert_eq!(
            run(true),
            run(false),
            "telemetry and tracing must be invisible to engine state"
        );
    }
}
