//! Throughput probe: drives the sharded router directly (no network),
//! with durable commits, to separate engine fsync behavior from the
//! server and wire layers. Not part of the test suite.
use mmdb_core::{Algorithm, MmdbConfig};
use mmdb_shard::ShardedMmdb;
use mmdb_types::RecordId;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dir = std::path::PathBuf::from(std::env::args().nth(1).expect("dir"));
    let shards: usize = std::env::args()
        .nth(2)
        .expect("shards")
        .parse()
        .expect("shards");
    let threads: usize = std::env::args()
        .nth(3)
        .unwrap_or_else(|| shards.to_string())
        .parse()
        .expect("threads");
    let txns: u64 = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "400".into())
        .parse()
        .expect("txns");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = MmdbConfig::small(Algorithm::FuzzyCopy);
    config.sync_files = true;
    let (db, _rec) = ShardedMmdb::open_dir(config, &dir, shards).expect("open");
    let db = Arc::new(db);
    let n = db.n_records();
    let words = db.record_words() as usize;
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let home = (t % shards) as u64;
                let mut x = 0x9E37_79B9u64.wrapping_add(t as u64);
                for _ in 0..txns {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let base = x % (n / shards as u64);
                    let rid = RecordId(base * shards as u64 + home);
                    let updates = vec![(rid.min(RecordId(n - 1)), vec![0u32; words])];
                    db.run_txn(&updates).expect("txn");
                }
            });
        }
    });
    let el = start.elapsed().as_secs_f64();
    let total = threads as u64 * txns;
    println!(
        "{shards} shards, {threads} threads: {:.0} txn/s ({:.1} us/txn)",
        total as f64 / el,
        el * 1e6 / total as f64
    );
}
