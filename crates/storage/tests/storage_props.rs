//! Property-based tests of the storage substrate: record addressing,
//! dirty tracking and COU old copies against a plain reference model,
//! under arbitrary operation sequences.

use mmdb_storage::Storage;
use mmdb_types::{CostMeter, CostParams, DbParams, Lsn, RecordId, SegmentId, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

const N_RECORDS: u64 = 256; // 4 segments × 64 records
fn shape() -> DbParams {
    DbParams {
        s_db: 8 << 10,
        s_rec: 32,
        s_seg: 2048,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Install { rid: u64, fill: u32 },
    CouSave { sid: u32 },
    TakeOld { sid: u32 },
    Flush { sid: u32, copy: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..N_RECORDS, any::<u32>()).prop_map(|(rid, fill)| Op::Install { rid, fill }),
        2 => (0u32..4).prop_map(|sid| Op::CouSave { sid }),
        2 => (0u32..4).prop_map(|sid| Op::TakeOld { sid }),
        3 => ((0u32..4), (0u8..2)).prop_map(|(sid, copy)| Op::Flush { sid, copy }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn storage_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut storage = Storage::new(shape()).unwrap();
        let meter = CostMeter::new(CostParams::default());
        // reference: record → fill, plus saved COU snapshots per segment
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut old_copies: HashMap<u32, HashMap<u64, u32>> = HashMap::new();
        // per (segment, copy): set of records modified since last flush
        let mut dirty: HashMap<(u32, u8), bool> = HashMap::new();
        let mut lsn = 0u64;
        let mut tau = 0u64;

        for op in &ops {
            match *op {
                Op::Install { rid, fill } => {
                    lsn += 1;
                    tau += 1;
                    storage
                        .install_record(
                            RecordId(rid),
                            &[fill; 32],
                            Lsn(lsn),
                            Timestamp(tau),
                            &meter,
                        )
                        .unwrap();
                    reference.insert(rid, fill);
                    let sid = (rid / 64) as u32;
                    dirty.insert((sid, 0), true);
                    dirty.insert((sid, 1), true);
                }
                Op::CouSave { sid } => {
                    let had = storage.has_old(SegmentId(sid)).unwrap();
                    let result = storage.cou_save_old(SegmentId(sid), &meter);
                    if had {
                        prop_assert!(result.is_err(), "double save must fail");
                    } else {
                        result.unwrap();
                        // snapshot = current reference content of the segment
                        let snap: HashMap<u64, u32> = (sid as u64 * 64..(sid as u64 + 1) * 64)
                            .filter_map(|r| reference.get(&r).map(|f| (r, *f)))
                            .collect();
                        old_copies.insert(sid, snap);
                    }
                }
                Op::TakeOld { sid } => {
                    let taken = storage.take_old(SegmentId(sid), &meter).unwrap();
                    match (taken, old_copies.remove(&sid)) {
                        (Some(old), Some(snap)) => {
                            // the old copy must hold the snapshot content
                            for r in sid as u64 * 64..(sid as u64 + 1) * 64 {
                                let expected = snap.get(&r).copied().unwrap_or(0);
                                let off = ((r % 64) * 32) as usize;
                                prop_assert_eq!(
                                    old.data[off], expected,
                                    "old copy of segment {} record {}", sid, r
                                );
                            }
                        }
                        (None, None) => {}
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "old copy disagreement for segment {sid}: storage {:?} vs model {:?}",
                                a.is_some(),
                                b.is_some()
                            )))
                        }
                    }
                }
                Op::Flush { sid, copy } => {
                    let is_dirty = storage.is_dirty(SegmentId(sid), copy as usize).unwrap();
                    let expected = dirty.get(&(sid, copy)).copied().unwrap_or(false);
                    prop_assert_eq!(is_dirty, expected, "dirty bit for segment {} copy {}", sid, copy);
                    let cap_version = storage.capture(SegmentId(sid)).unwrap().version;
                    storage.mark_flushed(SegmentId(sid), copy as usize, cap_version).unwrap();
                    dirty.insert((sid, copy), false);
                }
            }
        }

        // final sweep: every record matches the reference
        for rid in 0..N_RECORDS {
            let expected = reference.get(&rid).copied().unwrap_or(0);
            let value = storage.read_record(RecordId(rid)).unwrap();
            prop_assert!(value.iter().all(|w| *w == expected), "record {}", rid);
        }
    }

    #[test]
    fn record_addressing_never_overlaps(rid_a in 0..N_RECORDS, rid_b in 0..N_RECORDS, fill in 1u32..) {
        prop_assume!(rid_a != rid_b);
        let mut storage = Storage::new(shape()).unwrap();
        let meter = CostMeter::new(CostParams::default());
        storage
            .install_record(RecordId(rid_a), &[fill; 32], Lsn(1), Timestamp(1), &meter)
            .unwrap();
        // the other record is untouched
        let other = storage.read_record(RecordId(rid_b)).unwrap();
        prop_assert!(other.iter().all(|w| *w == 0));
        // and the fingerprint changes iff content changes
        let f1 = storage.fingerprint();
        storage
            .install_record(RecordId(rid_b), &[fill ^ 1; 32], Lsn(2), Timestamp(2), &meter)
            .unwrap();
        prop_assert_ne!(storage.fingerprint(), f1);
    }

    #[test]
    fn load_segment_roundtrips_arbitrary_content(words in proptest::collection::vec(any::<u32>(), 2048)) {
        let mut storage = Storage::new(shape()).unwrap();
        let meter = CostMeter::new(CostParams::default());
        storage.load_segment(SegmentId(2), &words, Some(1), &meter).unwrap();
        prop_assert_eq!(storage.segment_data(SegmentId(2)).unwrap(), &words[..]);
        // records within the segment decode at the right offsets
        for r in 0..64u64 {
            let rid = 2 * 64 + r;
            let value = storage.read_record(RecordId(rid)).unwrap();
            prop_assert_eq!(value, &words[(r * 32) as usize..((r + 1) * 32) as usize]);
        }
    }
}
