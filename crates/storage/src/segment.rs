//! A single database segment and its per-segment checkpointing metadata.

use mmdb_types::{Lsn, Timestamp, Word};

/// The two-color paint state of a segment (paper §3.2.1, after Pu).
///
/// Outside an active two-color checkpoint every segment is black; a
/// checkpoint begin paints its to-be-processed set white, and the
/// checkpointer repaints each segment black as it processes it. No
/// transaction may access both a white and a black record while a
/// checkpoint is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Color {
    /// Not yet included in the current checkpoint.
    White,
    /// Included in the current checkpoint (or not participating).
    #[default]
    Black,
}

/// A copy-on-update "old copy": the pre-update image of a segment saved by
/// the first transaction to update it after a COU checkpoint began
/// (Figure 3.2's special buffer, reached through `p(S)`).
#[derive(Debug, Clone)]
pub struct OldCopy {
    /// The snapshot content of the segment.
    pub data: Box<[Word]>,
    /// `τ(S)` at the time the copy was made — the timestamp of the most
    /// recent transaction to have updated the segment *before* the
    /// checkpoint began.
    pub tau: Timestamp,
    /// The segment version at the time the copy was made; used for
    /// ping-pong dirty accounting when the old copy is flushed.
    pub version: u64,
    /// Highest LSN contained in the copied image. All of it predates the
    /// checkpoint's begin-log force, so flushing an old copy never needs
    /// the WAL gate — this field lets the audit stream verify that.
    pub max_lsn: Lsn,
}

/// Per-segment checkpointing metadata.
#[derive(Debug, Clone, Default)]
pub struct SegmentMeta {
    /// Version of the latest installed update (0 = never updated since
    /// load). Draws from the storage-wide monotonic counter, so versions
    /// are comparable across segments.
    pub version: u64,
    /// Version captured by the last flush to each ping-pong backup copy.
    /// `version > flushed_version[c]` ⇔ the segment is dirty w.r.t. copy
    /// `c` — the generalized dirty bit of paper §3.
    pub flushed_version: [u64; 2],
    /// Highest LSN of any update installed in this segment; the WAL gate
    /// for flushing it.
    pub max_lsn: Lsn,
    /// `τ(S)`: timestamp of the most recent updating transaction
    /// (copy-on-update protocol, §3.2.2).
    pub tau: Timestamp,
    /// Two-color paint bit.
    pub color: Color,
    /// `p(S)`: the COU old copy, if one exists.
    pub old: Option<Box<OldCopy>>,
}

/// A segment: fixed-size array of words plus metadata.
#[derive(Debug)]
pub(crate) struct Segment {
    pub(crate) data: Box<[Word]>,
    pub(crate) meta: SegmentMeta,
}

impl Segment {
    pub(crate) fn new(words: usize) -> Segment {
        Segment {
            data: vec![0; words].into_boxed_slice(),
            meta: SegmentMeta::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_color_is_black() {
        assert_eq!(Color::default(), Color::Black);
        let s = Segment::new(8);
        assert_eq!(s.meta.color, Color::Black);
    }

    #[test]
    fn new_segment_is_zeroed_and_clean() {
        let s = Segment::new(16);
        assert!(s.data.iter().all(|&w| w == 0));
        assert_eq!(s.meta.version, 0);
        assert_eq!(s.meta.flushed_version, [0, 0]);
        assert_eq!(s.meta.max_lsn, Lsn::ZERO);
        assert!(s.meta.old.is_none());
    }
}
