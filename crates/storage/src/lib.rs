//! The memory-resident (primary) database.
//!
//! Storage is an array of fixed-size *segments*, each holding a fixed
//! number of fixed-size *records* (paper §2.4). The record is the granule
//! of the transaction interface; the segment is the granule of transfer
//! to the backup disks and of every checkpointing protocol:
//!
//! * each segment carries a **version** (bumped on every record install)
//!   and a per-ping-pong-copy **flushed version**, which together implement
//!   dirty tracking for partial checkpoints (§3: "database segments can
//!   include a dirty bit which is set by transaction updates and cleared
//!   by the checkpointer" — generalized to two backup copies);
//! * each segment carries a **max LSN**, the log sequence number of the
//!   latest update installed in it, used by the LSN-gated algorithms to
//!   respect the write-ahead-log protocol (§3.1);
//! * each segment carries a **paint bit** for the two-color algorithms
//!   (§3.2.1, after Pu);
//! * each segment carries a **timestamp `τ(S)`** and an **old-copy
//!   pointer `p(S)`** for the copy-on-update algorithms (§3.2.2).
//!
//! The structure is deliberately *not* internally synchronized: the engine
//! serializes access (see `mmdb-core`), which keeps crash/interleaving
//! tests deterministic. All data movement is charged to a caller-supplied
//! [`CostMeter`] at 1 instruction/word.

#![warn(missing_docs)]

mod mirror;
mod segment;

pub use mirror::{PendingInstall, ReadMirror};
pub use segment::{Color, OldCopy, SegmentMeta};

use mmdb_types::{
    hash::Fnv1a, CostMeter, DbParams, Lsn, MmdbError, RecordId, Result, SegmentId, Timestamp, Word,
};
use segment::Segment;
use std::sync::Arc;

/// The memory-resident database: all segments plus the global version
/// counter that dirty tracking is built on.
#[derive(Debug)]
pub struct Storage {
    db: DbParams,
    segments: Vec<Segment>,
    /// Monotonic counter bumped on every record install; segment versions
    /// are draws from this counter.
    version_counter: u64,
    /// Seqlock mirror of the record data for lock-free reads; every
    /// install path republishes into it.
    mirror: Arc<ReadMirror>,
}

/// A segment's content captured for flushing, together with the metadata
/// the checkpointer needs to gate and account the flush.
#[derive(Debug, Clone, Copy)]
pub struct Capture<'a> {
    /// The segment's live words.
    pub data: &'a [Word],
    /// The segment version at capture time; pass to
    /// [`Storage::mark_flushed`] once the image is on disk.
    pub version: u64,
    /// Highest LSN of any update reflected in the data — the image must
    /// not reach the backup disks until the log is durable through this
    /// LSN (write-ahead rule).
    pub max_lsn: Lsn,
}

impl Storage {
    /// Creates a zero-filled database of the given shape.
    pub fn new(db: DbParams) -> Result<Storage> {
        db.validate().map_err(MmdbError::Invalid)?;
        let n = db.n_segments() as usize;
        let seg_words = db.s_seg as usize;
        let segments = (0..n).map(|_| Segment::new(seg_words)).collect();
        Ok(Storage {
            mirror: Arc::new(ReadMirror::new(&db)),
            db,
            segments,
            version_counter: 0,
        })
    }

    /// The storage's read mirror. Clone the `Arc` to read lock-free from
    /// other threads; the handle survives [`Storage::adopt_mirror`]-based
    /// recovery swaps.
    pub fn mirror(&self) -> &Arc<ReadMirror> {
        &self.mirror
    }

    /// Replaces this (fresh) storage's mirror with one inherited from a
    /// pre-crash storage, so reader-held `Arc`s stay valid across the
    /// recovery swap. The inherited pending queue is discarded — those
    /// installs were logged and recovery replays them. The caller must
    /// republish (and reopen the gate) once the authoritative content is
    /// rebuilt.
    pub fn adopt_mirror(&mut self, mirror: Arc<ReadMirror>) -> Result<()> {
        if mirror.n_records() != self.n_records() || mirror.s_rec() as u64 != self.db.s_rec {
            return Err(MmdbError::Invalid(format!(
                "mirror shape {}x{} does not match database {}x{}",
                mirror.n_records(),
                mirror.s_rec(),
                self.n_records(),
                self.db.s_rec
            )));
        }
        mirror.take_pending();
        self.mirror = mirror;
        Ok(())
    }

    /// Republishes every record from the authoritative segments into the
    /// mirror (end of recovery / restore, before reopening the gate).
    pub fn republish_all(&self) {
        let rps = self.db.records_per_segment();
        let s_rec = self.db.s_rec as usize;
        for (i, seg) in self.segments.iter().enumerate() {
            let first = i as u64 * rps;
            for (k, chunk) in seg.data.chunks_exact(s_rec).enumerate() {
                self.mirror.publish(RecordId(first + k as u64), chunk);
            }
        }
    }

    /// Copies queued shared-mode installs back into the authoritative
    /// segments. Shared-mode committers install into the mirror only (see
    /// [`ReadMirror::note_pending`]); the next exclusive holder calls this
    /// before relying on segment data or metadata. Reading the *current*
    /// mirror value for every entry makes the final content last-writer-
    /// wins while still bumping version/τ/LSN once per install, so dirty
    /// tracking and the WAL gate see every commit. Returns the number of
    /// entries applied. No data movement is charged — the install itself
    /// was charged when the committer published.
    pub fn sync_pending(&mut self) -> u64 {
        let entries = self.mirror.take_pending();
        if entries.is_empty() {
            return 0;
        }
        let mut buf = vec![0 as Word; self.db.s_rec as usize];
        let n = entries.len() as u64;
        for p in entries {
            self.mirror.snapshot_record(p.rid, &mut buf);
            let (seg, range) = self.record_range(p.rid);
            self.version_counter += 1;
            let version = self.version_counter;
            let s = &mut self.segments[seg];
            s.data[range].copy_from_slice(&buf);
            s.meta.version = version;
            if p.tau > s.meta.tau {
                s.meta.tau = p.tau;
            }
            if p.lsn > s.meta.max_lsn {
                s.meta.max_lsn = p.lsn;
            }
        }
        n
    }

    /// The database shape.
    pub fn db_params(&self) -> &DbParams {
        &self.db
    }

    /// Number of segments.
    pub fn n_segments(&self) -> u64 {
        self.db.n_segments()
    }

    /// Number of records.
    pub fn n_records(&self) -> u64 {
        self.db.n_records()
    }

    /// The current value of the global version counter. Captured by COU
    /// checkpoints as the snapshot horizon.
    pub fn current_version(&self) -> u64 {
        self.version_counter
    }

    /// The segment containing `rid`.
    pub fn segment_of(&self, rid: RecordId) -> Result<SegmentId> {
        if rid.raw() >= self.n_records() {
            return Err(MmdbError::RecordOutOfRange {
                record: rid,
                n_records: self.n_records(),
            });
        }
        Ok(SegmentId(
            (rid.raw() / self.db.records_per_segment()) as u32,
        ))
    }

    fn check_segment(&self, sid: SegmentId) -> Result<()> {
        if sid.raw() as u64 >= self.n_segments() {
            return Err(MmdbError::SegmentOutOfRange {
                segment: sid,
                n_segments: self.n_segments(),
            });
        }
        Ok(())
    }

    fn record_range(&self, rid: RecordId) -> (usize, std::ops::Range<usize>) {
        let rps = self.db.records_per_segment();
        let seg = (rid.raw() / rps) as usize;
        let off = (rid.raw() % rps) * self.db.s_rec;
        (seg, off as usize..(off + self.db.s_rec) as usize)
    }

    /// Reads a record's current value.
    pub fn read_record(&self, rid: RecordId) -> Result<&[Word]> {
        if rid.raw() >= self.n_records() {
            return Err(MmdbError::RecordOutOfRange {
                record: rid,
                n_records: self.n_records(),
            });
        }
        let (seg, range) = self.record_range(rid);
        Ok(&self.segments[seg].data[range])
    }

    /// Installs a committed update into the primary database, bumping the
    /// segment version and recording the update's LSN and the updating
    /// transaction's timestamp. Charges `S_rec` words of data movement.
    ///
    /// This is the *install* half of the shadow-copy scheme (§2.6): the
    /// transaction manager calls it only at commit.
    pub fn install_record(
        &mut self,
        rid: RecordId,
        value: &[Word],
        lsn: Lsn,
        tau: Timestamp,
        meter: &CostMeter,
    ) -> Result<()> {
        if value.len() as u64 != self.db.s_rec {
            return Err(MmdbError::BadRecordSize {
                expected: self.db.s_rec,
                got: value.len() as u64,
            });
        }
        if rid.raw() >= self.n_records() {
            return Err(MmdbError::RecordOutOfRange {
                record: rid,
                n_records: self.n_records(),
            });
        }
        let (seg, range) = self.record_range(rid);
        self.version_counter += 1;
        let version = self.version_counter;
        let seg = &mut self.segments[seg];
        seg.data[range].copy_from_slice(value);
        meter.move_words(value.len() as u64);
        seg.meta.version = version;
        if tau > seg.meta.tau {
            seg.meta.tau = tau;
        }
        if lsn > seg.meta.max_lsn {
            seg.meta.max_lsn = lsn;
        }
        self.mirror.publish(rid, value);
        Ok(())
    }

    /// Raw segment words (e.g. for tests and recovery verification).
    pub fn segment_data(&self, sid: SegmentId) -> Result<&[Word]> {
        self.check_segment(sid)?;
        Ok(&self.segments[sid.index()].data)
    }

    /// Segment metadata (version, LSN, paint, COU state).
    pub fn segment_meta(&self, sid: SegmentId) -> Result<&SegmentMeta> {
        self.check_segment(sid)?;
        Ok(&self.segments[sid.index()].meta)
    }

    /// Is the segment dirty with respect to ping-pong copy `copy`
    /// (i.e. modified since it was last flushed there)?
    pub fn is_dirty(&self, sid: SegmentId, copy: usize) -> Result<bool> {
        self.check_segment(sid)?;
        let m = &self.segments[sid.index()].meta;
        Ok(m.version > m.flushed_version[copy & 1])
    }

    /// Captures the live segment content for flushing.
    pub fn capture(&self, sid: SegmentId) -> Result<Capture<'_>> {
        self.check_segment(sid)?;
        let s = &self.segments[sid.index()];
        Ok(Capture {
            data: &s.data,
            version: s.meta.version,
            max_lsn: s.meta.max_lsn,
        })
    }

    /// Records that an image of `sid` at `version` has reached ping-pong
    /// copy `copy` (clears the dirty state up to that version).
    pub fn mark_flushed(&mut self, sid: SegmentId, copy: usize, version: u64) -> Result<()> {
        self.check_segment(sid)?;
        let m = &mut self.segments[sid.index()].meta;
        let slot = &mut m.flushed_version[copy & 1];
        if version > *slot {
            *slot = version;
        }
        Ok(())
    }

    // ----- two-color (paint) protocol ------------------------------------

    /// Paints every segment for a two-color checkpoint begin: segments in
    /// the white set become white (to be processed), all others are
    /// immediately black (they are already consistent with the backup).
    pub fn paint_for_checkpoint(&mut self, white: impl Fn(SegmentId) -> bool) {
        for (i, seg) in self.segments.iter_mut().enumerate() {
            let sid = SegmentId(i as u32);
            seg.meta.color = if white(sid) {
                Color::White
            } else {
                Color::Black
            };
        }
    }

    /// Paints one segment black (the checkpointer has processed it).
    pub fn paint_black(&mut self, sid: SegmentId) -> Result<()> {
        self.check_segment(sid)?;
        self.segments[sid.index()].meta.color = Color::Black;
        Ok(())
    }

    /// The segment's current color.
    pub fn color(&self, sid: SegmentId) -> Result<Color> {
        self.check_segment(sid)?;
        Ok(self.segments[sid.index()].meta.color)
    }

    /// Number of white segments remaining (test/diagnostic aid).
    pub fn white_count(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.meta.color == Color::White)
            .count() as u64
    }

    // ----- copy-on-update protocol ----------------------------------------

    /// Saves an old copy of the segment for the COU snapshot: allocates a
    /// buffer, copies the live content, and hangs it off `p(S)`
    /// (Figure 3.2). Charges one allocation and `S_seg` words of movement.
    ///
    /// Returns an error if an old copy already exists — the COU update
    /// protocol guarantees at most one copy per segment per checkpoint,
    /// and a second copy would clobber the snapshot.
    pub fn cou_save_old(&mut self, sid: SegmentId, meter: &CostMeter) -> Result<()> {
        self.check_segment(sid)?;
        let s = &mut self.segments[sid.index()];
        if s.meta.old.is_some() {
            return Err(MmdbError::Invalid(format!(
                "COU old copy already exists for {sid}"
            )));
        }
        meter.alloc_op();
        meter.move_words(s.data.len() as u64);
        s.meta.old = Some(Box::new(OldCopy {
            data: s.data.clone(),
            tau: s.meta.tau,
            version: s.meta.version,
            max_lsn: s.meta.max_lsn,
        }));
        Ok(())
    }

    /// Does the segment currently have a COU old copy?
    pub fn has_old(&self, sid: SegmentId) -> Result<bool> {
        self.check_segment(sid)?;
        Ok(self.segments[sid.index()].meta.old.is_some())
    }

    /// Detaches and returns the segment's COU old copy, if any. Charges
    /// the buffer deallocation (the caller is about to free it after the
    /// flush).
    pub fn take_old(&mut self, sid: SegmentId, meter: &CostMeter) -> Result<Option<Box<OldCopy>>> {
        self.check_segment(sid)?;
        let old = self.segments[sid.index()].meta.old.take();
        if old.is_some() {
            meter.alloc_op();
        }
        Ok(old)
    }

    /// Drops any leftover old copies (end of a COU checkpoint). Returns
    /// how many were dropped; each dropped buffer charges a deallocation.
    pub fn drop_all_old(&mut self, meter: &CostMeter) -> u64 {
        let mut n = 0;
        for s in &mut self.segments {
            if s.meta.old.take().is_some() {
                meter.alloc_op();
                n += 1;
            }
        }
        n
    }

    /// Total words currently held in COU old copies (the snapshot-buffer
    /// footprint the paper warns about: "Potentially, the snapshot could
    /// grow to be as large as the database itself", §3.2.2).
    pub fn old_copy_words(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.meta.old.is_some())
            .map(|s| s.data.len() as u64)
            .sum()
    }

    // ----- recovery support ------------------------------------------------

    /// Overwrites a segment's content wholesale (recovery loading a backup
    /// image) and resets the segment metadata.
    ///
    /// When `source_copy` is given, the segment is marked clean with
    /// respect to that ping-pong copy but *dirty* with respect to the
    /// other one — the other copy does not hold this image, so the next
    /// partial checkpoint targeting it must not skip the segment.
    pub fn load_segment(
        &mut self,
        sid: SegmentId,
        data: &[Word],
        source_copy: Option<usize>,
        meter: &CostMeter,
    ) -> Result<()> {
        self.check_segment(sid)?;
        if data.len() as u64 != self.db.s_seg {
            return Err(MmdbError::Invalid(format!(
                "segment image has {} words, expected {}",
                data.len(),
                self.db.s_seg
            )));
        }
        self.version_counter += 1;
        let version = self.version_counter;
        let s = &mut self.segments[sid.index()];
        s.data.copy_from_slice(data);
        meter.move_words(data.len() as u64);
        s.meta = SegmentMeta::default();
        if let Some(copy) = source_copy {
            s.meta.version = version;
            s.meta.flushed_version[copy & 1] = version;
        }
        self.mirror
            .publish_segment(self.mirror.segment_first_record(sid.raw()), data);
        Ok(())
    }

    /// Splits the storage into `n` disjoint *lanes* of contiguous
    /// segments and runs `f` on them; each lane can be handed to its own
    /// apply worker (parallel recovery partitions the committed-REDO
    /// window by segment, and segments are independent after commit
    /// resolution). The global version counter is shared atomically so
    /// per-segment dirty-tracking invariants hold exactly as in the
    /// serial path; it is folded back into the storage when `f` returns.
    ///
    /// Lane boundaries come from [`Storage::lane_of`]: lane `i` covers
    /// segments `[i*ceil(S/n), …)`. With `n` larger than the segment
    /// count, trailing lanes are empty.
    pub fn with_lanes<R>(&mut self, n: usize, f: impl FnOnce(Vec<StorageLane<'_>>) -> R) -> R {
        let n = n.max(1);
        let counter = std::sync::atomic::AtomicU64::new(self.version_counter);
        let per = self.segments.len().div_ceil(n);
        let db = self.db;
        let mirror = &self.mirror;
        let mut lanes = Vec::with_capacity(n);
        let mut rest: &mut [Segment] = &mut self.segments;
        let mut first = 0u32;
        for _ in 0..n {
            let take = per.min(rest.len());
            let (now, later) = rest.split_at_mut(take);
            lanes.push(StorageLane {
                db,
                segments: now,
                first,
                counter: &counter,
                mirror,
            });
            first += take as u32;
            rest = later;
        }
        let r = f(lanes);
        self.version_counter = counter.load(std::sync::atomic::Ordering::SeqCst);
        r
    }

    /// The lane (under [`Storage::with_lanes`] with the same `n`) that
    /// owns segment `sid`.
    pub fn lane_of(&self, sid: SegmentId, n: usize) -> usize {
        let n = n.max(1);
        let per = self.segments.len().div_ceil(n).max(1);
        (sid.raw() as usize) / per
    }

    /// A content fingerprint of the whole database — used by tests to
    /// compare pre-crash and post-recovery states.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for s in &self.segments {
            h.update_words(&s.data);
        }
        h.finish()
    }

    /// A content fingerprint of one segment.
    pub fn segment_fingerprint(&self, sid: SegmentId) -> Result<u64> {
        self.check_segment(sid)?;
        Ok(mmdb_types::hash::fnv1a_words(
            &self.segments[sid.index()].data,
        ))
    }

    /// Iterator over all segment ids in sweep order.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.n_segments() as u32).map(SegmentId)
    }
}

/// One worker's disjoint view of the storage: a contiguous run of
/// segments plus the shared version counter. Created by
/// [`Storage::with_lanes`]; safe to move to a scoped thread.
#[derive(Debug)]
pub struct StorageLane<'a> {
    db: DbParams,
    segments: &'a mut [Segment],
    /// Global id of `segments[0]`.
    first: u32,
    counter: &'a std::sync::atomic::AtomicU64,
    /// Shared read mirror; lane installs republish into it (lanes own
    /// disjoint segments, so no two lanes publish the same record).
    mirror: &'a ReadMirror,
}

impl StorageLane<'_> {
    /// Global id of the first segment this lane owns.
    pub fn first_segment(&self) -> SegmentId {
        SegmentId(self.first)
    }

    /// Number of segments in the lane (possibly zero).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the lane owns no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Does this lane own segment `sid`?
    pub fn owns(&self, sid: SegmentId) -> bool {
        let i = sid.raw() as usize;
        let first = self.first as usize;
        first <= i && i < first + self.segments.len()
    }

    fn local(&mut self, sid: SegmentId) -> Result<&mut Segment> {
        if !self.owns(sid) {
            return Err(MmdbError::Invalid(format!(
                "segment {sid} is outside this lane ([{}, {}))",
                self.first,
                self.first as usize + self.segments.len()
            )));
        }
        Ok(&mut self.segments[sid.raw() as usize - self.first as usize])
    }

    /// Fresh draw from the shared version counter (post-increment value,
    /// matching the serial `version_counter += 1; version_counter` idiom).
    fn draw(&self) -> u64 {
        self.counter
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1
    }

    /// Lane-local mirror of [`Storage::load_segment`]: overwrites the
    /// segment wholesale, resets its metadata, and marks it clean with
    /// respect to `source_copy` (dirty for the other ping-pong copy).
    pub fn load_segment(
        &mut self,
        sid: SegmentId,
        data: &[Word],
        source_copy: Option<usize>,
        meter: &CostMeter,
    ) -> Result<()> {
        if data.len() as u64 != self.db.s_seg {
            return Err(MmdbError::Invalid(format!(
                "segment image has {} words, expected {}",
                data.len(),
                self.db.s_seg
            )));
        }
        let version = self.draw();
        let s = self.local(sid)?;
        s.data.copy_from_slice(data);
        meter.move_words(data.len() as u64);
        s.meta = SegmentMeta::default();
        if let Some(copy) = source_copy {
            s.meta.version = version;
            s.meta.flushed_version[copy & 1] = version;
        }
        self.mirror
            .publish_segment(self.mirror.segment_first_record(sid.raw()), data);
        Ok(())
    }

    /// Lane-local mirror of [`Storage::install_record`] (recovery replay
    /// installs with the same version/τ/LSN bookkeeping as the live
    /// path). The record must live in a segment this lane owns.
    pub fn install_record(
        &mut self,
        rid: RecordId,
        value: &[Word],
        lsn: Lsn,
        tau: Timestamp,
        meter: &CostMeter,
    ) -> Result<()> {
        if value.len() as u64 != self.db.s_rec {
            return Err(MmdbError::BadRecordSize {
                expected: self.db.s_rec,
                got: value.len() as u64,
            });
        }
        if rid.raw() >= self.db.n_records() {
            return Err(MmdbError::RecordOutOfRange {
                record: rid,
                n_records: self.db.n_records(),
            });
        }
        let rps = self.db.records_per_segment();
        let sid = SegmentId((rid.raw() / rps) as u32);
        let off = ((rid.raw() % rps) * self.db.s_rec) as usize;
        let version = self.draw();
        let s = self.local(sid)?;
        s.data[off..off + value.len()].copy_from_slice(value);
        meter.move_words(value.len() as u64);
        s.meta.version = version;
        if tau > s.meta.tau {
            s.meta.tau = tau;
        }
        if lsn > s.meta.max_lsn {
            s.meta.max_lsn = lsn;
        }
        self.mirror.publish(rid, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{CostCategory, CostParams, Params};

    fn small() -> Storage {
        Storage::new(Params::small().db).unwrap()
    }

    fn meter() -> CostMeter {
        CostMeter::new(CostParams::default())
    }

    fn rec(storage: &Storage, fill: Word) -> Vec<Word> {
        vec![fill; storage.db_params().s_rec as usize]
    }

    #[test]
    fn geometry_small() {
        let s = small();
        assert_eq!(s.n_segments(), 32);
        assert_eq!(s.n_records(), 2048);
        assert_eq!(s.segment_of(RecordId(0)).unwrap(), SegmentId(0));
        assert_eq!(s.segment_of(RecordId(63)).unwrap(), SegmentId(0));
        assert_eq!(s.segment_of(RecordId(64)).unwrap(), SegmentId(1));
        assert_eq!(s.segment_of(RecordId(2047)).unwrap(), SegmentId(31));
        assert!(s.segment_of(RecordId(2048)).is_err());
    }

    #[test]
    fn install_and_read_roundtrip() {
        let mut s = small();
        let m = meter();
        let v = rec(&s, 0xABCD);
        s.install_record(RecordId(100), &v, Lsn(10), Timestamp(1), &m)
            .unwrap();
        assert_eq!(s.read_record(RecordId(100)).unwrap(), &v[..]);
        // neighbours untouched
        assert_eq!(s.read_record(RecordId(99)).unwrap(), &rec(&s, 0)[..]);
        assert_eq!(s.read_record(RecordId(101)).unwrap(), &rec(&s, 0)[..]);
    }

    #[test]
    fn install_charges_move_cost() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(1), Timestamp(1), &m)
            .unwrap();
        assert_eq!(m.snapshot().get(CostCategory::Move), 32);
    }

    #[test]
    fn install_rejects_wrong_size() {
        let mut s = small();
        let m = meter();
        let err = s
            .install_record(RecordId(0), &[1, 2, 3], Lsn(1), Timestamp(1), &m)
            .unwrap_err();
        assert!(matches!(
            err,
            MmdbError::BadRecordSize {
                expected: 32,
                got: 3
            }
        ));
    }

    #[test]
    fn versions_bump_and_track_dirtiness() {
        let mut s = small();
        let m = meter();
        assert!(!s.is_dirty(SegmentId(0), 0).unwrap());
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(1), Timestamp(1), &m)
            .unwrap();
        assert!(s.is_dirty(SegmentId(0), 0).unwrap());
        assert!(s.is_dirty(SegmentId(0), 1).unwrap());

        let ver = s.capture(SegmentId(0)).unwrap().version;
        s.mark_flushed(SegmentId(0), 0, ver).unwrap();
        assert!(!s.is_dirty(SegmentId(0), 0).unwrap());
        assert!(
            s.is_dirty(SegmentId(0), 1).unwrap(),
            "other copy still dirty"
        );

        // an update after the flush re-dirties copy 0
        s.install_record(RecordId(1), &rec(&s, 2), Lsn(2), Timestamp(2), &m)
            .unwrap();
        assert!(s.is_dirty(SegmentId(0), 0).unwrap());
    }

    #[test]
    fn mark_flushed_never_regresses() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(1), Timestamp(1), &m)
            .unwrap();
        let v1 = s.capture(SegmentId(0)).unwrap().version;
        s.install_record(RecordId(1), &rec(&s, 2), Lsn(2), Timestamp(2), &m)
            .unwrap();
        let v2 = s.capture(SegmentId(0)).unwrap().version;
        s.mark_flushed(SegmentId(0), 0, v2).unwrap();
        // a stale flush completion must not clear the newer version
        s.mark_flushed(SegmentId(0), 0, v1).unwrap();
        assert_eq!(s.segment_meta(SegmentId(0)).unwrap().flushed_version[0], v2);
    }

    #[test]
    fn capture_carries_max_lsn() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(500), Timestamp(1), &m)
            .unwrap();
        s.install_record(RecordId(1), &rec(&s, 2), Lsn(300), Timestamp(2), &m)
            .unwrap();
        let cap = s.capture(SegmentId(0)).unwrap();
        assert_eq!(cap.max_lsn, Lsn(500), "max, not latest");
    }

    #[test]
    fn tau_is_max_of_updaters() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(1), Timestamp(9), &m)
            .unwrap();
        s.install_record(RecordId(1), &rec(&s, 2), Lsn(2), Timestamp(4), &m)
            .unwrap();
        assert_eq!(s.segment_meta(SegmentId(0)).unwrap().tau, Timestamp(9));
    }

    #[test]
    fn paint_protocol() {
        let mut s = small();
        s.paint_for_checkpoint(|sid| sid.raw() < 4);
        assert_eq!(s.white_count(), 4);
        assert_eq!(s.color(SegmentId(0)).unwrap(), Color::White);
        assert_eq!(s.color(SegmentId(4)).unwrap(), Color::Black);
        s.paint_black(SegmentId(0)).unwrap();
        assert_eq!(s.color(SegmentId(0)).unwrap(), Color::Black);
        assert_eq!(s.white_count(), 3);
    }

    #[test]
    fn cou_old_copy_lifecycle() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 7), Lsn(1), Timestamp(3), &m)
            .unwrap();
        let before = s.segment_fingerprint(SegmentId(0)).unwrap();

        s.cou_save_old(SegmentId(0), &m).unwrap();
        assert!(s.has_old(SegmentId(0)).unwrap());
        assert_eq!(s.old_copy_words(), 2048);
        // double-save is a protocol violation
        assert!(s.cou_save_old(SegmentId(0), &m).is_err());

        // mutate the live segment; the old copy must keep the snapshot
        s.install_record(RecordId(1), &rec(&s, 9), Lsn(2), Timestamp(5), &m)
            .unwrap();
        let old = s.take_old(SegmentId(0), &m).unwrap().unwrap();
        assert_eq!(mmdb_types::hash::fnv1a_words(&old.data), before);
        assert_eq!(old.tau, Timestamp(3));
        assert!(!s.has_old(SegmentId(0)).unwrap());
        assert_eq!(s.old_copy_words(), 0);
    }

    #[test]
    fn cou_save_charges_alloc_and_copy() {
        let mut s = small();
        let m = meter();
        s.cou_save_old(SegmentId(0), &m).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.get(CostCategory::Alloc), 100);
        assert_eq!(snap.get(CostCategory::Move), 2048);
        // take_old charges the deallocation
        s.take_old(SegmentId(0), &m).unwrap();
        assert_eq!(m.snapshot().get(CostCategory::Alloc), 200);
    }

    #[test]
    fn drop_all_old_counts_and_charges() {
        let mut s = small();
        let m = meter();
        s.cou_save_old(SegmentId(1), &m).unwrap();
        s.cou_save_old(SegmentId(2), &m).unwrap();
        let before = m.snapshot().get(CostCategory::Alloc);
        assert_eq!(s.drop_all_old(&m), 2);
        assert_eq!(m.snapshot().get(CostCategory::Alloc) - before, 200);
        assert_eq!(s.drop_all_old(&m), 0);
    }

    #[test]
    fn load_segment_resets_meta() {
        let mut s = small();
        let m = meter();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(5), Timestamp(2), &m)
            .unwrap();
        let image = vec![42 as Word; 2048];
        s.load_segment(SegmentId(0), &image, None, &m).unwrap();
        assert_eq!(s.segment_data(SegmentId(0)).unwrap(), &image[..]);
        let meta = s.segment_meta(SegmentId(0)).unwrap();
        assert_eq!(meta.version, 0);
        assert_eq!(meta.max_lsn, Lsn::ZERO);
        assert!(meta.old.is_none());
    }

    #[test]
    fn load_segment_from_copy_stays_dirty_for_other_copy() {
        let mut s = small();
        let m = meter();
        let image = vec![7 as Word; 2048];
        s.load_segment(SegmentId(3), &image, Some(1), &m).unwrap();
        assert!(
            !s.is_dirty(SegmentId(3), 1).unwrap(),
            "clean w.r.t. the copy it was read from"
        );
        assert!(
            s.is_dirty(SegmentId(3), 0).unwrap(),
            "dirty w.r.t. the copy that lacks this image"
        );
    }

    #[test]
    fn load_segment_rejects_wrong_size() {
        let mut s = small();
        let m = meter();
        assert!(s.load_segment(SegmentId(0), &[1, 2, 3], None, &m).is_err());
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let mut s = small();
        let m = meter();
        let f0 = s.fingerprint();
        s.install_record(RecordId(0), &rec(&s, 1), Lsn(1), Timestamp(1), &m)
            .unwrap();
        assert_ne!(s.fingerprint(), f0);
    }

    #[test]
    fn lanes_partition_all_segments() {
        let mut s = small();
        for n in [1, 2, 3, 8, 32, 100] {
            let total: usize = s.with_lanes(n, |lanes| {
                assert_eq!(lanes.len(), n);
                lanes.iter().map(|l| l.len()).sum()
            });
            assert_eq!(total, 32, "n = {n}");
        }
        // lane_of agrees with ownership
        s.with_lanes(3, |lanes| {
            for sid in (0..32u32).map(SegmentId) {
                let idx = lanes.iter().position(|l| l.owns(sid)).unwrap();
                assert_eq!(
                    idx,
                    (sid.raw() as usize) / 32usize.div_ceil(3),
                    "segment {sid}"
                );
            }
        });
        for sid in (0..32u32).map(SegmentId) {
            let expect = (sid.raw() as usize) / 32usize.div_ceil(3);
            assert_eq!(s.lane_of(sid, 3), expect);
        }
    }

    #[test]
    fn lane_installs_match_serial_semantics() {
        let m = meter();
        let mut serial = small();
        let mut parallel = small();
        let v1 = rec(&serial, 5);
        let v2 = rec(&serial, 9);
        serial
            .install_record(RecordId(0), &v1, Lsn(10), Timestamp(2), &m)
            .unwrap();
        serial
            .install_record(RecordId(2000), &v2, Lsn(20), Timestamp(3), &m)
            .unwrap();

        parallel.with_lanes(2, |mut lanes| {
            std::thread::scope(|scope| {
                let (a, b) = {
                    let mut it = lanes.drain(..);
                    (it.next().unwrap(), it.next().unwrap())
                };
                let m1 = meter();
                let m2 = meter();
                let t1 = scope.spawn(move || {
                    let mut a = a;
                    a.install_record(RecordId(0), &v1, Lsn(10), Timestamp(2), &m1)
                });
                let t2 = scope.spawn(move || {
                    let mut b = b;
                    b.install_record(RecordId(2000), &v2, Lsn(20), Timestamp(3), &m2)
                });
                t1.join().unwrap().unwrap();
                t2.join().unwrap().unwrap();
            });
        });
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
        assert_eq!(parallel.current_version(), serial.current_version());
        for sid in [SegmentId(0), SegmentId(31)] {
            let sm = serial.segment_meta(sid).unwrap();
            let pm = parallel.segment_meta(sid).unwrap();
            assert_eq!(sm.max_lsn, pm.max_lsn);
            assert_eq!(sm.tau, pm.tau);
        }
    }

    #[test]
    fn lane_rejects_foreign_segment() {
        let mut s = small();
        let m = meter();
        let image = vec![1 as Word; 2048];
        s.with_lanes(2, |mut lanes| {
            // lane 1 starts at segment 16; record 0 lives in segment 0
            assert!(lanes[1]
                .install_record(RecordId(0), &vec![0; 32], Lsn(1), Timestamp(1), &m)
                .is_err());
            assert!(lanes[1]
                .load_segment(SegmentId(0), &image, None, &m)
                .is_err());
            assert!(lanes[0]
                .load_segment(SegmentId(0), &image, None, &m)
                .is_ok());
        });
        assert_eq!(s.segment_data(SegmentId(0)).unwrap(), &image[..]);
    }

    #[test]
    fn mirror_tracks_installs() {
        let mut s = small();
        let m = meter();
        let v = rec(&s, 0xBEEF);
        s.install_record(RecordId(7), &v, Lsn(3), Timestamp(1), &m)
            .unwrap();
        let mirror = s.mirror().clone();
        let mut out = vec![0; 32];
        assert!(mirror.try_read(RecordId(7), &mut out));
        assert_eq!(out, v);
        assert!(mirror.try_read(RecordId(8), &mut out));
        assert_eq!(out, rec(&s, 0), "neighbour untouched");
        assert!(!mirror.try_read(RecordId(9999), &mut out), "out of range");
        assert!(!mirror.try_read(RecordId(7), &mut [0; 3]), "bad size");
    }

    #[test]
    fn mirror_gate_blocks_reads() {
        let s = small();
        let mirror = s.mirror().clone();
        let mut out = vec![0; 32];
        assert!(mirror.try_read(RecordId(0), &mut out));
        mirror.gate_close();
        assert!(mirror.gate_closed());
        assert!(!mirror.try_read(RecordId(0), &mut out));
        mirror.gate_open();
        assert!(!mirror.gate_closed());
        assert!(mirror.try_read(RecordId(0), &mut out));
    }

    #[test]
    fn shared_installs_sync_back() {
        let mut s = small();
        let mirror = s.mirror().clone();
        // Two shared-mode installs to one record, as a latch-holding
        // committer would do: mirror publish + pending note, no &mut.
        for (fill, lsn, tau) in [(4u32, 10u64, 2u64), (6, 20, 5)] {
            let v = vec![fill as Word; 32];
            mirror.publish(RecordId(5), &v);
            mirror.note_pending(PendingInstall {
                rid: RecordId(5),
                tau: Timestamp(tau),
                lsn: Lsn(lsn),
            });
        }
        assert_eq!(mirror.pending_len(), 2);
        // Authoritative copy still stale until the exclusive drain.
        assert_eq!(
            s.read_record(RecordId(5)).unwrap(),
            &vec![0 as Word; 32][..]
        );
        assert_eq!(s.sync_pending(), 2);
        assert_eq!(mirror.pending_len(), 0);
        assert_eq!(
            s.read_record(RecordId(5)).unwrap(),
            &vec![6 as Word; 32][..]
        );
        let meta = s.segment_meta(SegmentId(0)).unwrap();
        assert_eq!(meta.max_lsn, Lsn(20));
        assert_eq!(meta.tau, Timestamp(5));
        assert!(s.is_dirty(SegmentId(0), 0).unwrap());
        assert_eq!(s.sync_pending(), 0, "drain is idempotent");
    }

    #[test]
    fn adopt_and_republish_survive_recovery_swap() {
        let mut pre = small();
        let m = meter();
        pre.install_record(RecordId(0), &rec(&pre, 1), Lsn(1), Timestamp(1), &m)
            .unwrap();
        let handle = pre.mirror().clone();
        // Crash: gate closes, readers refuse, storage is rebuilt fresh.
        handle.gate_close();
        let mut out = vec![0; 32];
        assert!(!handle.try_read(RecordId(0), &mut out));
        let mut post = small();
        post.install_record(RecordId(0), &rec(&post, 9), Lsn(1), Timestamp(1), &m)
            .unwrap();
        post.adopt_mirror(handle.clone()).unwrap();
        post.republish_all();
        handle.gate_open();
        assert!(handle.try_read(RecordId(0), &mut out));
        assert_eq!(out, rec(&post, 9), "old handle serves recovered content");
        // Shape mismatch is rejected.
        let mut other = Storage::new(Params::default().db).unwrap();
        assert!(other.adopt_mirror(handle).is_err());
    }

    #[test]
    fn lane_installs_publish_to_mirror() {
        let mut s = small();
        let m = meter();
        let v = rec(&s, 3);
        let image = vec![8 as Word; 2048];
        s.with_lanes(2, |mut lanes| {
            lanes[0]
                .install_record(RecordId(1), &v, Lsn(1), Timestamp(1), &m)
                .unwrap();
            lanes[1]
                .load_segment(SegmentId(20), &image, None, &m)
                .unwrap();
        });
        let mirror = s.mirror().clone();
        let mut out = vec![0; 32];
        assert!(mirror.try_read(RecordId(1), &mut out));
        assert_eq!(out, v);
        assert!(mirror.try_read(RecordId(20 * 64), &mut out));
        assert_eq!(out, vec![8 as Word; 32]);
    }

    #[test]
    fn mirror_readers_never_observe_torn_records() {
        let s = small();
        let mirror = s.mirror().clone();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                // Uniform-fill records: any mix of two versions is torn.
                for k in 1..=20_000u32 {
                    mirror.publish(RecordId(3), &vec![k as Word; 32]);
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            let mut out = vec![0; 32];
            let mut hits = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) || hits == 0 {
                if mirror.try_read(RecordId(3), &mut out) {
                    hits += 1;
                    assert!(
                        out.iter().all(|&w| w == out[0]),
                        "torn read: {:?}",
                        &out[..4]
                    );
                }
            }
            writer.join().unwrap();
            assert!(hits > 0);
        });
    }

    #[test]
    fn out_of_range_segment_ops_fail() {
        let mut s = small();
        let m = meter();
        let bad = SegmentId(32);
        assert!(s.segment_data(bad).is_err());
        assert!(s.capture(bad).is_err());
        assert!(s.paint_black(bad).is_err());
        assert!(s.cou_save_old(bad, &m).is_err());
        assert!(s.is_dirty(bad, 0).is_err());
    }
}
