//! Lock-free read mirror: a seqlock-protected copy of every record that
//! readers can consult without taking the engine lock.
//!
//! The authoritative database (`Storage`'s `Vec<Segment>`) is plain,
//! unsynchronized memory and stays that way — the engine serializes all
//! access to it. The mirror is a second, flat copy of the record data
//! built from atomics, kept up to date by every install path:
//!
//! * each record has a **sequence counter** (odd = a writer is mid-copy);
//! * record words are `AtomicU32` (`Word` is `u32`), written with the
//!   classic seqlock writer protocol (odd → relaxed word stores behind a
//!   release fence → even with release) and read with the matching
//!   reader protocol (acquire seq, relaxed word loads, acquire fence,
//!   re-check seq);
//! * a mirror-global **gate** counter (odd = closed) lets crash and
//!   recovery take the whole mirror out of service so no reader can be
//!   served a pre-crash value while the authoritative copy is being
//!   rebuilt.
//!
//! Writers to any one record must be serialized externally (the engine's
//! per-segment latches, `&mut Storage`, or lane disjointness all provide
//! this); the seqlock only protects readers from writers.
//!
//! The mirror also carries the **pending-sync queue**: shared-mode
//! commits install into the mirror only (they hold no `&mut Storage`)
//! and enqueue a note per install; the next holder of exclusive access
//! drains the queue into the authoritative segments via
//! [`crate::Storage::sync_pending`]. The queue mutex is a leaf: nothing
//! else is ever acquired while it is held, so it sits outside the ranked
//! hierarchy by construction.

use mmdb_types::{DbParams, Lsn, RecordId, Timestamp, Word};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// One shared-mode install awaiting copy-back into the authoritative
/// segments (see [`crate::Storage::sync_pending`]).
#[derive(Debug, Clone, Copy)]
pub struct PendingInstall {
    /// The installed record.
    pub rid: RecordId,
    /// Timestamp of the installing transaction (for `τ(S)` maintenance).
    pub tau: Timestamp,
    /// LSN of the install's log record (for the segment WAL gate).
    pub lsn: Lsn,
}

/// The seqlock read mirror. Create via `Storage`; share via `Arc`.
#[derive(Debug)]
pub struct ReadMirror {
    n_records: u64,
    s_rec: usize,
    records_per_segment: u64,
    /// Flat record data: record `r` occupies words `[r*s_rec, (r+1)*s_rec)`.
    words: Vec<AtomicU32>,
    /// Per-record sequence counters; odd while a writer is copying.
    seqs: Vec<AtomicU64>,
    /// Mirror-global gate; odd while crash/recovery has the mirror closed.
    gate: AtomicU64,
    pending: Mutex<Vec<PendingInstall>>,
}

impl ReadMirror {
    pub(crate) fn new(db: &DbParams) -> ReadMirror {
        let n_records = db.n_records();
        let s_rec = db.s_rec as usize;
        let total = n_records as usize * s_rec;
        ReadMirror {
            n_records,
            s_rec,
            records_per_segment: db.records_per_segment(),
            words: (0..total).map(|_| AtomicU32::new(0)).collect(),
            seqs: (0..n_records).map(|_| AtomicU64::new(0)).collect(),
            gate: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Record size in words (mirror shape check for adoption).
    pub fn s_rec(&self) -> usize {
        self.s_rec
    }

    /// Number of records mirrored.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    fn span(&self, rid: RecordId) -> std::ops::Range<usize> {
        let i = rid.raw() as usize * self.s_rec;
        i..i + self.s_rec
    }

    /// One optimistic read attempt. On success `out` holds a consistent
    /// committed value and `true` is returned; `false` means a writer or
    /// the gate interfered (or `rid` is out of range) and the caller
    /// should retry or fall back to the locked path.
    pub fn try_read(&self, rid: RecordId, out: &mut [Word]) -> bool {
        if rid.raw() >= self.n_records || out.len() != self.s_rec {
            return false;
        }
        let gate0 = self.gate.load(Ordering::Acquire);
        if gate0 & 1 == 1 {
            return false;
        }
        let seq = &self.seqs[rid.raw() as usize];
        let seq0 = seq.load(Ordering::Acquire);
        if seq0 & 1 == 1 {
            return false;
        }
        for (o, w) in out.iter_mut().zip(&self.words[self.span(rid)]) {
            *o = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        seq.load(Ordering::Relaxed) == seq0 && self.gate.load(Ordering::Relaxed) == gate0
    }

    /// Publishes a record value to the mirror. The caller must hold
    /// whatever serializes writers to this record (segment latch,
    /// `&mut Storage`, or lane ownership) — concurrent publishes to the
    /// *same* record are a protocol violation.
    pub fn publish(&self, rid: RecordId, value: &[Word]) {
        debug_assert!(rid.raw() < self.n_records);
        debug_assert_eq!(value.len(), self.s_rec);
        let seq = &self.seqs[rid.raw() as usize];
        let seq0 = seq.load(Ordering::Relaxed);
        debug_assert_eq!(seq0 & 1, 0, "concurrent publish to one record");
        seq.store(seq0 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in self.words[self.span(rid)].iter().zip(value) {
            w.store(*v, Ordering::Relaxed);
        }
        seq.store(seq0 + 2, Ordering::Release);
    }

    /// Publishes a whole segment image (recovery loading a backup).
    pub fn publish_segment(&self, first_record: RecordId, data: &[Word]) {
        debug_assert_eq!(data.len() % self.s_rec, 0);
        for (k, chunk) in data.chunks_exact(self.s_rec).enumerate() {
            self.publish(RecordId(first_record.raw() + k as u64), chunk);
        }
    }

    /// First record of segment `sid` (publish_segment helper).
    pub fn segment_first_record(&self, sid: u32) -> RecordId {
        RecordId(sid as u64 * self.records_per_segment)
    }

    /// Reads a record's current mirror value without the seqlock dance.
    /// Only sound while the caller holds exclusive access (no concurrent
    /// publishers) — used by the pending-sync drain.
    pub fn snapshot_record(&self, rid: RecordId, out: &mut [Word]) {
        debug_assert!(rid.raw() < self.n_records);
        for (o, w) in out.iter_mut().zip(&self.words[self.span(rid)]) {
            *o = w.load(Ordering::Relaxed);
        }
    }

    // ----- gate ------------------------------------------------------------

    /// Closes the gate (crash): every `try_read` fails until the gate
    /// reopens. Caller must hold exclusive access.
    pub fn gate_close(&self) {
        let g = self.gate.load(Ordering::Relaxed);
        debug_assert_eq!(g & 1, 0, "gate already closed");
        self.gate.store(g + 1, Ordering::Relaxed);
        fence(Ordering::Release);
    }

    /// Reopens the gate (end of recovery, after the mirror has been
    /// republished from the authoritative copy).
    pub fn gate_open(&self) {
        let g = self.gate.load(Ordering::Relaxed);
        debug_assert_eq!(g & 1, 1, "gate not closed");
        self.gate.store(g + 1, Ordering::Release);
    }

    /// Is the gate currently closed?
    pub fn gate_closed(&self) -> bool {
        self.gate.load(Ordering::Acquire) & 1 == 1
    }

    // ----- pending-sync queue ----------------------------------------------

    fn pending_lock(&self) -> std::sync::MutexGuard<'_, Vec<PendingInstall>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues a shared-mode install for later copy-back into the
    /// authoritative segments.
    pub fn note_pending(&self, p: PendingInstall) {
        self.pending_lock().push(p);
    }

    /// Takes the whole pending queue (exclusive holders drain it via
    /// [`crate::Storage::sync_pending`]; crash discards it — the installs
    /// are logged and recovery replays them).
    pub fn take_pending(&self) -> Vec<PendingInstall> {
        std::mem::take(&mut *self.pending_lock())
    }

    /// Number of queued installs (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending_lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn mirror() -> Arc<ReadMirror> {
        Arc::new(ReadMirror::new(&DbParams {
            s_db: 4096,
            s_rec: 16,
            s_seg: 256,
        }))
    }

    /// The raw seqlock under fire: two writers on disjoint record halves
    /// (the external-serialization contract), two readers racing them.
    /// Writers publish uniform values, so any successful read with
    /// unequal words is a torn read — the one thing the protocol exists
    /// to prevent. This is the TSan target for the mirror in isolation.
    #[test]
    fn racing_readers_never_see_a_torn_publish() {
        let m = mirror();
        let n = m.n_records();
        let s_rec = m.s_rec();
        for r in 0..n {
            m.publish(RecordId(r), &vec![1; s_rec]);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let m = Arc::clone(&m);
                let half = (w * n / 2)..((w + 1) * n / 2);
                std::thread::spawn(move || {
                    for i in 0..20_000u32 {
                        let r = half.start + u64::from(i) % (half.end - half.start);
                        m.publish(RecordId(r), &vec![i | 1; s_rec]);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|r| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 0x243F_6A88_85A3_08D3u64 ^ (r + 1);
                    let mut ok = 0u64;
                    let mut out = vec![0; s_rec];
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if m.try_read(RecordId(x % n), &mut out) {
                            assert!(out.iter().all(|&w| w == out[0]), "torn read: {out:?}");
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let ok = r.join().unwrap();
            assert!(ok > 0, "reader starved — every optimistic read failed");
        }
    }

    #[test]
    fn closed_gate_fails_every_read_until_reopened() {
        let m = mirror();
        let s_rec = m.s_rec();
        m.publish(RecordId(3), &vec![9; s_rec]);
        let mut out = vec![0; s_rec];
        assert!(m.try_read(RecordId(3), &mut out));
        assert_eq!(out, vec![9; s_rec]);

        m.gate_close();
        assert!(m.gate_closed());
        assert!(!m.try_read(RecordId(3), &mut out), "closed gate must fail");
        m.gate_open();
        assert!(!m.gate_closed());
        assert!(m.try_read(RecordId(3), &mut out));
    }

    #[test]
    fn out_of_range_and_wrong_width_reads_fail() {
        let m = mirror();
        let s_rec = m.s_rec();
        let n = m.n_records();
        let mut out = vec![0; s_rec];
        assert!(!m.try_read(RecordId(n), &mut out));
        let mut short = vec![0; s_rec - 1];
        assert!(!m.try_read(RecordId(0), &mut short));
    }
}
