//! Online protocol-invariant auditing for the checkpointing algorithms.
//!
//! The engine, checkpointer, log manager and backup store emit a typed
//! [`AuditEvent`] stream when auditing is enabled; six checker state
//! machines validate the paper's correctness invariants against it as it
//! happens:
//!
//! 1. **WAL gate** — no segment image reaches a backup copy before every log
//!    record it contains is durable (the LSN condition, §2.1).
//! 2. **Paint discipline** — under two-color algorithms a transaction never
//!    installs across both colors, and the sweep visits every white segment
//!    exactly once (§4).
//! 3. **COU lifetime** — copy-on-update old copies exist only inside an
//!    active checkpoint and are fully swept by completion (§5).
//! 4. **Ping-pong** — backup copies strictly alternate and recovery selects
//!    the most recent *complete* copy (§2.2).
//! 5. **Monotonicity** — the durable LSN horizon and checkpoint ids only
//!    move forward.
//! 6. **Shard routing** — in a sharded engine, every record is processed
//!    by its hash partition, and cross-shard commits acquire shard locks
//!    in ascending order and release them in reverse.
//!
//! Violations surface as structured [`AuditViolation`]s through
//! [`Auditor::violations`] and the engine's audit report; the checkers never
//! panic, so they are safe to leave on in release builds and long sim runs.

mod checkers;
mod event;

pub use checkers::{
    AuditViolation, CheckerId, CouChecker, MonotonicChecker, PaintChecker, PingPongChecker,
    ShardChecker, WalGateChecker,
};
pub use event::{AuditEvent, CopySummary, PaintColor};

use mmdb_sync::{LockRank, RankedMutex};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Dispatches each event to every checker and accumulates violations plus
/// coverage counts.
#[derive(Debug, Default)]
pub struct Auditor {
    seq: u64,
    by_kind: BTreeMap<&'static str, u64>,
    wal_gate: WalGateChecker,
    paint: PaintChecker,
    cou: CouChecker,
    ping_pong: PingPongChecker,
    monotonic: MonotonicChecker,
    shard: ShardChecker,
    violations: Vec<AuditViolation>,
}

impl Auditor {
    /// Fresh auditor with no history.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Feed one event through every checker.
    pub fn record(&mut self, event: &AuditEvent) {
        let seq = self.seq;
        self.seq += 1;
        *self.by_kind.entry(event.kind()).or_insert(0) += 1;
        self.wal_gate.on_event(seq, event, &mut self.violations);
        self.paint.on_event(seq, event, &mut self.violations);
        self.cou.on_event(seq, event, &mut self.violations);
        self.ping_pong.on_event(seq, event, &mut self.violations);
        self.monotonic.on_event(seq, event, &mut self.violations);
        self.shard.on_event(seq, event, &mut self.violations);
    }

    /// Events recorded so far.
    pub fn events_seen(&self) -> u64 {
        self.seq
    }

    /// All violations detected so far, in stream order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Snapshot of coverage and violations.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            events: self.seq,
            by_kind: self.by_kind.iter().map(|(k, v)| (*k, *v)).collect(),
            checks: vec![
                (CheckerId::WalGate, self.wal_gate.checks),
                (CheckerId::Paint, self.paint.checks),
                (CheckerId::CouLifetime, self.cou.checks),
                (CheckerId::PingPong, self.ping_pong.checks),
                (CheckerId::Monotonic, self.monotonic.checks),
                (CheckerId::Shard, self.shard.checks),
            ],
            violations: self.violations.clone(),
        }
    }
}

/// Coverage and violation summary produced by [`Auditor::report`].
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Total events recorded.
    pub events: u64,
    /// Events per kind, sorted by kind name.
    pub by_kind: Vec<(&'static str, u64)>,
    /// Invariant checks performed per checker.
    pub checks: Vec<(CheckerId, u64)>,
    /// All detected violations, in stream order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no checker fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "audit: {} events", self.events)?;
        for (kind, n) in &self.by_kind {
            writeln!(f, "  event {kind:<22} {n}")?;
        }
        for (checker, n) in &self.checks {
            writeln!(f, "  checks {:<21} {n}", checker.name())?;
        }
        if self.violations.is_empty() {
            writeln!(f, "  violations: none")?;
        } else {
            writeln!(f, "  violations: {}", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "    {v}")?;
            }
        }
        Ok(())
    }
}

/// Cheap, clonable handle to a shared [`Auditor`], or a no-op when disabled.
///
/// Every emitting component holds one. `emit` takes a closure so that a
/// disabled handle never constructs the event.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    inner: Option<Arc<RankedMutex<Auditor>>>,
}

impl Audit {
    /// A handle that drops every event (zero overhead beyond one branch).
    pub fn disabled() -> Self {
        Audit { inner: None }
    }

    /// A handle backed by a fresh shared auditor.
    pub fn enabled() -> Self {
        Audit {
            inner: Some(Arc::new(RankedMutex::new(
                "audit",
                LockRank::AUDIT,
                Auditor::new(),
            ))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record the event produced by `make` (not called when disabled).
    pub fn emit(&self, make: impl FnOnce() -> AuditEvent) {
        if let Some(auditor) = &self.inner {
            auditor.lock().record(&make());
        }
    }

    /// Run `f` against the shared auditor, if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&Auditor) -> R) -> Option<R> {
        self.inner.as_ref().map(|auditor| f(&auditor.lock()))
    }

    /// Clone of all violations detected so far (empty when disabled).
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.with(|a| a.violations().to_vec()).unwrap_or_default()
    }

    /// Coverage/violation snapshot, if enabled.
    pub fn report(&self) -> Option<AuditReport> {
        self.with(Auditor::report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{Algorithm, CheckpointId, Lsn, SegmentId, TxnId};

    fn begun(ckpt: u64, algorithm: Algorithm, whites: u64) -> Vec<AuditEvent> {
        let ckpt = CheckpointId(ckpt);
        vec![
            AuditEvent::BackupMarkInProgress {
                copy: ckpt.pingpong_copy(),
                ckpt,
            },
            AuditEvent::CkptBegun {
                ckpt,
                copy: ckpt.pingpong_copy(),
                algorithm,
                quiesced: algorithm.is_cou() && algorithm != Algorithm::CouAc,
                whites,
            },
        ]
    }

    fn completed(ckpt: u64) -> Vec<AuditEvent> {
        let ckpt = CheckpointId(ckpt);
        vec![
            AuditEvent::BackupMarkComplete {
                copy: ckpt.pingpong_copy(),
                ckpt,
            },
            AuditEvent::CkptCompleted {
                ckpt,
                copy: ckpt.pingpong_copy(),
                old_copies_left: 0,
            },
        ]
    }

    fn drive(events: impl IntoIterator<Item = AuditEvent>) -> Auditor {
        let mut auditor = Auditor::new();
        for ev in events {
            auditor.record(&ev);
        }
        auditor
    }

    #[test]
    fn clean_fuzzy_checkpoint_has_no_violations() {
        let mut events = begun(1, Algorithm::FuzzyCopy, 0);
        events.push(AuditEvent::LogForced { durable: Lsn(100) });
        events.push(AuditEvent::SegmentFlushed {
            ckpt: CheckpointId(1),
            copy: 1,
            sid: SegmentId(0),
            image_max_lsn: Lsn(80),
            durable: Lsn(100),
            from_old_copy: false,
        });
        events.extend(completed(1));
        let auditor = drive(events);
        assert!(
            auditor.violations().is_empty(),
            "{:?}",
            auditor.violations()
        );
        assert!(auditor.report().is_clean());
    }

    #[test]
    fn wal_gate_fires_on_premature_flush() {
        let mut events = begun(1, Algorithm::FuzzyCopy, 0);
        events.push(AuditEvent::SegmentFlushed {
            ckpt: CheckpointId(1),
            copy: 1,
            sid: SegmentId(3),
            image_max_lsn: Lsn(200),
            durable: Lsn(50),
            from_old_copy: false,
        });
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::WalGate);
    }

    #[test]
    fn paint_fires_on_two_color_straddle() {
        let mut events = begun(1, Algorithm::TwoColorFlush, 2);
        events.push(AuditEvent::InstallObserved {
            txn: TxnId(7),
            sid: SegmentId(0),
            color: PaintColor::White,
        });
        events.push(AuditEvent::InstallObserved {
            txn: TxnId(7),
            sid: SegmentId(1),
            color: PaintColor::Black,
        });
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::Paint);
    }

    #[test]
    fn cou_fires_on_leaked_old_copy() {
        let mut events = begun(1, Algorithm::CouFlush, 0);
        events.push(AuditEvent::OldCopyCreated { sid: SegmentId(2) });
        events.extend(completed(1));
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::CouLifetime);
    }

    #[test]
    fn ping_pong_fires_on_stale_recovery_choice() {
        let mut events: Vec<AuditEvent> = Vec::new();
        events.extend(begun(1, Algorithm::FuzzyCopy, 0));
        events.extend(completed(1));
        events.extend(begun(2, Algorithm::FuzzyCopy, 0));
        events.extend(completed(2));
        events.push(AuditEvent::Crash);
        events.push(AuditEvent::RecoveryChosen {
            ckpt: CheckpointId(1),
            copy: 1,
            copies: [
                CopySummary::Complete(CheckpointId(2)),
                CopySummary::Complete(CheckpointId(1)),
            ],
        });
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::PingPong);
    }

    #[test]
    fn monotonic_fires_on_durable_regression() {
        let events = vec![
            AuditEvent::LogForced { durable: Lsn(100) },
            AuditEvent::LogForced { durable: Lsn(60) },
        ];
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::Monotonic);
    }

    #[test]
    fn shard_checker_clean_cross_shard_commit() {
        use mmdb_types::RecordId;
        let events = vec![
            AuditEvent::ShardTopology { shards: 4 },
            AuditEvent::ShardRouted {
                record: RecordId(9), // 9 % 4 == 1
                shard: 1,
            },
            AuditEvent::ShardLockAcquired { gid: 1, shard: 1 },
            AuditEvent::ShardLockAcquired { gid: 1, shard: 3 },
            AuditEvent::ShardLockReleased { gid: 1, shard: 3 },
            AuditEvent::ShardLockReleased { gid: 1, shard: 1 },
        ];
        let auditor = drive(events);
        assert!(
            auditor.violations().is_empty(),
            "{:?}",
            auditor.violations()
        );
    }

    #[test]
    fn shard_checker_fires_on_misrouted_record() {
        use mmdb_types::RecordId;
        let events = vec![
            AuditEvent::ShardTopology { shards: 4 },
            AuditEvent::ShardRouted {
                record: RecordId(9),
                shard: 2, // home is 1
            },
        ];
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::Shard);
    }

    #[test]
    fn shard_checker_fires_on_wrong_release_order() {
        let events = vec![
            AuditEvent::ShardTopology { shards: 4 },
            AuditEvent::ShardLockAcquired { gid: 5, shard: 0 },
            AuditEvent::ShardLockAcquired { gid: 5, shard: 2 },
            // forward (acquisition) order instead of reverse
            AuditEvent::ShardLockReleased { gid: 5, shard: 0 },
        ];
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::Shard);
    }

    #[test]
    fn shard_checker_fires_on_descending_acquisition() {
        let events = vec![
            AuditEvent::ShardTopology { shards: 4 },
            AuditEvent::ShardLockAcquired { gid: 5, shard: 2 },
            AuditEvent::ShardLockAcquired { gid: 5, shard: 0 },
        ];
        let auditor = drive(events);
        assert_eq!(auditor.violations().len(), 1);
        assert_eq!(auditor.violations()[0].checker, CheckerId::Shard);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let audit = Audit::disabled();
        audit.emit(|| unreachable!("emit closure must not run when disabled"));
        assert!(audit.violations().is_empty());
        assert!(audit.report().is_none());
    }

    #[test]
    fn shared_handle_accumulates_across_clones() {
        let audit = Audit::enabled();
        let other = audit.clone();
        audit.emit(|| AuditEvent::LogForced { durable: Lsn(1) });
        other.emit(|| AuditEvent::LogForced { durable: Lsn(2) });
        let report = audit.report().expect("enabled");
        assert_eq!(report.events, 2);
        assert!(report.is_clean());
    }
}
