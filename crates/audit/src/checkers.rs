//! The six online checker state machines.
//!
//! Each checker consumes the full event stream, keeps the minimal state its
//! invariant needs, and appends an [`AuditViolation`] the moment the stream
//! contradicts the protocol. DESIGN.md's "Invariant catalog" maps each one
//! back to the paper's algorithm descriptions.

use crate::event::{AuditEvent, CopySummary, PaintColor};
use mmdb_types::{CheckpointId, Lsn, SegmentId, TxnId};
use std::collections::BTreeMap;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which invariant checker raised a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckerId {
    /// No segment image reaches backup before its log records are durable.
    WalGate,
    /// Two-color paint discipline for transaction installs and the sweep.
    Paint,
    /// COU old copies live only inside an active checkpoint, swept at end.
    CouLifetime,
    /// Ping-pong copies alternate; recovery picks the newest complete copy.
    PingPong,
    /// LSNs and checkpoint ids are monotone.
    Monotonic,
    /// Records route to their hash shard; cross-shard locks release in
    /// reverse acquisition order.
    Shard,
}

impl CheckerId {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CheckerId::WalGate => "wal-gate",
            CheckerId::Paint => "paint",
            CheckerId::CouLifetime => "cou-lifetime",
            CheckerId::PingPong => "ping-pong",
            CheckerId::Monotonic => "monotonic",
            CheckerId::Shard => "shard-routing",
        }
    }
}

impl fmt::Display for CheckerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The checker that fired.
    pub checker: CheckerId,
    /// Sequence number of the offending event in the stream.
    pub seq: u64,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] event #{}: {}",
            self.checker, self.seq, self.message
        )
    }
}

fn violation(
    out: &mut Vec<AuditViolation>,
    checker: CheckerId,
    seq: u64,
    message: impl Into<String>,
) {
    out.push(AuditViolation {
        checker,
        seq,
        message: message.into(),
    });
}

/// Checker 1: the WAL/LSN gate (paper §2.1's "log before backup" rule).
///
/// Every segment image written to a backup copy must contain only updates
/// whose log records are already durable, regardless of which algorithm and
/// flush path produced the write.
#[derive(Debug, Default)]
pub struct WalGateChecker {
    /// Number of flushes and gate probes verified.
    pub checks: u64,
}

impl WalGateChecker {
    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::WalGateChecked {
                sid,
                gate,
                durable,
                open,
            } => {
                self.checks += 1;
                if open != (durable >= gate) {
                    violation(
                        out,
                        CheckerId::WalGate,
                        seq,
                        format!(
                            "gate probe for {sid:?} reported open={open} but durable {durable} \
                             vs gate {gate} says {}",
                            durable >= gate
                        ),
                    );
                }
            }
            AuditEvent::SegmentFlushed {
                sid,
                image_max_lsn,
                durable,
                from_old_copy,
                ..
            } => {
                self.checks += 1;
                if image_max_lsn > durable {
                    violation(
                        out,
                        CheckerId::WalGate,
                        seq,
                        format!(
                            "{sid:?} reached backup with image max LSN {image_max_lsn} beyond \
                             the durable horizon {durable} (from_old_copy={from_old_copy})"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Checker 2: two-color paint discipline (paper §4's black/white scheme).
///
/// While a two-color checkpoint is active, a committing transaction must not
/// install across both colors, the sweep may repaint each white segment black
/// exactly once, and the checkpoint may not complete while white segments
/// remain unvisited.
#[derive(Debug, Default)]
pub struct PaintChecker {
    /// Number of installs and paint flips verified.
    pub checks: u64,
    active: Option<CheckpointId>,
    whites_at_begin: u64,
    blacked: HashSet<SegmentId>,
    txn_colors: HashMap<TxnId, PaintColor>,
}

impl PaintChecker {
    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::CkptBegun {
                ckpt,
                algorithm,
                whites,
                ..
            } if algorithm.is_two_color() => {
                self.active = Some(ckpt);
                self.whites_at_begin = whites;
                self.blacked.clear();
                self.txn_colors.clear();
            }
            AuditEvent::PaintFlipped { sid, to } => {
                self.checks += 1;
                match (self.active, to) {
                    (None, _) => violation(
                        out,
                        CheckerId::Paint,
                        seq,
                        format!("{sid:?} repainted outside an active two-color checkpoint"),
                    ),
                    (Some(_), PaintColor::White) => violation(
                        out,
                        CheckerId::Paint,
                        seq,
                        format!("{sid:?} repainted white during an active checkpoint"),
                    ),
                    (Some(_), PaintColor::Black) => {
                        if !self.blacked.insert(sid) {
                            violation(
                                out,
                                CheckerId::Paint,
                                seq,
                                format!("{sid:?} painted black twice in one checkpoint"),
                            );
                        } else if self.blacked.len() as u64 > self.whites_at_begin {
                            violation(
                                out,
                                CheckerId::Paint,
                                seq,
                                format!(
                                    "sweep painted {} segments black but only {} were white \
                                     at begin",
                                    self.blacked.len(),
                                    self.whites_at_begin
                                ),
                            );
                        }
                    }
                }
            }
            AuditEvent::InstallObserved { txn, sid, color } => {
                if self.active.is_none() {
                    return;
                }
                self.checks += 1;
                if color == PaintColor::White && self.blacked.contains(&sid) {
                    violation(
                        out,
                        CheckerId::Paint,
                        seq,
                        format!(
                            "{txn:?} installed into {sid:?} as white after the sweep \
                                 painted it black"
                        ),
                    );
                }
                match self.txn_colors.get(&txn) {
                    None => {
                        self.txn_colors.insert(txn, color);
                    }
                    Some(&first) if first != color => violation(
                        out,
                        CheckerId::Paint,
                        seq,
                        format!(
                            "{txn:?} installed across both colors ({first:?} then {color:?}) \
                             without a checkpoint-induced abort"
                        ),
                    ),
                    Some(_) => {}
                }
            }
            AuditEvent::CkptCompleted { ckpt, .. } => {
                if self.active == Some(ckpt) {
                    let blacked = self.blacked.len() as u64;
                    if blacked < self.whites_at_begin {
                        violation(
                            out,
                            CheckerId::Paint,
                            seq,
                            format!(
                                "checkpoint {ckpt:?} completed with {} of {} white segments \
                                 never visited",
                                self.whites_at_begin - blacked,
                                self.whites_at_begin
                            ),
                        );
                    }
                }
                self.active = None;
                self.blacked.clear();
                self.txn_colors.clear();
            }
            AuditEvent::Crash => {
                self.active = None;
                self.blacked.clear();
                self.txn_colors.clear();
            }
            _ => {}
        }
    }
}

/// Checker 3: COU old-copy lifetime (paper §5's copy-on-update rule).
///
/// Old copies may be created only inside an active COU checkpoint, at most
/// once per segment, must be consumed by the sweep (never left behind at
/// completion), and a clean segment must never hold one.
#[derive(Debug, Default)]
pub struct CouChecker {
    /// Number of lifetime transitions verified.
    pub checks: u64,
    active: Option<CheckpointId>,
    old: HashSet<SegmentId>,
}

impl CouChecker {
    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::CkptBegun {
                ckpt, algorithm, ..
            } if algorithm.is_cou() => {
                self.active = Some(ckpt);
            }
            AuditEvent::OldCopyCreated { sid } => {
                self.checks += 1;
                if self.active.is_none() {
                    violation(
                        out,
                        CheckerId::CouLifetime,
                        seq,
                        format!("old copy of {sid:?} created outside an active COU checkpoint"),
                    );
                }
                if !self.old.insert(sid) {
                    violation(
                        out,
                        CheckerId::CouLifetime,
                        seq,
                        format!("old copy of {sid:?} saved twice without being consumed"),
                    );
                }
            }
            AuditEvent::OldCopySwept { sid } => {
                self.checks += 1;
                if !self.old.remove(&sid) {
                    violation(
                        out,
                        CheckerId::CouLifetime,
                        seq,
                        format!("sweep consumed an old copy of {sid:?} that was never created"),
                    );
                }
            }
            AuditEvent::OldCopyDropped { sid } => {
                // Crash-path cleanup; legal whenever the copy exists.
                self.old.remove(&sid);
            }
            AuditEvent::CleanSegmentSkipped { sid, has_old } => {
                self.checks += 1;
                if has_old || self.old.contains(&sid) {
                    violation(
                        out,
                        CheckerId::CouLifetime,
                        seq,
                        format!("clean segment {sid:?} holds an old copy"),
                    );
                }
            }
            AuditEvent::CkptCompleted {
                ckpt,
                old_copies_left,
                ..
            } => {
                if self.active == Some(ckpt) {
                    self.checks += 1;
                    let leaked = self.old.len() as u64;
                    if leaked > 0 || old_copies_left > 0 {
                        violation(
                            out,
                            CheckerId::CouLifetime,
                            seq,
                            format!(
                                "checkpoint {ckpt:?} completed with {} old copies leaked past \
                                 the sweep (storage reports {old_copies_left})",
                                leaked.max(old_copies_left)
                            ),
                        );
                    }
                }
                self.active = None;
                self.old.clear();
            }
            AuditEvent::Crash => {
                // Old copies are volatile: a crash legitimately discards them.
                self.active = None;
                self.old.clear();
            }
            _ => {}
        }
    }
}

/// Checker 4: ping-pong alternation and recovery choice (paper §2.2).
///
/// Checkpoint `k` writes copy `k mod 2`; consecutive checkpoints never write
/// the same copy; segment writes land only inside a durably-marked
/// in-progress window; and recovery restores the complete copy with the
/// highest checkpoint id.
#[derive(Debug, Default)]
pub struct PingPongChecker {
    /// Number of transitions and recovery choices verified.
    pub checks: u64,
    open_copy: Option<(usize, CheckpointId)>,
    current: Option<(CheckpointId, usize)>,
    last_completed: Option<(CheckpointId, usize)>,
}

impl PingPongChecker {
    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::BackupMarkInProgress { copy, ckpt } => {
                self.checks += 1;
                if let Some((c, k)) = self.open_copy {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "copy {copy} marked in-progress for {ckpt:?} while copy {c} is \
                             still open for {k:?}"
                        ),
                    );
                }
                self.open_copy = Some((copy, ckpt));
            }
            AuditEvent::CkptBegun { ckpt, copy, .. } => {
                self.checks += 1;
                if copy != ckpt.pingpong_copy() {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "checkpoint {ckpt:?} writes copy {copy}, violating ping-pong \
                             parity (expected copy {})",
                            ckpt.pingpong_copy()
                        ),
                    );
                }
                if let Some((_, last_copy)) = self.last_completed {
                    if copy == last_copy {
                        violation(
                            out,
                            CheckerId::PingPong,
                            seq,
                            format!(
                                "checkpoint {ckpt:?} overwrites copy {copy}, the only \
                                 complete checkpoint"
                            ),
                        );
                    }
                }
                if self.open_copy != Some((copy, ckpt)) {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "checkpoint {ckpt:?} began without durably marking copy {copy} \
                             in-progress first"
                        ),
                    );
                }
                self.current = Some((ckpt, copy));
            }
            AuditEvent::SegmentFlushed {
                ckpt, copy, sid, ..
            } => {
                self.checks += 1;
                if self.open_copy != Some((copy, ckpt)) {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "{sid:?} written to copy {copy} outside {ckpt:?}'s in-progress \
                             window"
                        ),
                    );
                }
            }
            AuditEvent::BackupMarkComplete { copy, ckpt } => {
                self.checks += 1;
                if self.open_copy != Some((copy, ckpt)) {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "copy {copy} marked complete for {ckpt:?} without a matching \
                             in-progress mark"
                        ),
                    );
                }
                self.open_copy = None;
                self.last_completed = Some((ckpt, copy));
            }
            AuditEvent::CkptCompleted { ckpt, copy, .. } => {
                self.checks += 1;
                if self.last_completed != Some((ckpt, copy)) {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "checkpoint {ckpt:?} reported complete before copy {copy} was \
                             durably marked complete"
                        ),
                    );
                }
                self.current = None;
            }
            AuditEvent::Crash => {
                // A torn checkpoint dies with the crash; its durable
                // in-progress mark is ignored by recovery.
                self.current = None;
                self.open_copy = None;
            }
            AuditEvent::RecoveryChosen { ckpt, copy, copies } => {
                self.checks += 1;
                if copies.get(copy).copied() != Some(CopySummary::Complete(ckpt)) {
                    violation(
                        out,
                        CheckerId::PingPong,
                        seq,
                        format!(
                            "recovery restored {ckpt:?} from copy {copy}, but that copy's \
                             durable status is {:?}",
                            copies.get(copy)
                        ),
                    );
                }
                for (i, status) in copies.iter().enumerate() {
                    if let CopySummary::Complete(other) = *status {
                        if other > ckpt {
                            violation(
                                out,
                                CheckerId::PingPong,
                                seq,
                                format!(
                                    "recovery restored {ckpt:?} but copy {i} holds the more \
                                     recent complete checkpoint {other:?}"
                                ),
                            );
                        }
                    }
                }
                self.last_completed = Some((ckpt, copy));
            }
            _ => {}
        }
    }
}

/// Checker 5: monotonicity of the durable LSN horizon and checkpoint ids.
///
/// The durable horizon never regresses (a crash only discards the volatile
/// tail), and checkpoint ids strictly increase except across a recovery,
/// which renumbers from the restored checkpoint.
#[derive(Debug, Default)]
pub struct MonotonicChecker {
    /// Number of orderings verified.
    pub checks: u64,
    max_durable: Lsn,
    last_begun: Option<CheckpointId>,
    last_completed: Option<CheckpointId>,
}

impl MonotonicChecker {
    fn observe_durable(&mut self, seq: u64, durable: Lsn, out: &mut Vec<AuditViolation>) {
        self.checks += 1;
        if durable < self.max_durable {
            violation(
                out,
                CheckerId::Monotonic,
                seq,
                format!(
                    "durable LSN regressed from {} to {durable}",
                    self.max_durable
                ),
            );
        } else {
            self.max_durable = durable;
        }
    }

    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::LogForced { durable }
            | AuditEvent::WalGateChecked { durable, .. }
            | AuditEvent::SegmentFlushed { durable, .. } => {
                self.observe_durable(seq, durable, out);
            }
            AuditEvent::CkptBegun { ckpt, .. } => {
                self.checks += 1;
                if let Some(last) = self.last_begun {
                    if ckpt <= last {
                        violation(
                            out,
                            CheckerId::Monotonic,
                            seq,
                            format!("checkpoint id {ckpt:?} begun after {last:?}"),
                        );
                    }
                }
                self.last_begun = Some(ckpt);
            }
            AuditEvent::CkptCompleted { ckpt, .. } => {
                self.checks += 1;
                if let Some(last) = self.last_completed {
                    if ckpt <= last {
                        violation(
                            out,
                            CheckerId::Monotonic,
                            seq,
                            format!("checkpoint id {ckpt:?} completed after {last:?}"),
                        );
                    }
                }
                self.last_completed = Some(ckpt);
            }
            AuditEvent::RecoveryChosen { ckpt, .. } => {
                // A crash may have torn a later checkpoint whose id gets
                // reused; ids restart strictly above the restored one.
                self.last_begun = Some(ckpt);
                self.last_completed = Some(ckpt);
            }
            _ => {}
        }
    }
}

/// Checker 6: shard routing and cross-shard lock discipline.
///
/// Once a [`AuditEvent::ShardTopology`] declares the partition arity `N`,
/// every routed record must satisfy `record % N == shard` (the router's
/// hash partition is the *only* legal assignment — a record logged or
/// checkpointed by the wrong shard would be replayed into the wrong
/// partition after a crash), and every cross-shard transaction must
/// release its shard locks in exactly the reverse of its acquisition
/// order, having acquired them in ascending shard order (the deadlock- and
/// torn-commit-freedom argument of the sharded engine).
#[derive(Debug, Default)]
pub struct ShardChecker {
    /// Number of routings and lock transitions verified.
    pub checks: u64,
    shards: Option<usize>,
    /// Per-gid stack of currently held shard locks, in acquisition order.
    held: BTreeMap<u64, Vec<usize>>,
}

impl ShardChecker {
    fn shard_in_range(
        &self,
        seq: u64,
        shard: usize,
        what: &str,
        out: &mut Vec<AuditViolation>,
    ) -> bool {
        match self.shards {
            None => {
                violation(
                    out,
                    CheckerId::Shard,
                    seq,
                    format!("{what} before any ShardTopology was declared"),
                );
                false
            }
            Some(n) if shard >= n => {
                violation(
                    out,
                    CheckerId::Shard,
                    seq,
                    format!("{what} names shard {shard}, but the topology has only {n}"),
                );
                false
            }
            Some(_) => true,
        }
    }

    pub(crate) fn on_event(&mut self, seq: u64, ev: &AuditEvent, out: &mut Vec<AuditViolation>) {
        match *ev {
            AuditEvent::ShardTopology { shards } => {
                self.checks += 1;
                if shards == 0 {
                    violation(out, CheckerId::Shard, seq, "topology declares zero shards");
                } else {
                    self.shards = Some(shards);
                }
                self.held.clear();
            }
            AuditEvent::ShardRouted { record, shard } => {
                self.checks += 1;
                if self.shard_in_range(seq, shard, "a routed record", out) {
                    let n = self.shards.unwrap_or(1);
                    let home = (record.raw() % n as u64) as usize;
                    if home != shard {
                        violation(
                            out,
                            CheckerId::Shard,
                            seq,
                            format!(
                                "{record:?} processed by shard {shard}, but its hash \
                                 partition is shard {home} (of {n})"
                            ),
                        );
                    }
                }
            }
            AuditEvent::ShardLockAcquired { gid, shard } => {
                self.checks += 1;
                if self.shard_in_range(seq, shard, "a lock acquisition", out) {
                    let stack = self.held.entry(gid).or_default();
                    if let Some(&top) = stack.last() {
                        if shard <= top {
                            violation(
                                out,
                                CheckerId::Shard,
                                seq,
                                format!(
                                    "gid {gid} acquired shard {shard} after shard {top}; \
                                     acquisition order must be strictly ascending"
                                ),
                            );
                        }
                    }
                    stack.push(shard);
                }
            }
            AuditEvent::ShardLockReleased { gid, shard } => {
                self.checks += 1;
                if self.shard_in_range(seq, shard, "a lock release", out) {
                    match self.held.get_mut(&gid).and_then(Vec::pop) {
                        Some(top) if top == shard => {}
                        Some(top) => violation(
                            out,
                            CheckerId::Shard,
                            seq,
                            format!(
                                "gid {gid} released shard {shard} while shard {top} was the \
                                 most recent acquisition; release order must be the reverse \
                                 of acquisition"
                            ),
                        ),
                        None => violation(
                            out,
                            CheckerId::Shard,
                            seq,
                            format!("gid {gid} released shard {shard} without holding it"),
                        ),
                    }
                    if self.held.get(&gid).is_some_and(|stack| stack.is_empty()) {
                        self.held.remove(&gid);
                    }
                }
            }
            AuditEvent::Crash => {
                // Shard locks are volatile; a crash releases everything.
                self.held.clear();
            }
            _ => {}
        }
    }
}
