//! The typed protocol-event stream consumed by the invariant checkers.

use mmdb_types::{Algorithm, CheckpointId, Lsn, RecordId, SegmentId, TxnId};

/// Paint color of a segment as seen by the audit stream.
///
/// Mirrors `mmdb_storage::Color`; duplicated so the audit crate sits below
/// storage in the dependency graph and can also check synthetic streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaintColor {
    /// Not yet visited by the active two-color checkpoint.
    White,
    /// Already checkpointed (or no checkpoint active).
    Black,
}

/// Durable state of one ping-pong backup copy, as read from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopySummary {
    /// Never seeded.
    Empty,
    /// A checkpoint began writing this copy and has not completed.
    InProgress(CheckpointId),
    /// Holds a complete checkpoint.
    Complete(CheckpointId),
}

/// One protocol event, emitted by the engine, checkpointer, log manager or
/// backup store when auditing is enabled.
///
/// Events carry enough context for the checkers to validate each invariant
/// online, without access to the components that emitted them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// The log manager advanced its durable horizon.
    LogForced {
        /// The new durable LSN.
        durable: Lsn,
    },
    /// A flush consulted the WAL gate for a captured segment image.
    WalGateChecked {
        /// Segment whose image is waiting.
        sid: SegmentId,
        /// Highest LSN contained in the captured image.
        gate: Lsn,
        /// The log's durable LSN at the time of the check.
        durable: Lsn,
        /// Whether the gate was open (`durable >= gate`).
        open: bool,
    },
    /// A segment image was written to a backup copy.
    SegmentFlushed {
        /// Checkpoint performing the write.
        ckpt: CheckpointId,
        /// Backup copy written (0 or 1).
        copy: usize,
        /// Segment written.
        sid: SegmentId,
        /// Highest LSN contained in the written image.
        image_max_lsn: Lsn,
        /// The log's durable LSN at the time of the write.
        durable: Lsn,
        /// Whether the image came from a COU old copy.
        from_old_copy: bool,
    },
    /// A segment changed paint color.
    PaintFlipped {
        /// Segment repainted.
        sid: SegmentId,
        /// New color.
        to: PaintColor,
    },
    /// A committing transaction installed into a segment while a two-color
    /// checkpoint was active.
    InstallObserved {
        /// The committing transaction.
        txn: TxnId,
        /// Segment installed into.
        sid: SegmentId,
        /// The segment's color at install time.
        color: PaintColor,
    },
    /// The engine started draining transactions for a quiescent begin.
    QuiesceBegin,
    /// The engine finished draining; the database is quiescent.
    QuiesceEnd,
    /// A COU old copy was saved for a segment about to be overwritten.
    OldCopyCreated {
        /// Segment whose pre-image was saved.
        sid: SegmentId,
    },
    /// The checkpointer consumed (flushed and released) an old copy.
    OldCopySwept {
        /// Segment whose old copy was consumed.
        sid: SegmentId,
    },
    /// Old copies were discarded without a flush (crash cleanup).
    OldCopyDropped {
        /// Segment whose old copy was discarded.
        sid: SegmentId,
    },
    /// The COU sweep skipped a segment because it was clean.
    CleanSegmentSkipped {
        /// The clean segment.
        sid: SegmentId,
        /// Whether an old copy existed for it (it must not).
        has_old: bool,
    },
    /// A checkpoint began.
    CkptBegun {
        /// The new checkpoint's id.
        ckpt: CheckpointId,
        /// Backup copy it writes (0 or 1).
        copy: usize,
        /// Algorithm driving the checkpoint.
        algorithm: Algorithm,
        /// Whether the engine was quiescent at begin.
        quiesced: bool,
        /// Segments painted white at begin (0 for non-painting algorithms).
        whites: u64,
    },
    /// A checkpoint completed.
    CkptCompleted {
        /// The completed checkpoint's id.
        ckpt: CheckpointId,
        /// Backup copy it wrote.
        copy: usize,
        /// COU old copies still outstanding (it must be 0).
        old_copies_left: u64,
    },
    /// The backup store durably marked a copy as in-progress.
    BackupMarkInProgress {
        /// The marked copy.
        copy: usize,
        /// Checkpoint being written into it.
        ckpt: CheckpointId,
    },
    /// The backup store durably marked a copy as complete.
    BackupMarkComplete {
        /// The marked copy.
        copy: usize,
        /// Checkpoint now fully contained in it.
        ckpt: CheckpointId,
    },
    /// The engine crashed: volatile state (including any log tail not yet
    /// durable and all COU old copies) is gone.
    Crash,
    /// Recovery selected a backup copy to restore from.
    RecoveryChosen {
        /// The restored checkpoint id.
        ckpt: CheckpointId,
        /// The copy it was read from.
        copy: usize,
        /// Durable status of both copies at selection time.
        copies: [CopySummary; 2],
    },
    /// A sharded engine came up, declaring its partition arity. All later
    /// `Shard*` events are validated against this topology.
    ShardTopology {
        /// Number of hash partitions (`shard = record % shards`).
        shards: usize,
    },
    /// The router sent a record's operation to a shard. `record` is the
    /// *global* record id (engines renumber internally; the routing
    /// invariant is only checkable in global id space).
    ShardRouted {
        /// The global record id.
        record: RecordId,
        /// The shard that processed it.
        shard: usize,
    },
    /// A cross-shard transaction acquired a shard's lock.
    ShardLockAcquired {
        /// The global transaction id.
        gid: u64,
        /// The locked shard.
        shard: usize,
    },
    /// A cross-shard transaction released a shard's lock.
    ShardLockReleased {
        /// The global transaction id.
        gid: u64,
        /// The released shard.
        shard: usize,
    },
}

impl AuditEvent {
    /// Short stable name for coverage counting.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditEvent::LogForced { .. } => "LogForced",
            AuditEvent::WalGateChecked { .. } => "WalGateChecked",
            AuditEvent::SegmentFlushed { .. } => "SegmentFlushed",
            AuditEvent::PaintFlipped { .. } => "PaintFlipped",
            AuditEvent::InstallObserved { .. } => "InstallObserved",
            AuditEvent::QuiesceBegin => "QuiesceBegin",
            AuditEvent::QuiesceEnd => "QuiesceEnd",
            AuditEvent::OldCopyCreated { .. } => "OldCopyCreated",
            AuditEvent::OldCopySwept { .. } => "OldCopySwept",
            AuditEvent::OldCopyDropped { .. } => "OldCopyDropped",
            AuditEvent::CleanSegmentSkipped { .. } => "CleanSegmentSkipped",
            AuditEvent::CkptBegun { .. } => "CkptBegun",
            AuditEvent::CkptCompleted { .. } => "CkptCompleted",
            AuditEvent::BackupMarkInProgress { .. } => "BackupMarkInProgress",
            AuditEvent::BackupMarkComplete { .. } => "BackupMarkComplete",
            AuditEvent::Crash => "Crash",
            AuditEvent::RecoveryChosen { .. } => "RecoveryChosen",
            AuditEvent::ShardTopology { .. } => "ShardTopology",
            AuditEvent::ShardRouted { .. } => "ShardRouted",
            AuditEvent::ShardLockAcquired { .. } => "ShardLockAcquired",
            AuditEvent::ShardLockReleased { .. } => "ShardLockReleased",
        }
    }
}
