//! Telemetry instrumentation for backup stores.
//!
//! [`ObservedBackup`] wraps any [`BackupStore`] and measures the device
//! operations themselves — segment write/read latency and volume — at the
//! store boundary, so the numbers reflect what actually hit the (real or
//! simulated) device, below whatever buffering the checkpointer does.

use crate::backup::{BackupStore, CopyStatus};
use mmdb_obs::Obs;
use mmdb_types::{CheckpointId, DbParams, Result, SegmentId, Word};

/// A [`BackupStore`] wrapper that reports device-level telemetry.
pub struct ObservedBackup {
    inner: Box<dyn BackupStore>,
    obs: Obs,
}

impl ObservedBackup {
    /// Wrap `inner`, routing telemetry to `obs`.
    pub fn new(inner: Box<dyn BackupStore>, obs: Obs) -> ObservedBackup {
        ObservedBackup { inner, obs }
    }

    /// Unwrap, returning the underlying store.
    pub fn into_inner(self) -> Box<dyn BackupStore> {
        self.inner
    }
}

impl BackupStore for ObservedBackup {
    fn shape(&self) -> DbParams {
        self.inner.shape()
    }

    fn begin_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        self.inner.begin_checkpoint(copy, ckpt)
    }

    fn write_segment(&mut self, copy: usize, sid: SegmentId, data: &[Word]) -> Result<()> {
        let t = self.obs.timer();
        self.inner.write_segment(copy, sid, data)?;
        self.obs.observe_timer("backup.write_ns", t);
        self.obs.counter("backup.write_words", data.len() as u64);
        Ok(())
    }

    fn complete_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        self.inner.complete_checkpoint(copy, ckpt)
    }

    fn copy_status(&mut self, copy: usize) -> Result<CopyStatus> {
        self.inner.copy_status(copy)
    }

    fn read_segment(&mut self, copy: usize, sid: SegmentId, buf: &mut [Word]) -> Result<()> {
        let t = self.obs.timer();
        self.inner.read_segment(copy, sid, buf)?;
        self.obs.observe_timer("backup.read_ns", t);
        self.obs.counter("backup.read_words", buf.len() as u64);
        Ok(())
    }

    fn recovery_copy(&mut self) -> Result<(usize, CheckpointId)> {
        self.inner.recovery_copy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::MemBackup;

    #[test]
    fn device_ops_land_in_the_registry() {
        let db = DbParams {
            s_db: 4096,
            s_rec: 32,
            s_seg: 1024,
        };
        let obs = Obs::enabled();
        let mut store = ObservedBackup::new(Box::new(MemBackup::new(db)), obs.clone());
        store.begin_checkpoint(0, CheckpointId(1)).unwrap();
        let data = vec![3u32; db.s_seg as usize];
        for sid in 0..db.n_segments() {
            store
                .write_segment(0, SegmentId(sid as u32), &data)
                .unwrap();
        }
        store.complete_checkpoint(0, CheckpointId(1)).unwrap();
        let mut buf = vec![0u32; db.s_seg as usize];
        store.read_segment(0, SegmentId(0), &mut buf).unwrap();
        let n = db.n_segments();
        obs.with_registry(|r| {
            assert_eq!(r.counter_value("backup.write_words"), n * db.s_seg);
            assert_eq!(r.counter_value("backup.read_words"), db.s_seg);
            assert_eq!(r.hist("backup.write_ns").map(|h| h.count()), Some(n));
            assert_eq!(r.hist("backup.read_ns").map(|h| h.count()), Some(1));
        })
        .expect("enabled");
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let db = DbParams {
            s_db: 4096,
            s_rec: 32,
            s_seg: 1024,
        };
        let obs = Obs::disabled();
        let mut store = ObservedBackup::new(Box::new(MemBackup::new(db)), obs.clone());
        store.begin_checkpoint(0, CheckpointId(1)).unwrap();
        store
            .write_segment(0, SegmentId(0), &vec![1u32; db.s_seg as usize])
            .unwrap();
        assert!(obs.with_registry(|_| ()).is_none());
    }
}
