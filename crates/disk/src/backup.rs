//! The backup database store.
//!
//! Two complete backup copies are kept and updated alternately — the
//! *ping-pong* scheme of paper §2.6 — so that a crash during checkpoint
//! `k` (which writes copy `k mod 2`) always leaves the other copy
//! complete.
//!
//! The store enforces the ping-pong discipline explicitly:
//!
//! 1. [`BackupStore::begin_checkpoint`] marks the target copy
//!    *in-progress* (durably, before any segment is overwritten);
//! 2. segment images are written with per-segment checksums;
//! 3. [`BackupStore::complete_checkpoint`] durably marks the copy
//!    *complete* with the checkpoint id.
//!
//! Recovery asks both copies for their status and restores from the
//! complete copy with the highest checkpoint id. A torn checkpoint leaves
//! its target copy in-progress and therefore ineligible.

use mmdb_types::{hash::Fnv1a, CheckpointId, DbParams, MmdbError, Result, SegmentId, Word};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Durable status of one backup copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyStatus {
    /// Never completed a checkpoint.
    Empty,
    /// A checkpoint is (or was, at crash time) overwriting this copy.
    InProgress(CheckpointId),
    /// Holds the complete image of the given checkpoint.
    Complete(CheckpointId),
}

impl CopyStatus {
    /// The checkpoint id if the copy is complete.
    pub fn complete_ckpt(self) -> Option<CheckpointId> {
        match self {
            CopyStatus::Complete(c) => Some(c),
            _ => None,
        }
    }
}

/// A store holding the two ping-pong backup copies.
///
/// Implementations do not charge I/O costs: the *checkpointer* initiates
/// the I/Os and charges `C_io` per operation, matching the paper's
/// accounting (the store is the passive device).
pub trait BackupStore: Send + Sync {
    /// The database shape this store was created for.
    fn shape(&self) -> DbParams;

    /// Durably marks `copy` as in-progress for `ckpt`. Must be called
    /// before any segment of this checkpoint is written.
    fn begin_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()>;

    /// Writes one segment image into `copy`.
    fn write_segment(&mut self, copy: usize, sid: SegmentId, data: &[Word]) -> Result<()>;

    /// Durably marks `copy` complete with `ckpt`'s image.
    fn complete_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()>;

    /// The durable status of `copy`.
    fn copy_status(&mut self, copy: usize) -> Result<CopyStatus>;

    /// Reads one segment image from `copy`, verifying its checksum.
    fn read_segment(&mut self, copy: usize, sid: SegmentId, buf: &mut [Word]) -> Result<()>;

    /// The copy recovery should restore from: the complete copy with the
    /// highest checkpoint id.
    fn recovery_copy(&mut self) -> Result<(usize, CheckpointId)> {
        let mut best: Option<(usize, CheckpointId)> = None;
        for copy in 0..2 {
            if let CopyStatus::Complete(c) = self.copy_status(copy)? {
                if best.map(|(_, b)| c > b).unwrap_or(true) {
                    best = Some((copy, c));
                }
            }
        }
        best.ok_or(MmdbError::NoCompleteBackup)
    }
}

fn check_copy(copy: usize) -> Result<()> {
    if copy > 1 {
        return Err(MmdbError::Invalid(format!(
            "ping-pong copy index must be 0 or 1, got {copy}"
        )));
    }
    Ok(())
}

fn check_shape(db: &DbParams, sid: SegmentId, data_len: usize) -> Result<()> {
    if sid.raw() as u64 >= db.n_segments() {
        return Err(MmdbError::SegmentOutOfRange {
            segment: sid,
            n_segments: db.n_segments(),
        });
    }
    if data_len as u64 != db.s_seg {
        return Err(MmdbError::Invalid(format!(
            "segment image has {} words, expected {}",
            data_len, db.s_seg
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// In-memory implementation (tests, simulator)
// ---------------------------------------------------------------------------

/// An in-memory backup store with checksum emulation and torn-write
/// injection for crash tests.
#[derive(Debug)]
pub struct MemBackup {
    db: DbParams,
    copies: [MemCopy; 2],
}

#[derive(Debug)]
struct MemCopy {
    status: CopyStatus,
    segments: Vec<Option<SegmentImage>>,
}

#[derive(Debug, Clone)]
struct SegmentImage {
    data: Box<[Word]>,
    torn: bool,
}

impl MemBackup {
    /// An empty store for a database of the given shape.
    pub fn new(db: DbParams) -> MemBackup {
        let n = db.n_segments() as usize;
        MemBackup {
            db,
            copies: [
                MemCopy {
                    status: CopyStatus::Empty,
                    segments: vec![None; n],
                },
                MemCopy {
                    status: CopyStatus::Empty,
                    segments: vec![None; n],
                },
            ],
        }
    }

    /// Fault injection: marks a stored segment image as torn, as if the
    /// crash interrupted its write. Subsequent reads fail the checksum.
    pub fn tear_segment(&mut self, copy: usize, sid: SegmentId) -> Result<()> {
        check_copy(copy)?;
        match &mut self.copies[copy].segments[sid.index()] {
            Some(img) => {
                img.torn = true;
                Ok(())
            }
            None => Err(MmdbError::Invalid(format!("{sid} never written"))),
        }
    }
}

impl BackupStore for MemBackup {
    fn shape(&self) -> DbParams {
        self.db
    }

    fn begin_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        check_copy(copy)?;
        self.copies[copy].status = CopyStatus::InProgress(ckpt);
        Ok(())
    }

    fn write_segment(&mut self, copy: usize, sid: SegmentId, data: &[Word]) -> Result<()> {
        check_copy(copy)?;
        check_shape(&self.db, sid, data.len())?;
        if !matches!(self.copies[copy].status, CopyStatus::InProgress(_)) {
            return Err(MmdbError::Invalid(
                "write_segment outside begin/complete window".into(),
            ));
        }
        self.copies[copy].segments[sid.index()] = Some(SegmentImage {
            data: data.into(),
            torn: false,
        });
        Ok(())
    }

    fn complete_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        check_copy(copy)?;
        match self.copies[copy].status {
            CopyStatus::InProgress(c) if c == ckpt => {
                self.copies[copy].status = CopyStatus::Complete(ckpt);
                Ok(())
            }
            s => Err(MmdbError::Invalid(format!(
                "complete_checkpoint({ckpt}) but copy {copy} is {s:?}"
            ))),
        }
    }

    fn copy_status(&mut self, copy: usize) -> Result<CopyStatus> {
        check_copy(copy)?;
        Ok(self.copies[copy].status)
    }

    fn read_segment(&mut self, copy: usize, sid: SegmentId, buf: &mut [Word]) -> Result<()> {
        check_copy(copy)?;
        check_shape(&self.db, sid, buf.len())?;
        match &self.copies[copy].segments[sid.index()] {
            Some(img) if !img.torn => {
                buf.copy_from_slice(&img.data);
                Ok(())
            }
            Some(_) => Err(MmdbError::Corrupt(format!(
                "segment {sid} in copy {copy}: checksum mismatch (torn write)"
            ))),
            None => Err(MmdbError::Corrupt(format!(
                "segment {sid} in copy {copy}: never written"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// File-backed implementation (the real engine)
// ---------------------------------------------------------------------------

const MAGIC: u64 = 0x4d4d_4442_424b_5550; // "MMDBBKUP"
const HEADER_LEN: u64 = 4096;
const FORMAT_VERSION: u32 = 1;
/// Per-segment trailer: fnv checksum (8) + reserved (8).
const SEG_TRAILER: u64 = 16;

const STATE_EMPTY: u32 = 0;
const STATE_IN_PROGRESS: u32 = 1;
const STATE_COMPLETE: u32 = 2;

/// Per-slot codec ids, stored in the low byte of the reserved trailer
/// word. Raw is 0 so every slot written before compression existed
/// decodes unchanged.
const SLOT_RAW: u64 = 0;
const SLOT_LZ: u64 = 1;

/// A file-backed backup store: one file per ping-pong copy, each laid out
/// as a 4 KiB header followed by fixed-size checksummed segment slots.
#[derive(Debug)]
pub struct FileBackup {
    db: DbParams,
    files: [File; 2],
    paths: [PathBuf; 2],
    sync: bool,
    compress: bool,
}

impl FileBackup {
    /// Creates (or opens) the pair of backup files `<base>.0` and
    /// `<base>.1`. Existing files with valid headers are kept (so a
    /// recovering engine sees its pre-crash backups); anything else is
    /// initialized empty.
    pub fn open(base: &Path, db: DbParams, sync: bool) -> Result<FileBackup> {
        db.validate().map_err(MmdbError::Invalid)?;
        let paths = [base.with_extension("0"), base.with_extension("1")];
        let open_one = |path: &Path| -> Result<File> {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            Ok(file)
        };
        let files = [open_one(&paths[0])?, open_one(&paths[1])?];
        let mut store = FileBackup {
            db,
            files,
            paths,
            sync,
            compress: false,
        };
        for copy in 0..2 {
            if store.read_header(copy).is_err() {
                store.write_header(copy, STATE_EMPTY, CheckpointId(0))?;
            }
        }
        Ok(store)
    }

    /// The backing file paths.
    pub fn paths(&self) -> [&Path; 2] {
        [&self.paths[0], &self.paths[1]]
    }

    /// Compress segment slots written from now on. The slot grid is
    /// unchanged (random access stays O(1)); a compressed slot writes
    /// only its block plus the trailer, leaving the rest of the slot as
    /// a file hole. Reads are per-slot self-describing, so compressed
    /// and raw slots mix freely within a copy and the flag can change
    /// between checkpoints.
    pub fn set_compress(&mut self, on: bool) {
        self.compress = on;
    }

    fn slot_len(&self) -> u64 {
        self.db.s_seg * mmdb_types::WORD_BYTES as u64 + SEG_TRAILER
    }

    fn seg_offset(&self, sid: SegmentId) -> u64 {
        HEADER_LEN + sid.raw() as u64 * self.slot_len()
    }

    fn write_header(&mut self, copy: usize, state: u32, ckpt: CheckpointId) -> Result<()> {
        let mut buf = Vec::with_capacity(HEADER_LEN as usize);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&state.to_le_bytes());
        buf.extend_from_slice(&ckpt.raw().to_le_bytes());
        buf.extend_from_slice(&self.db.s_db.to_le_bytes());
        buf.extend_from_slice(&self.db.s_rec.to_le_bytes());
        buf.extend_from_slice(&self.db.s_seg.to_le_bytes());
        let mut h = Fnv1a::new();
        h.update(&buf);
        buf.extend_from_slice(&h.finish().to_le_bytes());
        buf.resize(HEADER_LEN as usize, 0);
        let f = &mut self.files[copy];
        f.seek(SeekFrom::Start(0))?;
        f.write_all(&buf)?;
        if self.sync {
            f.sync_data()?;
        }
        Ok(())
    }

    fn read_header(&mut self, copy: usize) -> Result<(u32, CheckpointId)> {
        let f = &mut self.files[copy];
        let mut buf = [0u8; 56];
        f.seek(SeekFrom::Start(0))?;
        f.read_exact(&mut buf)
            .map_err(|_| MmdbError::Corrupt("backup header too short".into()))?;
        let magic = u64::from_le_bytes(buf[0..8].try_into().expect("fixed-size slice"));
        if magic != MAGIC {
            return Err(MmdbError::Corrupt("bad backup magic".into()));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("fixed-size slice"));
        if version != FORMAT_VERSION {
            return Err(MmdbError::Corrupt(format!(
                "unsupported backup format version {version}"
            )));
        }
        let state = u32::from_le_bytes(buf[12..16].try_into().expect("fixed-size slice"));
        let ckpt = u64::from_le_bytes(buf[16..24].try_into().expect("fixed-size slice"));
        let s_db = u64::from_le_bytes(buf[24..32].try_into().expect("fixed-size slice"));
        let s_rec = u64::from_le_bytes(buf[32..40].try_into().expect("fixed-size slice"));
        let s_seg = u64::from_le_bytes(buf[40..48].try_into().expect("fixed-size slice"));
        let stored = u64::from_le_bytes(buf[48..56].try_into().expect("fixed-size slice"));
        let mut h = Fnv1a::new();
        h.update(&buf[0..48]);
        if h.finish() != stored {
            return Err(MmdbError::Corrupt("backup header checksum mismatch".into()));
        }
        if (s_db, s_rec, s_seg) != (self.db.s_db, self.db.s_rec, self.db.s_seg) {
            return Err(MmdbError::Corrupt(format!(
                "backup shape mismatch: file has s_db={s_db} s_rec={s_rec} s_seg={s_seg}"
            )));
        }
        Ok((state, CheckpointId(ckpt)))
    }
}

impl BackupStore for FileBackup {
    fn shape(&self) -> DbParams {
        self.db
    }

    fn begin_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        check_copy(copy)?;
        self.write_header(copy, STATE_IN_PROGRESS, ckpt)
    }

    fn write_segment(&mut self, copy: usize, sid: SegmentId, data: &[Word]) -> Result<()> {
        check_copy(copy)?;
        check_shape(&self.db, sid, data.len())?;
        let offset = self.seg_offset(sid);
        let data_bytes = (self.db.s_seg as usize) * mmdb_types::WORD_BYTES;
        let mut raw = Vec::with_capacity(data_bytes);
        for w in data {
            raw.extend_from_slice(&w.to_le_bytes());
        }
        let mut h = Fnv1a::new();
        h.update(&raw);
        let sum = h.finish();
        // The trailer checksum always covers the *raw* image, whatever
        // the slot codec — a decoder bug can never masquerade as a clean
        // read.
        let mut buf;
        let codec;
        if self.compress {
            let block = mmdb_types::lz::encode_block(&raw);
            if block.len() <= data_bytes {
                // write only the block; the rest of the slot stays a hole
                codec = SLOT_LZ;
                buf = block;
            } else {
                codec = SLOT_RAW;
                buf = raw;
            }
        } else {
            codec = SLOT_RAW;
            buf = raw;
        }
        let payload_len = buf.len();
        let f = &mut self.files[copy];
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&buf)?;
        if payload_len < data_bytes {
            f.seek(SeekFrom::Start(offset + data_bytes as u64))?;
        }
        buf = Vec::with_capacity(SEG_TRAILER as usize);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf.extend_from_slice(&codec.to_le_bytes());
        f.write_all(&buf)?;
        if self.sync {
            f.sync_data()?;
        }
        Ok(())
    }

    fn complete_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        check_copy(copy)?;
        match self.read_header(copy)? {
            (STATE_IN_PROGRESS, c) if c == ckpt => self.write_header(copy, STATE_COMPLETE, ckpt),
            (state, c) => Err(MmdbError::Invalid(format!(
                "complete_checkpoint({ckpt}) but copy {copy} header is state={state} ckpt={c}"
            ))),
        }
    }

    fn copy_status(&mut self, copy: usize) -> Result<CopyStatus> {
        check_copy(copy)?;
        match self.read_header(copy) {
            Ok((STATE_COMPLETE, c)) => Ok(CopyStatus::Complete(c)),
            Ok((STATE_IN_PROGRESS, c)) => Ok(CopyStatus::InProgress(c)),
            Ok((STATE_EMPTY, _)) => Ok(CopyStatus::Empty),
            Ok((s, _)) => Err(MmdbError::Corrupt(format!("unknown backup state {s}"))),
            // An unreadable header is treated as an unusable copy rather
            // than a fatal error: the other copy may still be complete.
            Err(_) => Ok(CopyStatus::Empty),
        }
    }

    fn read_segment(&mut self, copy: usize, sid: SegmentId, buf: &mut [Word]) -> Result<()> {
        check_copy(copy)?;
        check_shape(&self.db, sid, buf.len())?;
        let offset = self.seg_offset(sid);
        let mut raw = vec![0u8; self.slot_len() as usize];
        let f = &mut self.files[copy];
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut raw)
            .map_err(|_| MmdbError::Corrupt(format!("{sid}: short read from backup")))?;
        let data_bytes = (self.db.s_seg as usize) * mmdb_types::WORD_BYTES;
        let stored = u64::from_le_bytes(
            raw[data_bytes..data_bytes + 8]
                .try_into()
                .expect("fixed-size slice"),
        );
        let codec = u64::from_le_bytes(
            raw[data_bytes + 8..data_bytes + 16]
                .try_into()
                .expect("fixed-size slice"),
        );
        let image: Vec<u8>;
        let bytes: &[u8] = match codec {
            SLOT_RAW => &raw[..data_bytes],
            SLOT_LZ => {
                image = mmdb_types::lz::decode_block(&raw[..data_bytes]).map_err(|e| {
                    MmdbError::Corrupt(format!("{sid} in copy {copy}: bad compressed slot: {e}"))
                })?;
                if image.len() != data_bytes {
                    return Err(MmdbError::Corrupt(format!(
                        "{sid} in copy {copy}: compressed slot decoded to {} bytes, expected {data_bytes}",
                        image.len()
                    )));
                }
                &image
            }
            c => {
                return Err(MmdbError::Corrupt(format!(
                    "{sid} in copy {copy}: unknown slot codec {c}"
                )))
            }
        };
        let mut h = Fnv1a::new();
        h.update(bytes);
        if h.finish() != stored {
            return Err(MmdbError::Corrupt(format!(
                "{sid} in copy {copy}: checksum mismatch"
            )));
        }
        for (i, w) in buf.iter_mut().enumerate() {
            *w = u32::from_le_bytes(
                bytes[i * 4..i * 4 + 4]
                    .try_into()
                    .expect("fixed-size slice"),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::Params;

    fn db() -> DbParams {
        Params::small().db // 32 segments × 2048 words
    }

    fn seg_data(fill: Word) -> Vec<Word> {
        vec![fill; db().s_seg as usize]
    }

    fn full_checkpoint(store: &mut dyn BackupStore, copy: usize, ckpt: u64, fill: Word) {
        store.begin_checkpoint(copy, CheckpointId(ckpt)).unwrap();
        for sid in 0..db().n_segments() as u32 {
            store
                .write_segment(copy, SegmentId(sid), &seg_data(fill))
                .unwrap();
        }
        store.complete_checkpoint(copy, CheckpointId(ckpt)).unwrap();
    }

    fn exercise_store(store: &mut dyn BackupStore) {
        // initially nothing to recover from
        assert!(store.recovery_copy().is_err());

        full_checkpoint(store, 0, 1, 0xA);
        assert_eq!(
            store.copy_status(0).unwrap(),
            CopyStatus::Complete(CheckpointId(1))
        );
        assert_eq!(store.recovery_copy().unwrap(), (0, CheckpointId(1)));

        full_checkpoint(store, 1, 2, 0xB);
        assert_eq!(store.recovery_copy().unwrap(), (1, CheckpointId(2)));

        // checkpoint 3 starts on copy 0 and crashes before completing
        store.begin_checkpoint(0, CheckpointId(3)).unwrap();
        store
            .write_segment(0, SegmentId(0), &seg_data(0xC))
            .unwrap();
        assert_eq!(
            store.copy_status(0).unwrap(),
            CopyStatus::InProgress(CheckpointId(3))
        );
        // recovery still finds the complete copy 1
        assert_eq!(store.recovery_copy().unwrap(), (1, CheckpointId(2)));

        let mut buf = seg_data(0);
        store.read_segment(1, SegmentId(5), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0xB));
    }

    #[test]
    fn mem_backup_pingpong_discipline() {
        let mut store = MemBackup::new(db());
        exercise_store(&mut store);
    }

    #[test]
    fn file_backup_pingpong_discipline() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = FileBackup::open(&dir.join("backup"), db(), false).unwrap();
        exercise_store(&mut store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backup_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        {
            let mut store = FileBackup::open(&base, db(), false).unwrap();
            full_checkpoint(&mut store, 0, 7, 0x77);
        }
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        assert_eq!(store.recovery_copy().unwrap(), (0, CheckpointId(7)));
        let mut buf = seg_data(0);
        store.read_segment(0, SegmentId(3), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0x77));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backup_shape_mismatch_detected() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        {
            let mut store = FileBackup::open(&base, db(), false).unwrap();
            full_checkpoint(&mut store, 0, 1, 1);
        }
        let other = DbParams {
            s_db: 32 << 10,
            s_rec: 32,
            s_seg: 1024,
        };
        let mut store = FileBackup::open(&base, other, false).unwrap();
        // the old header fails shape validation, so the copy reads as Empty
        assert_eq!(store.copy_status(0).unwrap(), CopyStatus::Empty);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_backup_torn_segment_detected() {
        let mut store = MemBackup::new(db());
        full_checkpoint(&mut store, 0, 1, 0xA);
        store.tear_segment(0, SegmentId(4)).unwrap();
        let mut buf = seg_data(0);
        assert!(store.read_segment(0, SegmentId(4), &mut buf).is_err());
        // other segments still fine
        store.read_segment(0, SegmentId(5), &mut buf).unwrap();
    }

    #[test]
    fn file_backup_torn_segment_detected() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        full_checkpoint(&mut store, 0, 1, 0xA);
        // corrupt a few bytes of segment 4's slot directly
        {
            let mut f = OpenOptions::new()
                .write(true)
                .open(base.with_extension("0"))
                .unwrap();
            let offset = HEADER_LEN + 4 * (db().s_seg * 4 + SEG_TRAILER) + 100;
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        }
        let mut buf = seg_data(0);
        assert!(store.read_segment(0, SegmentId(4), &mut buf).is_err());
        store.read_segment(0, SegmentId(5), &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backup_compressed_slots_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        store.set_compress(true);
        full_checkpoint(&mut store, 0, 1, 0x5A);
        let mut buf = seg_data(0);
        store.read_segment(0, SegmentId(7), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0x5A));
        // a reopened store (compression off by default) still reads them
        drop(store);
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        assert_eq!(store.recovery_copy().unwrap(), (0, CheckpointId(1)));
        store.read_segment(0, SegmentId(31), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0x5A));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backup_mixes_raw_and_compressed_slots() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        // checkpoint 1 raw, checkpoint 3 compressed, into the same copy:
        // slot codecs are self-describing per write
        full_checkpoint(&mut store, 0, 1, 0x11);
        store.set_compress(true);
        store.begin_checkpoint(0, CheckpointId(3)).unwrap();
        store
            .write_segment(0, SegmentId(4), &seg_data(0x33))
            .unwrap();
        store.complete_checkpoint(0, CheckpointId(3)).unwrap();
        let mut buf = seg_data(0);
        store.read_segment(0, SegmentId(4), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0x33));
        store.read_segment(0, SegmentId(5), &mut buf).unwrap();
        assert_eq!(buf, seg_data(0x11));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backup_corrupt_compressed_slot_detected() {
        let dir = std::env::temp_dir().join(format!("mmdb-bk7-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("backup");
        let mut store = FileBackup::open(&base, db(), false).unwrap();
        store.set_compress(true);
        full_checkpoint(&mut store, 0, 1, 0x42);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .open(base.with_extension("0"))
                .unwrap();
            let offset = HEADER_LEN + 4 * (db().s_seg * 4 + SEG_TRAILER) + 20;
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.write_all(&[0xDE, 0xAD]).unwrap();
        }
        let mut buf = seg_data(0);
        assert!(store.read_segment(0, SegmentId(4), &mut buf).is_err());
        store.read_segment(0, SegmentId(5), &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_requires_begin_mem() {
        let mut store = MemBackup::new(db());
        assert!(store.write_segment(0, SegmentId(0), &seg_data(1)).is_err());
    }

    #[test]
    fn complete_requires_matching_begin() {
        let mut store = MemBackup::new(db());
        store.begin_checkpoint(0, CheckpointId(1)).unwrap();
        assert!(store.complete_checkpoint(0, CheckpointId(2)).is_err());
        assert!(store.complete_checkpoint(1, CheckpointId(1)).is_err());
        store.complete_checkpoint(0, CheckpointId(1)).unwrap();
        // completing twice is invalid (no longer in progress)
        assert!(store.complete_checkpoint(0, CheckpointId(1)).is_err());
    }

    #[test]
    fn bad_copy_index_rejected() {
        let mut store = MemBackup::new(db());
        assert!(store.begin_checkpoint(2, CheckpointId(1)).is_err());
        assert!(store.copy_status(9).is_err());
    }

    #[test]
    fn bad_segment_shape_rejected() {
        let mut store = MemBackup::new(db());
        store.begin_checkpoint(0, CheckpointId(1)).unwrap();
        assert!(store
            .write_segment(0, SegmentId(999), &seg_data(1))
            .is_err());
        assert!(store.write_segment(0, SegmentId(0), &[1, 2, 3]).is_err());
    }
}
