//! The disk service model (paper §2.2–2.3).
//!
//! Disks are simple servers transferring `d` words in `T_seek + T_trans·d`
//! seconds. Aggregate bandwidth scales linearly with the number of disks
//! (the paper's simplifying assumption), which [`DiskParams::array_time`]
//! captures analytically; [`SimDiskArray`] refines it with per-disk FCFS
//! queues for the discrete-event simulator.

use mmdb_types::DiskParams;

/// A simulated array of independent disks with FCFS queues, operating in
/// simulated seconds.
#[derive(Debug, Clone)]
pub struct SimDiskArray {
    params: DiskParams,
    /// Time at which each disk becomes free.
    busy_until: Vec<f64>,
    /// Total busy seconds accumulated per disk (utilization accounting).
    busy_total: f64,
    ios: u64,
    words: u64,
}

impl SimDiskArray {
    /// A new, idle array.
    pub fn new(params: DiskParams) -> SimDiskArray {
        SimDiskArray {
            params,
            busy_until: vec![0.0; params.n_bdisks as usize],
            busy_total: 0.0,
            ios: 0,
            words: 0,
        }
    }

    /// The disk parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Submits an I/O of `words` words at simulated time `now`, assigning
    /// it to the earliest-free disk. Returns the completion time.
    pub fn submit(&mut self, now: f64, words: u64) -> f64 {
        let service = self.params.service_time(words);
        let disk = self
            .busy_until
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("busy_until is never NaN"))
            .map(|(i, _)| i)
            .expect("array has at least one disk");
        let start = self.busy_until[disk].max(now);
        let done = start + service;
        self.busy_until[disk] = done;
        self.busy_total += service;
        self.ios += 1;
        self.words += words;
        done
    }

    /// Time at which every submitted I/O has completed.
    pub fn drain_time(&self) -> f64 {
        self.busy_until.iter().copied().fold(0.0, f64::max)
    }

    /// Earliest time a new I/O could start.
    pub fn next_free(&self, now: f64) -> f64 {
        self.busy_until
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(now)
    }

    /// Number of I/Os submitted.
    pub fn io_count(&self) -> u64 {
        self.ios
    }

    /// Words transferred.
    pub fn words_transferred(&self) -> u64 {
        self.words
    }

    /// Aggregate busy time across all disks (for utilization:
    /// `busy_seconds / (elapsed × n_disks)`).
    pub fn busy_seconds(&self) -> f64 {
        self.busy_total
    }

    /// Resets the array to idle (between simulation runs).
    pub fn reset(&mut self) {
        self.busy_until.iter_mut().for_each(|t| *t = 0.0);
        self.busy_total = 0.0;
        self.ios = 0;
        self.words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u32) -> DiskParams {
        DiskParams {
            t_seek: 0.01,
            t_trans: 1e-6,
            n_bdisks: n,
        }
    }

    #[test]
    fn single_disk_serializes() {
        let mut a = SimDiskArray::new(params(1));
        let t1 = a.submit(0.0, 10_000); // 0.01 + 0.01 = 0.02
        let t2 = a.submit(0.0, 10_000);
        assert!((t1 - 0.02).abs() < 1e-12);
        assert!((t2 - 0.04).abs() < 1e-12, "second I/O queues behind first");
    }

    #[test]
    fn parallel_disks_overlap() {
        let mut a = SimDiskArray::new(params(2));
        let t1 = a.submit(0.0, 10_000);
        let t2 = a.submit(0.0, 10_000);
        assert!((t1 - 0.02).abs() < 1e-12);
        assert!((t2 - 0.02).abs() < 1e-12, "second disk takes the I/O");
        assert!((a.drain_time() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn submit_after_now_starts_at_now() {
        let mut a = SimDiskArray::new(params(1));
        let t = a.submit(5.0, 0);
        assert!((t - 5.01).abs() < 1e-12);
    }

    #[test]
    fn n_ios_match_analytic_array_time() {
        // With k·n_disks equal I/Os submitted at time 0, the drain time
        // equals the analytic array_time exactly.
        let p = params(4);
        let mut a = SimDiskArray::new(p);
        let n = 20u64;
        for _ in 0..n {
            a.submit(0.0, 8192);
        }
        let analytic = p.array_time(n, 8192);
        assert!(
            (a.drain_time() - analytic).abs() < 1e-9,
            "sim {} vs analytic {}",
            a.drain_time(),
            analytic
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut a = SimDiskArray::new(params(2));
        a.submit(0.0, 100);
        a.submit(0.0, 200);
        assert_eq!(a.io_count(), 2);
        assert_eq!(a.words_transferred(), 300);
        assert!(a.busy_seconds() > 0.0);
        a.reset();
        assert_eq!(a.io_count(), 0);
        assert_eq!(a.drain_time(), 0.0);
    }

    #[test]
    fn next_free_reports_earliest_slot() {
        let mut a = SimDiskArray::new(params(2));
        a.submit(0.0, 10_000);
        assert_eq!(a.next_free(0.0), 0.0, "second disk is idle");
        a.submit(0.0, 10_000);
        assert!((a.next_free(0.0) - 0.02).abs() < 1e-12);
        assert!((a.next_free(0.03) - 0.03).abs() < 1e-12);
    }
}
