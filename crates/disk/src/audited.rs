//! Audit instrumentation for backup stores.
//!
//! [`AuditedBackup`] wraps any [`BackupStore`] and emits the durable
//! copy-state transitions (`BackupMarkInProgress`, `BackupMarkComplete`)
//! into the audit stream, straight from the store layer — so the ping-pong
//! checker sees the marks in the exact order they hit stable storage, not
//! the order the checkpointer intended them.

use crate::backup::{BackupStore, CopyStatus};
use mmdb_audit::{Audit, AuditEvent, CopySummary};
use mmdb_types::{CheckpointId, DbParams, Result, SegmentId, Word};

/// A [`BackupStore`] wrapper that reports durable mark transitions.
pub struct AuditedBackup {
    inner: Box<dyn BackupStore>,
    audit: Audit,
}

impl AuditedBackup {
    /// Wrap `inner`, routing events to `audit`.
    pub fn new(inner: Box<dyn BackupStore>, audit: Audit) -> AuditedBackup {
        AuditedBackup { inner, audit }
    }

    /// Unwrap, returning the underlying store.
    pub fn into_inner(self) -> Box<dyn BackupStore> {
        self.inner
    }
}

impl BackupStore for AuditedBackup {
    fn shape(&self) -> DbParams {
        self.inner.shape()
    }

    fn begin_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        self.inner.begin_checkpoint(copy, ckpt)?;
        self.audit
            .emit(|| AuditEvent::BackupMarkInProgress { copy, ckpt });
        Ok(())
    }

    fn write_segment(&mut self, copy: usize, sid: SegmentId, data: &[Word]) -> Result<()> {
        self.inner.write_segment(copy, sid, data)
    }

    fn complete_checkpoint(&mut self, copy: usize, ckpt: CheckpointId) -> Result<()> {
        self.inner.complete_checkpoint(copy, ckpt)?;
        self.audit
            .emit(|| AuditEvent::BackupMarkComplete { copy, ckpt });
        Ok(())
    }

    fn copy_status(&mut self, copy: usize) -> Result<CopyStatus> {
        self.inner.copy_status(copy)
    }

    fn read_segment(&mut self, copy: usize, sid: SegmentId, buf: &mut [Word]) -> Result<()> {
        self.inner.read_segment(copy, sid, buf)
    }
}

/// Audit-stream form of a durable copy status.
pub fn summarize(status: CopyStatus) -> CopySummary {
    match status {
        CopyStatus::Empty => CopySummary::Empty,
        CopyStatus::InProgress(c) => CopySummary::InProgress(c),
        CopyStatus::Complete(c) => CopySummary::Complete(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::MemBackup;
    use mmdb_types::CheckpointId;

    #[test]
    fn marks_flow_through_to_the_audit_stream() {
        let db = DbParams {
            s_db: 4096,
            s_rec: 32,
            s_seg: 1024,
        };
        let audit = Audit::enabled();
        let mut store = AuditedBackup::new(Box::new(MemBackup::new(db)), audit.clone());
        store.begin_checkpoint(1, CheckpointId(1)).unwrap();
        for sid in 0..db.n_segments() {
            let data = vec![7u32; db.s_seg as usize];
            store
                .write_segment(1, SegmentId(sid as u32), &data)
                .unwrap();
        }
        store.complete_checkpoint(1, CheckpointId(1)).unwrap();
        let report = audit.report().expect("enabled");
        assert_eq!(report.events, 2);
        assert!(report.is_clean(), "{report}");
        assert_eq!(
            store.copy_status(1).unwrap(),
            CopyStatus::Complete(CheckpointId(1))
        );
    }

    #[test]
    fn failed_mark_emits_nothing() {
        let db = DbParams {
            s_db: 4096,
            s_rec: 32,
            s_seg: 1024,
        };
        let audit = Audit::enabled();
        let mut store = AuditedBackup::new(Box::new(MemBackup::new(db)), audit.clone());
        // completing a copy that never began must fail and stay silent
        assert!(store.complete_checkpoint(0, CheckpointId(1)).is_err());
        assert_eq!(audit.report().expect("enabled").events, 0);
    }
}
