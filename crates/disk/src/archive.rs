//! Archival dumps of the backup database.
//!
//! Paper §2.7: "Dumping of the backup database (e.g., to tape) may also
//! be easier [in a MMDBMS] because of the more predictable disk access
//! patterns" — the checkpointer writes segments sequentially, so an
//! archiver can stream a complete ping-pong copy without coordinating
//! with transactions at all.
//!
//! An archive is a single self-describing file:
//!
//! ```text
//! +--------------------------------------+
//! | magic, version                       |
//! | checkpoint id, shape (3×u64)         |
//! | log-slice length (u64)               |
//! | header checksum                      |
//! +--------------------------------------+
//! | segment 0 words ... checksum         |
//! | segment 1 words ... checksum         |
//! | ...                                  |
//! +--------------------------------------+
//! | log slice bytes ... checksum         |
//! +--------------------------------------+
//! ```
//!
//! The log slice carries the REDO log from the archived checkpoint's
//! replay floor to the durable end at dump time, which makes the archive
//! a *point-in-time cold backup*: restore seeds a backup store with the
//! image (under ping-pong copy `ckpt mod 2`, so the next checkpoint
//! targets the other copy) and hands back the log slice for a fresh log
//! device — ordinary recovery then rebuilds the exact committed state.

use crate::backup::BackupStore;
use mmdb_types::{hash::Fnv1a, CheckpointId, DbParams, MmdbError, Result, SegmentId, Word};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const ARCHIVE_MAGIC: u64 = 0x4d4d_4442_4152_4348; // "MMDBARCH"
const ARCHIVE_VERSION: u32 = 1;

/// Metadata of an archive file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveInfo {
    /// The checkpoint whose image the archive holds.
    pub ckpt: CheckpointId,
    /// Database shape.
    pub db: DbParams,
    /// Bytes of REDO-log slice stored after the segment images.
    pub log_bytes: u64,
}

/// Streams the most recent complete backup copy of `store` — plus
/// `log_slice`, the REDO log from that checkpoint's replay floor to the
/// durable end — into an archive file at `path`.
pub fn dump_archive(
    store: &mut dyn BackupStore,
    path: &Path,
    log_slice: &[u8],
) -> Result<ArchiveInfo> {
    let (copy, ckpt) = store.recovery_copy()?;
    let db = store.shape();
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);

    let mut header = Vec::new();
    header.extend_from_slice(&ARCHIVE_MAGIC.to_le_bytes());
    header.extend_from_slice(&ARCHIVE_VERSION.to_le_bytes());
    header.extend_from_slice(&ckpt.raw().to_le_bytes());
    header.extend_from_slice(&db.s_db.to_le_bytes());
    header.extend_from_slice(&db.s_rec.to_le_bytes());
    header.extend_from_slice(&db.s_seg.to_le_bytes());
    header.extend_from_slice(&(log_slice.len() as u64).to_le_bytes());
    let mut h = Fnv1a::new();
    h.update(&header);
    header.extend_from_slice(&h.finish().to_le_bytes());
    w.write_all(&header)?;

    let mut buf: Vec<Word> = vec![0; db.s_seg as usize];
    for sid in 0..db.n_segments() as u32 {
        store.read_segment(copy, SegmentId(sid), &mut buf)?;
        let mut bytes = Vec::with_capacity(buf.len() * 4 + 8);
        for wd in &buf {
            bytes.extend_from_slice(&wd.to_le_bytes());
        }
        let mut h = Fnv1a::new();
        h.update(&bytes);
        bytes.extend_from_slice(&h.finish().to_le_bytes());
        w.write_all(&bytes)?;
    }
    w.write_all(log_slice)?;
    let mut h = Fnv1a::new();
    h.update(log_slice);
    w.write_all(&h.finish().to_le_bytes())?;
    w.flush()?;
    Ok(ArchiveInfo {
        ckpt,
        db,
        log_bytes: log_slice.len() as u64,
    })
}

/// Reads and validates an archive's header.
pub fn archive_info(path: &Path) -> Result<ArchiveInfo> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    read_header(&mut r)
}

fn read_header(r: &mut impl Read) -> Result<ArchiveInfo> {
    let mut header = [0u8; 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8];
    r.read_exact(&mut header)
        .map_err(|_| MmdbError::Corrupt("archive header too short".into()))?;
    let magic = u64::from_le_bytes(header[0..8].try_into().expect("fixed-size slice"));
    if magic != ARCHIVE_MAGIC {
        return Err(MmdbError::Corrupt("bad archive magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed-size slice"));
    if version != ARCHIVE_VERSION {
        return Err(MmdbError::Corrupt(format!(
            "unsupported archive version {version}"
        )));
    }
    let ckpt = CheckpointId(u64::from_le_bytes(
        header[12..20].try_into().expect("fixed-size slice"),
    ));
    let db = DbParams {
        s_db: u64::from_le_bytes(header[20..28].try_into().expect("fixed-size slice")),
        s_rec: u64::from_le_bytes(header[28..36].try_into().expect("fixed-size slice")),
        s_seg: u64::from_le_bytes(header[36..44].try_into().expect("fixed-size slice")),
    };
    let log_bytes = u64::from_le_bytes(header[44..52].try_into().expect("fixed-size slice"));
    let stored = u64::from_le_bytes(header[52..60].try_into().expect("fixed-size slice"));
    let mut h = Fnv1a::new();
    h.update(&header[0..52]);
    if h.finish() != stored {
        return Err(MmdbError::Corrupt(
            "archive header checksum mismatch".into(),
        ));
    }
    db.validate().map_err(MmdbError::Corrupt)?;
    Ok(ArchiveInfo {
        ckpt,
        db,
        log_bytes,
    })
}

/// Restores an archive into `store` (under ping-pong copy
/// `ckpt mod 2`, so the next checkpoint targets the other copy), marking
/// it complete under the archived checkpoint id, and returns the
/// archived REDO-log slice. The store's shape must match the archive's.
/// Fails without marking the copy complete if anything is corrupt
/// (segments and the log slice are validated as they stream).
pub fn restore_archive(store: &mut dyn BackupStore, path: &Path) -> Result<(ArchiveInfo, Vec<u8>)> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let info = read_header(&mut r)?;
    if store.shape() != info.db {
        return Err(MmdbError::Invalid(format!(
            "archive shape {:?} does not match store shape {:?}",
            info.db,
            store.shape()
        )));
    }
    let copy = info.ckpt.pingpong_copy();
    store.begin_checkpoint(copy, info.ckpt)?;
    let seg_bytes = info.db.s_seg as usize * 4;
    let mut bytes = vec![0u8; seg_bytes + 8];
    let mut words: Vec<Word> = vec![0; info.db.s_seg as usize];
    for sid in 0..info.db.n_segments() as u32 {
        r.read_exact(&mut bytes)
            .map_err(|_| MmdbError::Corrupt(format!("archive truncated at segment {sid}")))?;
        let stored = u64::from_le_bytes(bytes[seg_bytes..].try_into().expect("fixed-size slice"));
        let mut h = Fnv1a::new();
        h.update(&bytes[..seg_bytes]);
        if h.finish() != stored {
            return Err(MmdbError::Corrupt(format!(
                "archive segment {sid}: checksum mismatch"
            )));
        }
        for (i, wd) in words.iter_mut().enumerate() {
            *wd = u32::from_le_bytes(
                bytes[i * 4..i * 4 + 4]
                    .try_into()
                    .expect("fixed-size slice"),
            );
        }
        store.write_segment(copy, SegmentId(sid), &words)?;
    }
    let mut log_slice = vec![0u8; info.log_bytes as usize];
    r.read_exact(&mut log_slice)
        .map_err(|_| MmdbError::Corrupt("archive truncated in log slice".into()))?;
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored)
        .map_err(|_| MmdbError::Corrupt("archive missing log checksum".into()))?;
    let mut h = Fnv1a::new();
    h.update(&log_slice);
    if h.finish() != u64::from_le_bytes(stored) {
        return Err(MmdbError::Corrupt(
            "archive log slice: checksum mismatch".into(),
        ));
    }
    store.complete_checkpoint(copy, info.ckpt)?;
    Ok((info, log_slice))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::MemBackup;
    use mmdb_types::Params;

    fn db() -> DbParams {
        Params::small().db
    }

    fn populated_store() -> MemBackup {
        let mut store = MemBackup::new(db());
        store.begin_checkpoint(1, CheckpointId(5)).unwrap();
        for sid in 0..db().n_segments() as u32 {
            let data = vec![sid + 100; db().s_seg as usize];
            store.write_segment(1, SegmentId(sid), &data).unwrap();
        }
        store.complete_checkpoint(1, CheckpointId(5)).unwrap();
        store
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmdb-arch-{}-{}", name, std::process::id()))
    }

    #[test]
    fn dump_and_restore_roundtrip() {
        let mut src = populated_store();
        let path = tmpfile("roundtrip");
        let log = b"pretend log slice".to_vec();
        let info = dump_archive(&mut src, &path, &log).unwrap();
        assert_eq!(info.ckpt, CheckpointId(5));
        assert_eq!(info.log_bytes, log.len() as u64);

        assert_eq!(archive_info(&path).unwrap(), info);

        let mut dst = MemBackup::new(db());
        let (restored, log_back) = restore_archive(&mut dst, &path).unwrap();
        assert_eq!(restored, info);
        assert_eq!(log_back, log);
        // ckpt 5 is odd → restored into copy 1
        assert_eq!(dst.recovery_copy().unwrap(), (1, CheckpointId(5)));
        let mut buf = vec![0u32; db().s_seg as usize];
        for sid in 0..db().n_segments() as u32 {
            dst.read_segment(1, SegmentId(sid), &mut buf).unwrap();
            assert!(buf.iter().all(|w| *w == sid + 100));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_without_complete_backup_fails() {
        let mut store = MemBackup::new(db());
        let path = tmpfile("nodata");
        assert!(dump_archive(&mut store, &path, &[]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_archive_detected() {
        let mut src = populated_store();
        let path = tmpfile("corrupt");
        dump_archive(&mut src, &path, b"log").unwrap();
        // flip a byte in the middle of segment data
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut dst = MemBackup::new(db());
        let err = restore_archive(&mut dst, &path).unwrap_err();
        assert!(matches!(err, MmdbError::Corrupt(_)));
        // the partially-restored copy is not marked complete
        assert!(dst.recovery_copy().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_archive_detected() {
        let mut src = populated_store();
        let path = tmpfile("trunc");
        dump_archive(&mut src, &path, b"log").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        let mut dst = MemBackup::new(db());
        assert!(restore_archive(&mut dst, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut src = populated_store();
        let path = tmpfile("shape");
        dump_archive(&mut src, &path, &[]).unwrap();
        let other = DbParams {
            s_db: 32 << 10,
            s_rec: 32,
            s_seg: 1024,
        };
        let mut dst = MemBackup::new(other);
        assert!(matches!(
            restore_archive(&mut dst, &path),
            Err(MmdbError::Invalid(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"definitely not an mmdb archive file").unwrap();
        assert!(archive_info(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
