//! Backup storage for the memory-resident database.
//!
//! Two layers:
//!
//! * [`SimDiskArray`] — the paper's disk service model (§2.2):
//!   `T_seek + T_trans·d` per I/O, linear scaling across `N_bdisks`
//!   disks, with per-disk FCFS queues for discrete-event simulation;
//! * [`BackupStore`] — the ping-pong backup database pair (§2.6), as an
//!   in-memory store ([`MemBackup`], with fault injection) and a
//!   file-backed store ([`FileBackup`]) with durable state headers and
//!   per-segment checksums;
//! * [`dump_archive`]/[`restore_archive`] — archival cold dumps of a
//!   complete backup copy (§2.7's tape dump).

#![warn(missing_docs)]

mod archive;
mod audited;
mod backup;
mod model;
mod observed;

pub use archive::{archive_info, dump_archive, restore_archive, ArchiveInfo};
pub use audited::{summarize, AuditedBackup};
pub use backup::{BackupStore, CopyStatus, FileBackup, MemBackup};
pub use model::SimDiskArray;
pub use observed::ObservedBackup;
