//! Replication end-to-end through the CLI binary: a real primary and a
//! real standby as separate `mmdb-cli serve` processes on loopback.
//!
//! Two claims are checked here. Identity: a fully-replayed standby is
//! byte-equivalent to the primary — same storage fingerprint, offline,
//! after both restart from their own logs — and `fsck --compare` is
//! sharp enough to catch a single diverged record. Durability: with
//! semi-sync replication, SIGKILLing the primary mid-load and promoting
//! the standby loses no acked commit, and promotion is sub-second.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mmdb_types::RecordId;
use mmdb_wire::Client;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mmdb-cli")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-repl-test-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn init_sharded(dir: &Path) {
    let out = Command::new(bin())
        .arg(dir)
        .args(["init", "--algorithm", "COUCOPY", "--shards", "2"])
        .output()
        .expect("init");
    assert!(
        out.status.success(),
        "init failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Spawns `mmdb-cli <dir> serve` and returns (child, bound address,
/// stdout reader). Keep the reader alive until after `wait()`.
fn spawn_serve(
    dir: &Path,
    extra: &[&str],
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(bin())
        .arg(dir)
        .args(["serve", "--addr", "127.0.0.1:0", "--ckpt-ms", "5"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .expect("serve prints its address");
    let addr = first
        .trim_end()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first}"))
        .to_string();
    (child, addr, reader)
}

/// Polls until the primary and standby report identical fingerprints
/// over the wire.
fn wait_converged(primary_addr: &str, standby_addr: &str) -> u64 {
    let mut a = Client::connect(primary_addr).expect("connect primary");
    let mut b = Client::connect(standby_addr).expect("connect standby");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let fp = a.fingerprint().expect("primary fingerprint");
        let fs = b.fingerprint().expect("standby fingerprint");
        if fp == fs {
            return fp;
        }
        if Instant::now() >= deadline {
            let pj = a.stats_json().unwrap_or_default();
            let sj = b.stats_json().unwrap_or_default();
            let grep = |j: &str| {
                j.lines()
                    .filter(|l| l.contains("repl."))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            panic!(
                "standby never converged: primary {fp:#x}, standby {fs:#x}\n\
                 primary repl counters:\n{}\nstandby repl counters:\n{}",
                grep(&pj),
                grep(&sj)
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls the primary's stats until a standby has said hello (so
/// semi-sync commits actually gate on replication acks).
fn wait_repl_engaged(primary_addr: &str) {
    let mut c = Client::connect(primary_addr).expect("connect primary");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let json = c.stats_json().expect("stats");
        let snap = mmdb_core::MetricsSnapshot::from_json(&json).expect("stats parse");
        if snap.counter("repl.hello").unwrap_or(0) >= 1 {
            return;
        }
        assert!(Instant::now() < deadline, "standby never said hello");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replayed_standby_is_fingerprint_identical_and_compare_catches_divergence() {
    let primary_dir = tmpdir("fp-primary");
    let standby_dir = tmpdir("fp-standby");
    init_sharded(&primary_dir);
    init_sharded(&standby_dir);

    // --repl-primary pins log truncation from startup (the
    // replication-slot contract): the standby, seeded by an identical
    // init, attaches without a bootstrap gap even though the primary's
    // checkpointer runs every 5ms from the moment it comes up
    let (mut p_child, p_addr, _p_out) = spawn_serve(&primary_dir, &["--repl-primary"]);
    let (mut s_child, s_addr, _s_out) = spawn_serve(&standby_dir, &["--replica-of", &p_addr]);
    wait_repl_engaged(&p_addr);

    let mut c = Client::connect(&p_addr).expect("connect primary");
    c.set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let words = c.info().expect("info").record_words as usize;
    for i in 0..50u64 {
        c.retry_transient(1000, |c| {
            c.put(RecordId(i % 24), &vec![i as u32 + 1; words])
        })
        .expect("put");
    }
    let fp = wait_converged(&p_addr, &s_addr);
    assert_ne!(fp, 0, "non-trivial converged state");

    // both down gracefully; each directory now restarts from its own log
    let mut s = Client::connect(&s_addr).expect("connect standby");
    s.shutdown().expect("standby shutdown");
    assert!(s_child.wait().expect("standby exits").success());
    c.shutdown().expect("primary shutdown");
    assert!(p_child.wait().expect("primary exits").success());

    // identity, offline: the standby that only ever replayed shipped log
    // bytes fingerprints identically to the primary that wrote them
    let primary_str = primary_dir.to_string_lossy().into_owned();
    let out = Command::new(bin())
        .arg(&standby_dir)
        .args(["fsck", "--compare", &primary_str])
        .output()
        .expect("fsck --compare");
    let text =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fsck --compare failed:\n{text}");
    assert!(text.contains("fingerprints match"), "{text}");
    assert!(text.contains("fsck: clean"), "{text}");

    // diverge exactly one record on the standby, offline
    let put = Command::new(bin())
        .arg(&standby_dir)
        .args(["put", "3", "99999"])
        .output()
        .expect("offline put");
    assert!(
        put.status.success(),
        "offline put failed: {}",
        String::from_utf8_lossy(&put.stderr)
    );

    // the single-record divergence must fail the compare
    let out = Command::new(bin())
        .arg(&standby_dir)
        .args(["fsck", "--compare", &primary_str])
        .output()
        .expect("fsck --compare after divergence");
    let text =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "fsck --compare must fail on a diverged standby:\n{text}"
    );
    assert!(text.contains("FINGERPRINT MISMATCH"), "{text}");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

/// Per-record fill tracking: the last acked fill and the one in flight.
#[derive(Default, Clone, Copy)]
struct Tracked {
    acked: Option<u32>,
    in_flight: Option<u32>,
}

#[test]
fn sigkill_primary_then_promote_loses_no_acked_commit() {
    let primary_dir = tmpdir("kill-primary");
    let standby_dir = tmpdir("kill-standby");
    init_sharded(&primary_dir);
    init_sharded(&standby_dir);

    // semi-sync: the primary acks a commit only after the standby has
    // durably applied it, so "acked" below means "on the standby"
    let (mut p_child, p_addr, _p_out) = spawn_serve(&primary_dir, &["--repl-sync"]);
    let (s_child, s_addr, _s_out) = spawn_serve(&standby_dir, &["--replica-of", &p_addr]);
    wait_repl_engaged(&p_addr);

    let mut control = Client::connect(&p_addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let words = control.info().expect("info").record_words as usize;

    const THREADS: u64 = 2;
    const RANGE: u64 = 8;
    let tracked: Arc<Mutex<HashMap<u64, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = p_addr.clone();
        let tracked = Arc::clone(&tracked);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        joins.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let _ = c.set_timeout(Some(Duration::from_secs(10)));
            let mut seq: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                seq += 1;
                let rid = t * RANGE + u64::from(seq) % RANGE;
                let fill = ((t as u32) << 24) | seq; // unique per (thread, seq)
                {
                    let mut m = match tracked.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    m.entry(rid).or_default().in_flight = Some(fill);
                }
                match c.retry_transient(1000, |c| c.put(RecordId(rid), &vec![fill; words])) {
                    Ok(_) => {
                        let mut m = match tracked.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let e = m.entry(rid).or_default();
                        e.acked = Some(fill);
                        e.in_flight = None;
                        committed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // primary died under us — expected
                }
            }
        }));
    }

    // enough acked semi-sync commits to make the loss check meaningful,
    // then pull the plug on the primary with writes in flight
    let deadline = Instant::now() + Duration::from_secs(60);
    while committed.load(Ordering::SeqCst) < 100 {
        assert!(
            Instant::now() < deadline,
            "never reached 100 acked semi-sync commits"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    p_child.kill().expect("SIGKILL primary");
    let _ = p_child.wait();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let tracked = match Arc::try_unwrap(tracked).map(Mutex::into_inner) {
        Ok(Ok(m)) => m,
        _ => panic!("tracking map still shared"),
    };

    // promote the standby via the CLI and require sub-second
    // recovery-to-serving: promote + first successful read
    let t0 = Instant::now();
    let promote = Command::new(bin())
        .arg(&standby_dir)
        .args(["promote", "--addr", &s_addr])
        .output()
        .expect("promote");
    assert!(
        promote.status.success(),
        "promote failed: {}",
        String::from_utf8_lossy(&promote.stderr)
    );
    let mut s = Client::connect(&s_addr).expect("connect promoted standby");
    s.set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let probe = tracked.keys().next().copied().expect("tracked records");
    s.get(RecordId(probe))
        .expect("promoted standby serves reads");
    let took = t0.elapsed();
    assert!(
        took < Duration::from_secs(1),
        "promote-to-serving took {took:?}, expected sub-second"
    );

    // the durability claim: every record's last ACKED fill (or the one
    // in-flight write the kill raced with) is on the promoted standby
    let mut audited = 0u64;
    for (rid, t) in &tracked {
        if t.acked.is_none() {
            continue;
        }
        let value = s.get(RecordId(*rid)).expect("read on promoted standby");
        assert!(
            value.iter().all(|w| *w == value[0]),
            "record {rid} torn on the standby: {value:?}"
        );
        let got = value[0];
        let mut allowed: Vec<u32> = Vec::new();
        if let Some(a) = t.acked {
            allowed.push(a);
        }
        if let Some(f) = t.in_flight {
            allowed.push(f);
        }
        assert!(
            allowed.contains(&got),
            "record {rid}: standby holds {got:#x}, expected one of {allowed:x?} — \
             an ACKED semi-sync commit was lost (acked={:x?}, in-flight={:x?})",
            t.acked,
            t.in_flight
        );
        audited += 1;
    }
    assert!(audited >= 8, "too few records audited: {audited}");

    // the promoted standby is a real primary now: writes are accepted
    s.retry_transient(1000, |c| c.put(RecordId(probe), &vec![0xD00D; words]))
        .expect("write after promotion");
    assert_eq!(
        s.get(RecordId(probe)).expect("read back"),
        vec![0xD00D; words]
    );

    // ... and the promotion was persisted: the conf no longer says replica
    let conf = std::fs::read_to_string(standby_dir.join("mmdb.conf")).expect("mmdb.conf");
    assert!(
        conf.contains("repl_role=primary"),
        "promotion must persist the role flip:\n{conf}"
    );

    s.shutdown().expect("graceful shutdown");
    let mut s_child = s_child;
    assert!(s_child.wait().expect("standby exits").success());

    // offline, the promoted directory is a clean database
    let fsck = Command::new(bin())
        .arg(&standby_dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    assert!(
        fsck.status.success(),
        "fsck failed on the promoted standby: {}",
        String::from_utf8_lossy(&fsck.stderr)
    );

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}
