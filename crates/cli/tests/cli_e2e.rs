//! End-to-end tests of the `mmdb-cli` binary: every invocation is a
//! separate process, so these exercise real file-device recovery between
//! commands.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mmdb-cli")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-cli-test-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cli(dir: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .arg(dir)
        .args(args)
        .output()
        .expect("spawn mmdb-cli")
}

fn ok(dir: &Path, args: &[&str]) -> String {
    let out = cli(dir, args);
    assert!(
        out.status.success(),
        "mmdb-cli {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_lifecycle_across_processes() {
    let dir = tmpdir("lifecycle");
    let out = ok(&dir, &["init", "--algorithm", "COUCOPY"]);
    assert!(out.contains("initialized"), "{out}");

    ok(&dir, &["put", "7", "4242"]);
    let out = ok(&dir, &["get", "7"]);
    assert!(out.contains("record 7 = 4242"), "{out}");

    let out = ok(&dir, &["workload", "150", "--seed", "3"]);
    assert!(out.contains("committed 150 transactions"), "{out}");

    let out = ok(&dir, &["checkpoint"]);
    assert!(out.contains("segments flushed"), "{out}");

    // a put after the checkpoint must survive purely via the log
    ok(&dir, &["put", "9", "777"]);
    let out = ok(&dir, &["get", "9"]);
    assert!(out.contains("record 9 = 777"), "{out}");

    let out = ok(&dir, &["stats"]);
    assert!(out.contains("COUCOPY"), "{out}");
    assert!(out.contains("log disk"), "{out}");

    let out = ok(&dir, &["fsck"]);
    assert!(out.contains("fsck: clean"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn init_refuses_existing_database() {
    let dir = tmpdir("reinit");
    ok(&dir, &["init"]);
    let out = cli(&dir, &["init"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already contains"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commands_fail_cleanly_without_init() {
    let dir = tmpdir("noinit");
    let out = cli(&dir, &["get", "0"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("init"),
        "should point the user at init: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_algorithm_initializes_and_works() {
    for algorithm in [
        "FUZZYCOPY",
        "2CFLUSH",
        "2CCOPY",
        "COUFLUSH",
        "COUCOPY",
        "FASTFUZZY",
        "COUAC",
    ] {
        let dir = tmpdir(&format!("alg-{algorithm}"));
        ok(&dir, &["init", "--algorithm", algorithm]);
        ok(&dir, &["put", "0", "1"]);
        ok(&dir, &["checkpoint"]);
        let out = ok(&dir, &["get", "0"]);
        assert!(out.contains("record 0 = 1"), "{algorithm}: {out}");
        ok(&dir, &["fsck"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn custom_geometry_respected() {
    let dir = tmpdir("geometry");
    let out = ok(
        &dir,
        &[
            "init",
            "--segments",
            "8",
            "--segment-words",
            "1024",
            "--record-words",
            "16",
        ],
    );
    assert!(out.contains("512 records × 16 words, 8 segments"), "{out}");
    ok(&dir, &["put", "511", "5"]);
    let out = cli(&dir, &["put", "512", "5"]);
    assert!(!out.status.success(), "record out of range must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Copies a database directory byte for byte (the recovery twins used
/// by the fingerprint-identity checks).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read src").flatten() {
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

#[test]
fn parallel_recovery_is_fingerprint_identical_to_serial() {
    // The parallel-replay oracle check, end to end through the binary:
    // the same crashed directory recovered with 1, 2, and 8 workers
    // must land on the same storage fingerprint as the serial path.
    // `fsck --recovery-workers N --compare <dir>` recovers the local
    // copy in parallel and the target with its persisted (serial)
    // config, then cross-checks.
    let dir = tmpdir("par-identity");
    ok(&dir, &["init", "--algorithm", "FUZZYCOPY"]);
    ok(&dir, &["workload", "400", "--seed", "11"]);
    ok(&dir, &["checkpoint"]);
    // a committed-REDO window on top of the checkpoint, so recovery has
    // real replay work to partition across lanes
    ok(&dir, &["workload", "300", "--seed", "12"]);
    ok(&dir, &["put", "3", "1234"]);

    let dir_str = dir.to_string_lossy().into_owned();
    for workers in ["1", "2", "8"] {
        let par = tmpdir(&format!("par-identity-{workers}w"));
        copy_dir(&dir, &par);
        let out = ok(
            &par,
            &["fsck", "--recovery-workers", workers, "--compare", &dir_str],
        );
        assert!(
            out.contains("compare: fingerprints match"),
            "{workers} workers diverged from serial:\n{out}"
        );
        assert!(out.contains("fsck: clean"), "{out}");
        let _ = std::fs::remove_dir_all(&par);
    }
    // the recovered state is the real one: the last put survives
    let out = ok(&dir, &["get", "3"]);
    assert!(out.contains("record 3 = 1234"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_command_reports_and_recovery_survives() {
    // Offline `compact`: a hot-set workload makes most frames
    // superseded, rotation seals them cold, and the compact command
    // must report dropped frames — after which the database still
    // opens, fscks clean, and serves the latest values.
    let dir = tmpdir("compact-cmd");
    ok(&dir, &["init", "--algorithm", "COUCOPY"]);
    for round in 0..6 {
        let fill = (100 + round).to_string();
        for rid in ["1", "2", "3"] {
            ok(&dir, &["put", rid, &fill]);
        }
    }
    let out = ok(&dir, &["compact"]);
    assert!(out.contains("chunk(s) rotated"), "{out}");

    // a second, compressed pass over the now-cold chunks
    let out = ok(&dir, &["compact", "--compress"]);
    assert!(out.contains("cold-chunk disk footprint"), "{out}");

    let out = ok(&dir, &["fsck"]);
    assert!(out.contains("fsck: clean"), "{out}");
    let out = ok(&dir, &["get", "2"]);
    assert!(out.contains("record 2 = 105"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_json_round_trips_through_the_snapshot_parser() {
    let dir = tmpdir("stats-json");
    ok(&dir, &["init", "--algorithm", "FUZZYCOPY"]);
    ok(&dir, &["workload", "40", "--seed", "7"]);
    ok(&dir, &["checkpoint"]);
    let out = ok(&dir, &["stats", "--json"]);
    let snap = mmdb_obs::MetricsSnapshot::from_json(&out).expect("stats --json must parse");
    assert_eq!(
        snap.to_json_pretty().trim(),
        out.trim(),
        "parse → re-serialize must be the identity"
    );
    // the snapshot-time merge of the engine stats must be present; the
    // stats invocation is its own process, so its session counters start
    // at zero — but opening the directory recovered from the backup, and
    // both the recovery counter and the segment gauges must show it
    assert!(snap.counter("ckpt.completed").is_some(), "{out}");
    assert_eq!(snap.counter("recovery.runs"), Some(1), "{out}");
    assert!(snap.gauge("seg.total").unwrap_or(0) > 0, "{out}");
    assert!(
        snap.hist("recovery.backup_load_ns").is_some(),
        "recovery phase histogram missing:\n{out}"
    );
    assert!(snap.paper.is_some(), "paper overhead section missing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_prom_is_valid_exposition_format() {
    let dir = tmpdir("stats-prom");
    ok(&dir, &["init", "--algorithm", "2CCOPY"]);
    ok(&dir, &["workload", "40", "--seed", "7"]);
    ok(&dir, &["checkpoint"]);
    let out = ok(&dir, &["stats", "--prom"]);
    mmdb_obs::validate_prometheus(&out).expect("stats --prom must validate");
    assert!(out.contains("mmdb_ckpt_completed"), "{out}");
    assert!(out.contains("mmdb_paper_ckpt_overhead_per_txn"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_shows_spans_for_every_algorithm() {
    for algorithm in [
        "FUZZYCOPY",
        "2CFLUSH",
        "2CCOPY",
        "COUFLUSH",
        "COUCOPY",
        "FASTFUZZY",
    ] {
        let dir = tmpdir(&format!("trace-{algorithm}"));
        ok(&dir, &["init", "--algorithm", algorithm]);
        let out = ok(&dir, &["trace", "--txns", "30", "--limit", "1000"]);
        for span in ["txn.commit", "ckpt.flush", "ckpt.pass", "log.force"] {
            assert!(out.contains(span), "{algorithm}: no {span} span:\n{out}");
        }
        // the workload txns run under request scopes: each commit's
        // spans nest under a net.request root labeled with the op
        assert!(out.contains("net.request"), "{algorithm}:\n{out}");
        assert!(
            out.contains("  txn.commit"),
            "{algorithm}: txn.commit must nest under its request root:\n{out}"
        );
        assert!(out.contains("recent spans ("), "{algorithm}:\n{out}");
        // the dry-run recoverability check at the end emits the recovery
        // phase spans
        assert!(out.contains("recovery.backup_load"), "{algorithm}:\n{out}");
        assert!(out.contains("recovery.redo_replay"), "{algorithm}:\n{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn unknown_subcommand_prints_full_usage_and_fails() {
    let dir = tmpdir("unknown-cmd");
    ok(&dir, &["init"]);
    let out = cli(&dir, &["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for name in [
        "init",
        "put",
        "get",
        "workload",
        "checkpoint",
        "stats",
        "trace",
        "audit",
        "fsck",
        "dump",
        "restore",
    ] {
        assert!(stderr.contains(name), "usage must list {name}:\n{stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_are_reported() {
    let dir = tmpdir("badargs");
    ok(&dir, &["init"]);
    for bad in [
        vec!["put"],
        vec!["put", "0"],
        vec!["put", "zero", "1"],
        vec!["get"],
        vec!["workload"],
        vec!["frobnicate"],
    ] {
        let out = cli(&dir, &bad);
        assert!(!out.status.success(), "{bad:?} should fail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_net_self_hosts_and_emits_valid_json() {
    let dir = tmpdir("bench-net");
    ok(&dir, &["init", "--algorithm", "2CCOPY"]);
    let out_file = dir.join("BENCH_net.json");
    let out_str = out_file.to_string_lossy().into_owned();
    let out = ok(
        &dir,
        &[
            "bench-net",
            "--connections",
            "8",
            "--txns",
            "15",
            "--updates",
            "3",
            "--zipf",
            "0.7",
            "--seed",
            "9",
            "--out",
            &out_str,
        ],
    );
    assert!(out.contains("8 conns × 15 txns"), "{out}");
    assert!(out.contains("0 errors"), "{out}");
    let json = std::fs::read_to_string(&out_file).expect("bench JSON written");
    mmdb_server::validate_bench_net_json(&json).expect("bench JSON validates");
    assert!(json.contains("\"zipf\""), "{json}");
    // the database survives being served: committed work is durable
    let fsck = ok(&dir, &["fsck"]);
    assert!(fsck.contains("fsck: clean"), "{fsck}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_remote_renders_a_live_servers_span_trees() {
    use std::io::{BufRead, BufReader};

    let dir = tmpdir("trace-remote");
    ok(&dir, &["init", "--algorithm", "FUZZYCOPY"]);

    // slow threshold 1 µs: effectively every request lands in the
    // slow-request log, so the dump deterministically has a tree to show
    let mut child = Command::new(bin())
        .arg(&dir)
        .args(["serve", "--addr", "127.0.0.1:0", "--slow-us", "1"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("first line").expect("readable");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first}"))
        .to_string();

    let mut client = mmdb_wire::Client::connect(&addr).expect("connect");
    client.set_tracing(true);
    let words = client.info().expect("info").record_words as usize;
    client
        .put(mmdb_core::RecordId(3), &vec![5u32; words])
        .expect("traced put");

    // `trace --remote` renders the server's flight recorder with the
    // same formatter the local path uses
    let out = ok(&dir, &["trace", "--remote", &addr]);
    assert!(out.contains("slow requests (threshold 1 us)"), "{out}");
    assert!(out.contains("op=put"), "{out}");
    assert!(out.contains("net.request"), "{out}");
    assert!(out.contains("recent spans ("), "{out}");

    // identity with the shared formatter: fetching the same dump over
    // the wire and rendering it locally gives the same text shape
    let json = client.trace_dump(512).expect("trace dump");
    let doc = mmdb_core::TraceDumpDoc::from_json(&json).expect("parse dump");
    let rendered = doc.render();
    assert!(rendered.contains("op=put"), "{rendered}");

    client.shutdown().expect("graceful shutdown");
    child.wait().expect("serve exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_announces_its_port_and_shuts_down_over_the_wire() {
    use std::io::{BufRead, BufReader};

    let dir = tmpdir("serve");
    ok(&dir, &["init", "--algorithm", "COUCOPY"]);

    let mut child = Command::new(bin())
        .arg(&dir)
        .args(["serve", "--addr", "127.0.0.1:0", "--ckpt-ms", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("serve printed a line")
        .expect("readable line");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first}"))
        .to_string();

    let mut client = mmdb_wire::Client::connect(&addr).expect("connect to serve");
    client.ping().expect("ping");
    let words = client.info().expect("info").record_words as usize;
    let (_txn, _runs) = client
        .put(mmdb_core::RecordId(1), &vec![77u32; words])
        .expect("put over the wire");
    client.shutdown().expect("graceful shutdown");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve should exit cleanly after Shutdown");

    // the commit that was acked over the wire is durable
    let out = ok(&dir, &["get", "1"]);
    assert!(out.contains("record 1 = 77"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}
