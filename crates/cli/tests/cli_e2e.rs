//! End-to-end tests of the `mmdb-cli` binary: every invocation is a
//! separate process, so these exercise real file-device recovery between
//! commands.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mmdb-cli")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-cli-test-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cli(dir: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .arg(dir)
        .args(args)
        .output()
        .expect("spawn mmdb-cli")
}

fn ok(dir: &Path, args: &[&str]) -> String {
    let out = cli(dir, args);
    assert!(
        out.status.success(),
        "mmdb-cli {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_lifecycle_across_processes() {
    let dir = tmpdir("lifecycle");
    let out = ok(&dir, &["init", "--algorithm", "COUCOPY"]);
    assert!(out.contains("initialized"), "{out}");

    ok(&dir, &["put", "7", "4242"]);
    let out = ok(&dir, &["get", "7"]);
    assert!(out.contains("record 7 = 4242"), "{out}");

    let out = ok(&dir, &["workload", "150", "--seed", "3"]);
    assert!(out.contains("committed 150 transactions"), "{out}");

    let out = ok(&dir, &["checkpoint"]);
    assert!(out.contains("segments flushed"), "{out}");

    // a put after the checkpoint must survive purely via the log
    ok(&dir, &["put", "9", "777"]);
    let out = ok(&dir, &["get", "9"]);
    assert!(out.contains("record 9 = 777"), "{out}");

    let out = ok(&dir, &["stats"]);
    assert!(out.contains("COUCOPY"), "{out}");
    assert!(out.contains("log disk"), "{out}");

    let out = ok(&dir, &["fsck"]);
    assert!(out.contains("fsck: clean"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn init_refuses_existing_database() {
    let dir = tmpdir("reinit");
    ok(&dir, &["init"]);
    let out = cli(&dir, &["init"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already contains"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commands_fail_cleanly_without_init() {
    let dir = tmpdir("noinit");
    let out = cli(&dir, &["get", "0"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("init"),
        "should point the user at init: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_algorithm_initializes_and_works() {
    for algorithm in [
        "FUZZYCOPY",
        "2CFLUSH",
        "2CCOPY",
        "COUFLUSH",
        "COUCOPY",
        "FASTFUZZY",
        "COUAC",
    ] {
        let dir = tmpdir(&format!("alg-{algorithm}"));
        ok(&dir, &["init", "--algorithm", algorithm]);
        ok(&dir, &["put", "0", "1"]);
        ok(&dir, &["checkpoint"]);
        let out = ok(&dir, &["get", "0"]);
        assert!(out.contains("record 0 = 1"), "{algorithm}: {out}");
        ok(&dir, &["fsck"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn custom_geometry_respected() {
    let dir = tmpdir("geometry");
    let out = ok(
        &dir,
        &[
            "init",
            "--segments",
            "8",
            "--segment-words",
            "1024",
            "--record-words",
            "16",
        ],
    );
    assert!(out.contains("512 records × 16 words, 8 segments"), "{out}");
    ok(&dir, &["put", "511", "5"]);
    let out = cli(&dir, &["put", "512", "5"]);
    assert!(!out.status.success(), "record out of range must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_are_reported() {
    let dir = tmpdir("badargs");
    ok(&dir, &["init"]);
    for bad in [
        vec!["put"],
        vec!["put", "0"],
        vec!["put", "zero", "1"],
        vec!["get"],
        vec!["workload"],
        vec!["frobnicate"],
    ] {
        let out = cli(&dir, &bad);
        assert!(!out.status.success(), "{bad:?} should fail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
