//! Networked crash test — the network analogue of `tests/crash_matrix.rs`.
//!
//! A real `mmdb-cli serve` process takes concurrent wire commits with a
//! live background checkpointer, gets SIGKILLed mid-load (no flush, no
//! goodbye), and must come back with exactly the committed state:
//! every value the server *acked* survives (commits force the log —
//! `CommitDurability::Force`), and every record holds either its last
//! acked value or the one write that was in flight when the process
//! died — never a torn mixture, never anything older.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mmdb_types::RecordId;
use mmdb_wire::Client;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mmdb-cli")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-net-crash-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `mmdb-cli <dir> serve` and returns (child, bound address,
/// stdout reader). Keep the reader alive until after `wait()`: dropping
/// it closes the pipe, and the server's own shutdown summary would then
/// die on EPIPE.
fn spawn_serve(dir: &Path, ckpt_ms: u64) -> (Child, String, BufReader<std::process::ChildStdout>) {
    spawn_serve_args(dir, ckpt_ms, &[])
}

fn spawn_serve_args(
    dir: &Path,
    ckpt_ms: u64,
    extra: &[&str],
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(bin())
        .arg(dir)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--ckpt-ms",
            &ckpt_ms.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .expect("serve prints its address");
    let addr = first
        .trim_end()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {first}"))
        .to_string();
    (child, addr, reader)
}

/// Copies a database directory byte for byte (recovery twins for the
/// fingerprint-identity checks).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read src").flatten() {
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

/// Per-record fill tracking: the last server-acked fill and the fill
/// that was in flight (sent, not yet acked).
#[derive(Default, Clone, Copy)]
struct Tracked {
    acked: Option<u32>,
    in_flight: Option<u32>,
}

#[test]
fn kill_nine_mid_load_recovers_exactly_the_acked_state() {
    let dir = tmpdir("kill9");
    let out = Command::new(bin())
        .arg(&dir)
        .args(["init", "--algorithm", "COUCOPY"])
        .output()
        .expect("init");
    assert!(out.status.success());

    let (mut child, addr, _stdout_keepalive) = spawn_serve(&dir, 1);

    let mut control = Client::connect(&addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let info = control.info().expect("info");
    let words = info.record_words as usize;

    // 4 writer threads, each owning a disjoint 8-record range
    const THREADS: u64 = 4;
    const RANGE: u64 = 8;
    let tracked: Arc<Mutex<HashMap<u64, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let tracked = Arc::clone(&tracked);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        joins.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let _ = c.set_timeout(Some(Duration::from_secs(10)));
            let mut seq: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                seq += 1;
                let rid = t * RANGE + u64::from(seq) % RANGE;
                // unique per (thread, seq): survivors are attributable
                let fill = ((t as u32) << 24) | seq;
                {
                    let mut m = match tracked.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    m.entry(rid).or_default().in_flight = Some(fill);
                }
                match c.retry_transient(1000, |c| c.put(RecordId(rid), &vec![fill; words])) {
                    Ok(_) => {
                        let mut m = match tracked.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let e = m.entry(rid).or_default();
                        e.acked = Some(fill);
                        e.in_flight = None;
                        committed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // server died under us — expected
                }
            }
        }));
    }

    // let the load run until background checkpoints demonstrably overlap
    // it, then pull the plug with no warning
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "server never took 2 checkpoints under load"
        );
        std::thread::sleep(Duration::from_millis(20));
        if committed.load(Ordering::SeqCst) < 100 {
            continue;
        }
        let stats = match control.stats_json() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let snap = mmdb_core::MetricsSnapshot::from_json(&stats).expect("stats parse");
        if snap.counter("ckpt.completed").unwrap_or(0) >= 2 {
            break;
        }
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let tracked = match Arc::try_unwrap(tracked).map(Mutex::into_inner) {
        Ok(Ok(m)) => m,
        _ => panic!("tracking map still shared"),
    };
    assert!(
        committed.load(Ordering::SeqCst) >= 100,
        "not enough acked commits to make the test meaningful"
    );

    // recovery must be clean (torn log tail is expected and tolerated)
    let fsck = Command::new(bin())
        .arg(&dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    let fsck_out =
        String::from_utf8_lossy(&fsck.stdout).into_owned() + &String::from_utf8_lossy(&fsck.stderr);
    assert!(
        fsck.status.success(),
        "fsck failed after kill -9:\n{fsck_out}"
    );
    assert!(fsck_out.contains("fsck: clean"), "{fsck_out}");
    // a clean fsck must not leave a crash dump behind
    assert!(
        !dir.join("flightrec.json").exists(),
        "clean fsck wrote flightrec.json"
    );

    // re-serve the recovered database and audit every tracked record
    // over the wire: last acked fill, or the one in-flight write
    let (mut child2, addr2, _stdout_keepalive2) = spawn_serve(&dir, 0);
    let mut reader = Client::connect(&addr2).expect("connect to recovered server");
    reader
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for (rid, t) in &tracked {
        let value = reader.get(RecordId(*rid)).expect("read recovered record");
        assert!(
            value.iter().all(|w| *w == value[0]),
            "record {rid} recovered torn: {value:?}"
        );
        let got = value[0];
        let mut allowed: Vec<u32> = Vec::new();
        if let Some(a) = t.acked {
            allowed.push(a);
        }
        if let Some(f) = t.in_flight {
            allowed.push(f);
        }
        if t.acked.is_none() {
            // never acked: the initial content may also survive; only
            // the in-flight value or "untouched" are legal, and
            // untouched is whatever init wrote — accept any fill that
            // is NOT a lost ack (no acks existed)
            continue;
        }
        assert!(
            allowed.contains(&got),
            "record {rid}: recovered fill {got:#x}, expected one of {allowed:x?} \
             (acked={:x?}, in-flight={:x?})",
            t.acked,
            t.in_flight
        );
    }
    reader.shutdown().expect("graceful shutdown");
    assert!(child2.wait().expect("serve exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_fsck_after_kill_nine_dumps_the_flight_recorder() {
    // Dump-on-crash, end to end: SIGKILL the server mid-load, then make
    // the post-crash fsck *fail* by corrupting the stale backup copy
    // (the one recovery does not read, so the engine still opens and
    // its recorder has recovery spans to dump). The failing fsck must
    // write `<dir>/flightrec.json`, and the dump must parse as the
    // wire-schema trace document with the recovery phases inside.
    let dir = tmpdir("kill9-flightrec");
    let out = Command::new(bin())
        .arg(&dir)
        .args(["init", "--algorithm", "COUCOPY"])
        .output()
        .expect("init");
    assert!(out.status.success());

    let (mut child, addr, _stdout_keepalive) = spawn_serve(&dir, 1);
    let mut control = Client::connect(&addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let words = control.info().expect("info").record_words as usize;
    // enough traffic that a checkpoint lands between init and the kill
    for seq in 0..200u32 {
        control
            .retry_transient(1000, |c| {
                c.put(RecordId(u64::from(seq) % 8), &vec![seq; words])
            })
            .expect("put");
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();

    // recover once and take a fresh checkpoint: after it, both backup
    // copies are Complete with distinct checkpoint ids (a SIGKILL can
    // leave one copy InProgress, which fsck's checksum scan skips)
    let ckpt = Command::new(bin())
        .arg(&dir)
        .arg("checkpoint")
        .output()
        .expect("checkpoint");
    assert!(
        ckpt.status.success(),
        "post-crash checkpoint failed: {}",
        String::from_utf8_lossy(&ckpt.stderr)
    );

    // find the stale copy: recovery loads the newest complete backup,
    // so corrupting the *older* one leaves the engine able to open
    let config = mmdb_core::MmdbConfig::small(mmdb_types::Algorithm::CouCopy);
    let stale: usize = {
        use mmdb_disk::BackupStore;
        let mut backup = mmdb_disk::FileBackup::open(&dir.join("backup"), config.params.db, false)
            .expect("backup");
        let c0 = backup
            .copy_status(0)
            .expect("copy 0 status")
            .complete_ckpt();
        let c1 = backup
            .copy_status(1)
            .expect("copy 1 status")
            .complete_ckpt();
        match (c0, c1) {
            (Some(a), Some(b)) => usize::from(a.raw() > b.raw()),
            (Some(_), None) => 1,
            _ => 0,
        }
    };
    let stale_path = dir.join(format!("backup.{stale}"));
    let mut bytes = std::fs::read(&stale_path).expect("read stale copy");
    assert!(bytes.len() > 4096, "backup copy implausibly small");
    // flip bytes across the middle of the file so at least one segment
    // checksum breaks regardless of layout details
    let mid = bytes.len() / 2;
    for off in (mid..bytes.len().min(mid + 4096)).step_by(64) {
        bytes[off] ^= 0xFF;
    }
    std::fs::write(&stale_path, &bytes).expect("write corrupted copy");

    let fsck = Command::new(bin())
        .arg(&dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    let fsck_out =
        String::from_utf8_lossy(&fsck.stdout).into_owned() + &String::from_utf8_lossy(&fsck.stderr);
    assert!(
        !fsck.status.success(),
        "fsck must fail on a corrupted backup copy:\n{fsck_out}"
    );
    assert!(fsck_out.contains("CORRUPT"), "{fsck_out}");
    assert!(fsck_out.contains("flight recorder dumped to"), "{fsck_out}");

    let dump = std::fs::read_to_string(dir.join("flightrec.json")).expect("flightrec.json");
    let doc = mmdb_core::TraceDumpDoc::from_json(&dump).expect("dump parses");
    assert!(doc.recorded > 0, "empty flight recorder dumped");
    let names: Vec<&str> = doc.recent.iter().map(|s| s.name.as_str()).collect();
    assert!(
        names.contains(&"recovery.backup_load"),
        "recovery spans missing from the crash dump: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_nine_mid_compaction_discards_torn_rewrites_and_recovers_clean() {
    // The log-maintenance path under fire: tiny chunks and an
    // aggressive background compactor (`--compact-ms 1` rotates the
    // active chunk and rewrites cold ones, compressed, every pass)
    // racing writers that hammer an 8-record hot set — maximal
    // supersession, so nearly every pass has frames to drop. SIGKILL
    // lands with rotation and chunk rewrites in flight; the rewrite
    // protocol (write `.tmp`, sync, rename) must leave every chunk as
    // either its old or its new image. We then plant a torn `.tmp`
    // over a real cold chunk — exactly what an interrupted rewrite
    // leaves — and recovery must discard it, never adopt it.
    let dir = tmpdir("kill9-compact");
    let out = Command::new(bin())
        .arg(&dir)
        .args(["init", "--algorithm", "COUCOPY"])
        .output()
        .expect("init");
    assert!(out.status.success());
    // shrink the chunks so the load seals many and the compactor always
    // has cold work, and compress cold storage to exercise the full
    // `.log → .logz` rewrite path
    let conf_path = dir.join("mmdb.conf");
    let conf = std::fs::read_to_string(&conf_path).expect("mmdb.conf");
    let conf = conf
        .lines()
        .map(|l| match l {
            l if l.starts_with("log_chunk_bytes=") => "log_chunk_bytes=8192",
            l if l.starts_with("compress_log=") => "compress_log=true",
            l => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    std::fs::write(&conf_path, conf).expect("rewrite mmdb.conf");

    let (mut child, addr, _stdout_keepalive) = spawn_serve_args(&dir, 25, &["--compact-ms", "1"]);

    let mut control = Client::connect(&addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let words = control.info().expect("info").record_words as usize;

    const THREADS: u64 = 4;
    const RANGE: u64 = 8;
    let tracked: Arc<Mutex<HashMap<u64, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let tracked = Arc::clone(&tracked);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        joins.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let _ = c.set_timeout(Some(Duration::from_secs(10)));
            let mut seq: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                seq += 1;
                let rid = t * RANGE + u64::from(seq) % RANGE;
                let fill = ((t as u32) << 24) | seq;
                {
                    let mut m = match tracked.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    m.entry(rid).or_default().in_flight = Some(fill);
                }
                match c.retry_transient(1000, |c| c.put(RecordId(rid), &vec![fill; words])) {
                    Ok(_) => {
                        let mut m = match tracked.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let e = m.entry(rid).or_default();
                        e.acked = Some(fill);
                        e.in_flight = None;
                        committed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // server died under us — expected
                }
            }
        }));
    }

    // run until checkpoints and chunk rewrites have demonstrably
    // happened under the load, then pull the plug with a maintenance
    // pass at most 1ms away
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "compactor never rewrote chunks under load"
        );
        std::thread::sleep(Duration::from_millis(20));
        if committed.load(Ordering::SeqCst) < 100 {
            continue;
        }
        let stats = match control.stats_json() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let snap = mmdb_core::MetricsSnapshot::from_json(&stats).expect("stats parse");
        if snap.counter("ckpt.completed").unwrap_or(0) >= 2
            && snap.counter("compact.chunks_rewritten").unwrap_or(0) >= 3
        {
            break;
        }
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let tracked = match Arc::try_unwrap(tracked).map(Mutex::into_inner) {
        Ok(Ok(m)) => m,
        _ => panic!("tracking map still shared"),
    };
    assert!(
        committed.load(Ordering::SeqCst) >= 100,
        "not enough acked commits to make the test meaningful"
    );

    // plant the torn rewrite: a `.tmp` twin of a real chunk, full of
    // garbage — the state an interrupted rename-in-flight leaves behind
    let log_dir = dir.join("log");
    let chunk_stem = std::fs::read_dir(&log_dir)
        .expect("read log dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let stem = name
                .strip_suffix(".logz")
                .or_else(|| name.strip_suffix(".log"))?;
            stem.parse::<u64>().ok().map(|_| stem.to_string())
        })
        .min()
        .expect("at least one chunk file");
    let torn = log_dir.join(format!("{chunk_stem}.tmp"));
    std::fs::write(&torn, b"half a rewrite, then the power went").expect("plant torn tmp");

    // recovery must be clean, and the torn tmp discarded — not adopted
    let fsck = Command::new(bin())
        .arg(&dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    let fsck_out =
        String::from_utf8_lossy(&fsck.stdout).into_owned() + &String::from_utf8_lossy(&fsck.stderr);
    assert!(
        fsck.status.success(),
        "fsck failed after kill -9 mid-compaction:\n{fsck_out}"
    );
    assert!(fsck_out.contains("fsck: clean"), "{fsck_out}");
    assert!(!torn.exists(), "torn .tmp rewrite survived recovery");

    // re-serve the recovered database and audit every tracked record:
    // last acked fill or the one in-flight write, never anything else
    let (mut child2, addr2, _stdout_keepalive2) = spawn_serve(&dir, 0);
    let mut reader = Client::connect(&addr2).expect("connect to recovered server");
    reader
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for (rid, t) in &tracked {
        let value = reader.get(RecordId(*rid)).expect("read recovered record");
        assert!(
            value.iter().all(|w| *w == value[0]),
            "record {rid} recovered torn: {value:?}"
        );
        let got = value[0];
        let mut allowed: Vec<u32> = Vec::new();
        if let Some(a) = t.acked {
            allowed.push(a);
        }
        if let Some(f) = t.in_flight {
            allowed.push(f);
        }
        if t.acked.is_none() {
            continue;
        }
        assert!(
            allowed.contains(&got),
            "record {rid}: recovered fill {got:#x}, expected one of {allowed:x?} — \
             compaction dropped a frame recovery still needed (acked={:x?}, in-flight={:x?})",
            t.acked,
            t.in_flight
        );
    }
    // no maintenance garbage left anywhere in the log directory
    let stray: Vec<String> = std::fs::read_dir(&log_dir)
        .expect("read log dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        stray.is_empty(),
        "stray rewrite temps after recovery: {stray:?}"
    );
    reader.shutdown().expect("graceful shutdown");
    assert!(child2.wait().expect("serve exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_nine_mid_group_commit_load_loses_no_acked_commit() {
    // The group-commit ack-durability invariant: under
    // `CommitDurability::Group` the server acks a commit only once a
    // batched force covers its LSN, so a SIGKILL mid-load must lose
    // nothing that was ever acked — the same contract as per-commit
    // forcing, checked end-to-end through the batched path (append,
    // release the shard, flusher forces, watermark wakes the acker).
    let dir = tmpdir("kill9-group");
    let out = Command::new(bin())
        .arg(&dir)
        .args(["init", "--algorithm", "COUCOPY", "--durability", "group"])
        .output()
        .expect("init --durability group");
    assert!(
        out.status.success(),
        "init failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let conf = std::fs::read_to_string(dir.join("mmdb.conf")).expect("mmdb.conf");
    assert!(conf.contains("commit_durability=group"), "{conf}");

    let (mut child, addr, _stdout_keepalive) = spawn_serve(&dir, 1);

    let mut control = Client::connect(&addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let info = control.info().expect("info");
    let words = info.record_words as usize;

    // 8 writer threads (the batching only shows with concurrent
    // committers in flight), each owning a disjoint 8-record range
    const THREADS: u64 = 8;
    const RANGE: u64 = 8;
    let tracked: Arc<Mutex<HashMap<u64, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let tracked = Arc::clone(&tracked);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        joins.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let _ = c.set_timeout(Some(Duration::from_secs(10)));
            let mut seq: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                seq += 1;
                let rid = t * RANGE + u64::from(seq) % RANGE;
                let fill = ((t as u32) << 24) | seq;
                {
                    let mut m = match tracked.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    m.entry(rid).or_default().in_flight = Some(fill);
                }
                match c.retry_transient(1000, |c| c.put(RecordId(rid), &vec![fill; words])) {
                    Ok(_) => {
                        let mut m = match tracked.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let e = m.entry(rid).or_default();
                        e.acked = Some(fill);
                        e.in_flight = None;
                        committed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // server died under us — expected
                }
            }
        }));
    }

    // run until checkpoints demonstrably overlap the batched commits,
    // then SIGKILL with acks and unforced appends both in flight
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "server never took 2 checkpoints under group-commit load"
        );
        std::thread::sleep(Duration::from_millis(20));
        if committed.load(Ordering::SeqCst) < 100 {
            continue;
        }
        let stats = match control.stats_json() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let snap = mmdb_core::MetricsSnapshot::from_json(&stats).expect("stats parse");
        if snap.counter("ckpt.completed").unwrap_or(0) >= 2
            && snap.counter("log.group_commit.forces").unwrap_or(0) >= 1
        {
            break;
        }
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let tracked = match Arc::try_unwrap(tracked).map(Mutex::into_inner) {
        Ok(Ok(m)) => m,
        _ => panic!("tracking map still shared"),
    };
    assert!(
        committed.load(Ordering::SeqCst) >= 100,
        "not enough acked commits to make the test meaningful"
    );

    let fsck = Command::new(bin())
        .arg(&dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    let fsck_out =
        String::from_utf8_lossy(&fsck.stdout).into_owned() + &String::from_utf8_lossy(&fsck.stderr);
    assert!(
        fsck.status.success(),
        "fsck failed after kill -9 under group commit:\n{fsck_out}"
    );
    assert!(fsck_out.contains("fsck: clean"), "{fsck_out}");

    // every acked commit must have survived: last acked fill or the one
    // in-flight (acked-but-newer-write-pending never exists per record
    // because each put is acked before the next begins on that thread)
    let (mut child2, addr2, _stdout_keepalive2) = spawn_serve(&dir, 0);
    let mut reader = Client::connect(&addr2).expect("connect to recovered server");
    reader
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for (rid, t) in &tracked {
        let value = reader.get(RecordId(*rid)).expect("read recovered record");
        assert!(
            value.iter().all(|w| *w == value[0]),
            "record {rid} recovered torn: {value:?}"
        );
        let got = value[0];
        let mut allowed: Vec<u32> = Vec::new();
        if let Some(a) = t.acked {
            allowed.push(a);
        }
        if let Some(f) = t.in_flight {
            allowed.push(f);
        }
        if t.acked.is_none() {
            continue;
        }
        assert!(
            allowed.contains(&got),
            "record {rid}: recovered fill {got:#x}, expected one of {allowed:x?} — \
             an ACKED group commit was lost (acked={:x?}, in-flight={:x?})",
            t.acked,
            t.in_flight
        );
    }
    reader.shutdown().expect("graceful shutdown");
    assert!(child2.wait().expect("serve exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_nine_mid_cross_shard_transfers_leaves_no_torn_transfer() {
    // The sharded analogue: a 4-shard server takes "transfer"
    // transactions — one Batch writing the same unique fill to 4
    // records, one per shard (consecutive rids land on consecutive
    // shards under rid % 4 routing) — and gets SIGKILLed mid-load.
    // After recovery every transfer group must be atomically uniform:
    // all 4 branches hold the same fill (all-present) or none do
    // (all-absent / an older transfer's fill). A mixture would mean a
    // torn cross-shard commit escaped the two-phase protocol.
    let dir = tmpdir("kill9-sharded");
    let out = Command::new(bin())
        .arg(&dir)
        .args(["init", "--algorithm", "COUCOPY", "--shards", "4"])
        .output()
        .expect("init --shards 4");
    assert!(
        out.status.success(),
        "init failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("shards").exists(), "topology marker written");
    assert!(dir.join("shard.3").is_dir(), "per-shard engine dirs");

    let (mut child, addr, _stdout_keepalive) = spawn_serve(&dir, 1);

    let mut control = Client::connect(&addr).expect("control connect");
    control
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let info = control.info().expect("info");
    let words = info.record_words as usize;
    const SHARDS: u64 = 4;
    const THREADS: u64 = 4;
    let groups_per_thread = info.n_records / SHARDS / THREADS;
    assert!(groups_per_thread >= 8, "record space too small for groups");

    // group g owns records [4g, 4g+4): a disjoint record set per
    // transfer group, so recovered fills are attributable to exactly
    // one group's write history
    let tracked: Arc<Mutex<HashMap<u64, Tracked>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let tracked = Arc::clone(&tracked);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        joins.push(std::thread::spawn(move || {
            let mut c = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            let _ = c.set_timeout(Some(Duration::from_secs(10)));
            let mut seq: u32 = 0;
            while !stop.load(Ordering::SeqCst) {
                seq += 1;
                let group = t * groups_per_thread + u64::from(seq) % groups_per_thread;
                let fill = ((t as u32) << 24) | seq; // unique per (thread, seq)
                let base = group * SHARDS;
                let updates: Vec<(RecordId, Vec<u32>)> = (0..SHARDS)
                    .map(|k| (RecordId(base + k), vec![fill; words]))
                    .collect();
                {
                    let mut m = match tracked.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    m.entry(group).or_default().in_flight = Some(fill);
                }
                match c.retry_transient(1000, |c| c.batch(&updates)) {
                    Ok(_) => {
                        let mut m = match tracked.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        let e = m.entry(group).or_default();
                        e.acked = Some(fill);
                        e.in_flight = None;
                        committed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => return, // server died under us — expected
                }
            }
        }));
    }

    // run until checkpoints demonstrably interleave on the shards (the
    // merged `ckpt.completed` counter sums all four checkpointers),
    // then SIGKILL with cross-shard transfers in flight
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            Instant::now() < deadline,
            "server never took 8 shard checkpoints under load"
        );
        std::thread::sleep(Duration::from_millis(20));
        if committed.load(Ordering::SeqCst) < 100 {
            continue;
        }
        let stats = match control.stats_json() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let snap = mmdb_core::MetricsSnapshot::from_json(&stats).expect("stats parse");
        if snap.counter("ckpt.completed").unwrap_or(0) >= 8 {
            break;
        }
    }
    child.kill().expect("SIGKILL serve");
    let _ = child.wait();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let tracked = match Arc::try_unwrap(tracked).map(Mutex::into_inner) {
        Ok(Ok(m)) => m,
        _ => panic!("tracking map still shared"),
    };
    assert!(
        committed.load(Ordering::SeqCst) >= 100,
        "not enough acked transfers to make the test meaningful"
    );

    // coordinated recovery must be clean on every shard
    let fsck = Command::new(bin())
        .arg(&dir)
        .arg("fsck")
        .output()
        .expect("fsck");
    let fsck_out =
        String::from_utf8_lossy(&fsck.stdout).into_owned() + &String::from_utf8_lossy(&fsck.stderr);
    assert!(
        fsck.status.success(),
        "fsck failed after kill -9 on the sharded topology:\n{fsck_out}"
    );
    assert!(fsck_out.contains("fsck: clean"), "{fsck_out}");
    assert!(fsck_out.contains("topology: 4 shards"), "{fsck_out}");

    // fingerprint identity on the real crash state: the same sharded
    // directory — in-doubt cross-shard branches and all — recovered
    // with 2 and 8 workers per shard must match the serially-recovered
    // original bit for bit (the in-doubt resolver sees the identical
    // branch set either way)
    for workers in ["2", "8"] {
        let par = tmpdir(&format!("kill9-sharded-{workers}w"));
        copy_dir(&dir, &par);
        let cmp = Command::new(bin())
            .arg(&par)
            .args([
                "fsck",
                "--recovery-workers",
                workers,
                "--compare",
                &dir.to_string_lossy(),
            ])
            .output()
            .expect("fsck --compare");
        let cmp_out = String::from_utf8_lossy(&cmp.stdout).into_owned()
            + &String::from_utf8_lossy(&cmp.stderr);
        assert!(
            cmp.status.success() && cmp_out.contains("compare: fingerprints match"),
            "{workers}-worker recovery diverged from serial on the sharded crash state:\n{cmp_out}"
        );
        let _ = std::fs::remove_dir_all(&par);
    }

    // re-serve (parallel shard recovery + in-doubt resolution happens
    // here) and audit every transfer group over the wire
    let (mut child2, addr2, _stdout_keepalive2) = spawn_serve(&dir, 0);
    let mut reader = Client::connect(&addr2).expect("connect to recovered server");
    reader
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut audited = 0u64;
    for (group, t) in &tracked {
        let base = group * SHARDS;
        let mut fills = Vec::with_capacity(SHARDS as usize);
        for k in 0..SHARDS {
            let value = reader.get(RecordId(base + k)).expect("read recovered");
            assert!(
                value.iter().all(|w| *w == value[0]),
                "record {} recovered torn within itself: {value:?}",
                base + k
            );
            fills.push(value[0]);
        }
        // the atomicity claim: all four branches agree
        assert!(
            fills.iter().all(|f| *f == fills[0]),
            "transfer group {group} recovered TORN across shards: {fills:x?} \
             (acked={:x?}, in-flight={:x?})",
            t.acked,
            t.in_flight
        );
        let got = fills[0];
        let mut allowed: Vec<u32> = Vec::new();
        if let Some(a) = t.acked {
            allowed.push(a);
        }
        if let Some(f) = t.in_flight {
            allowed.push(f);
        }
        if t.acked.is_none() {
            // never acked: initial zeroes or the lone in-flight value
            allowed.push(0);
        }
        assert!(
            allowed.contains(&got),
            "transfer group {group}: recovered fill {got:#x}, expected one of {allowed:x?}",
        );
        audited += 1;
    }
    assert!(audited > 0, "no transfer groups tracked");
    reader.shutdown().expect("graceful shutdown");
    assert!(child2.wait().expect("serve exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}
