//! `mmdb-cli` — operate a file-backed mmdb database from the shell.
//!
//! ```text
//! mmdb-cli <dir> init [--algorithm FUZZYCOPY|2CFLUSH|2CCOPY|COUFLUSH|COUCOPY|FASTFUZZY]
//!                     [--segments N] [--segment-words N] [--record-words N] [--full]
//!                     [--shards N] [--durability force|lazy|group]
//!                     [--recovery-workers N] [--compress-backups] [--compress-log]
//! mmdb-cli <dir> put <record> <fill-u32>
//! mmdb-cli <dir> get <record>
//! mmdb-cli <dir> workload <n-txns> [--seed S] [--updates K]
//! mmdb-cli <dir> checkpoint
//! mmdb-cli <dir> compact [--compress]       # rotate + compact cold log chunks
//! mmdb-cli <dir> stats [--json|--prom] [--remote ADDR]
//! mmdb-cli <dir> trace [--txns N] [--seed S] [--updates K] [--limit N] [--slow-us U]
//!                      [--json] [--remote ADDR]            # dump a live server's traces
//! mmdb-cli <dir> audit [--txns N] [--seed S] [--updates K]
//! mmdb-cli <dir> lint                       # dir is the source root
//! mmdb-cli <dir> fsck [--compare <dir-or-addr>] [--recovery-workers N]  # cross-check fingerprints
//! mmdb-cli <dir> dump <archive-file>
//! mmdb-cli <dir> restore <archive-file>     # dir must be fresh
//! mmdb-cli <dir> serve [--addr A] [--workers N] [--ckpt-ms D] [--idle-ms D] [--shards N]
//!                      [--slow-us U]                          # slow-request trace threshold
//!                      [--compact-ms D] [--recovery-workers N]  # log maintenance + parallel replay
//!                      [--replica-of ADDR] [--repl-primary] [--repl-sync]  # replication role (persisted)
//! mmdb-cli <dir> promote [--addr A]         # replica -> writable primary
//! mmdb-cli <dir> bench-net [--connections N] [--txns N] [--updates K] [--seed S]
//!                          [--zipf THETA] [--rate TPS] [--addr A] [--out FILE]
//!                          [--shards N] [--cross F] [--sweep]
//!                          [--log-latency-us U] [--group-compare]
//!                          [--intra-sweep] [--duration-ms D] [--write-every K]
//! mmdb-cli <dir> bench-repl [--writers N] [--txns N] [--shards N] [--out FILE]
//! mmdb-cli <dir> bench-recovery [--updates K] [--seed S] [--out FILE]
//! ```
//!
//! Every invocation opens the database (recovering from the on-disk
//! backups and log if needed), performs the command, and exits. Commits
//! force the log (or, under `--durability group`, are acked only once a
//! batched force covers them), so anything a command reports as
//! committed survives the next invocation.
//!
//! A database created with `init --shards N` (N > 1) is hash-partitioned
//! across N independent engines (`<dir>/shard.<i>/`, topology pinned by
//! the `<dir>/shards` marker); `serve`, `bench-net` and `fsck` detect
//! the marker and operate on the whole topology. `bench-net --sweep`
//! runs the shard-scaling benchmark over fresh scratch topologies at
//! 1, 2, 4 and 8 shards and emits schema-validated `BENCH_shard.json`;
//! `bench-net --group-compare` benchmarks group commit against
//! per-commit forcing on fresh single-shard topologies with a real
//! (fsynced, unmodeled) log device and emits schema-validated
//! `BENCH_group.json`; `bench-net --intra-sweep` benchmarks the
//! within-shard concurrency design (lock-free seqlock reads vs the
//! forced-locked baseline, 1→8 worker threads against one shard,
//! in-process) and emits schema-validated `BENCH_intra.json`.
//!
//! Replication: `serve --replica-of ADDR` runs the directory as a
//! read-only hot standby of the primary at `ADDR` (same `init` shape
//! and shard count on both sides); the role is persisted in `mmdb.conf`
//! so a bare `serve` resumes it. `serve --repl-primary` declares a
//! primary up front, pinning log truncation from startup so a standby
//! seeded from an identical `init` (or a directory copy) attaches
//! without a bootstrap gap. `serve --repl-sync` additionally makes the
//! primary hold each commit until a standby acknowledges it. `promote` flips a
//! standby writable (via `--addr` for a live server, offline
//! otherwise), `fsck --compare` cross-checks storage fingerprints
//! between two databases, and `bench-repl` measures steady-state
//! replication lag plus failover time and emits schema-validated
//! `BENCH_repl.json`.

mod persist;

use mmdb_core::{Algorithm, CommitDurability, LogMode, Mmdb, MmdbConfig, RecordId};
use mmdb_lint::check_workspace;
use mmdb_log::{LogDevice, LogScanner, SegmentedLogDevice};
use mmdb_repl::{bench_repl_json, validate_bench_repl_json, ReplBenchReport};
use mmdb_server::{
    bench_group_json, bench_intra_json, bench_net_json, bench_shard_json, run_intra_sweep,
    run_load, validate_bench_group_json, validate_bench_intra_json, validate_bench_net_json,
    validate_bench_shard_json, GroupCompareEntry, IntraSweepConfig, LoadConfig, ReplOptions,
    Server, ServerConfig, ShardSweepEntry, WorkloadKind,
};
use mmdb_shard::{shard_config, ShardedMmdb};
use mmdb_wire::Client;
use mmdb_workload::{UniformWorkload, Workload};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mmdb-cli: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, cmd, rest) = match args.split_first() {
        Some((dir, rest)) => match rest.split_first() {
            Some((cmd, rest)) => (PathBuf::from(dir), cmd.clone(), rest.to_vec()),
            None => return Err(usage()),
        },
        None => return Err(usage()),
    };
    match COMMANDS.iter().find(|(name, _, _)| *name == cmd.as_str()) {
        Some((_, _, handler)) => handler(&dir, &rest),
        None => Err(format!("unknown command {cmd:?}\n{}", usage())),
    }
}

type Handler = fn(&Path, &[String]) -> Result<(), String>;

/// The single source of truth for dispatch *and* the usage text: every
/// subcommand is one `(name, one-line help, handler)` row here, so the
/// help can never drift out of sync with what actually runs.
const COMMANDS: &[(&str, &str, Handler)] = &[
    (
        "init",
        "create a database (--algorithm A, --segments N, --segment-words N, --record-words N, --full, --shards N, --durability force|lazy|group, --recovery-workers N, --compress-backups, --compress-log)",
        cmd_init,
    ),
    ("put", "<record> <fill-u32> — commit one update", cmd_put),
    ("get", "<record> — read a committed record", cmd_get),
    (
        "workload",
        "<n-txns> — run a seeded uniform workload (--seed S, --updates K)",
        cmd_workload,
    ),
    ("checkpoint", "take a checkpoint now", cmd_checkpoint),
    (
        "compact",
        "rotate the active log chunk and compact cold ones — superseded committed frames become filler (--compress stores cold chunks LZ-compressed)",
        cmd_compact,
    ),
    (
        "stats",
        "print statistics; --json / --prom export the unified metrics snapshot, --remote ADDR fetches a live server's",
        cmd_stats,
    ),
    (
        "trace",
        "print request span trees — local instrumented workload, or a live server's flight recorder (--txns N, --seed S, --updates K, --limit N, --slow-us U, --json, --remote ADDR)",
        cmd_trace,
    ),
    (
        "audit",
        "run a protocol-audited stress pass (--txns N, --seed S, --updates K)",
        cmd_audit,
    ),
    (
        "lint",
        "run the concurrency-discipline source lint over the tree rooted at <dir>",
        cmd_lint,
    ),
    (
        "fsck",
        "verify backup checksums, the log window, and dry-run recovery (--compare <dir-or-addr> cross-checks fingerprints, --recovery-workers N recovers in parallel)",
        cmd_fsck,
    ),
    ("dump", "<archive-file> — write a cold archive", cmd_dump),
    (
        "restore",
        "<archive-file> — restore an archive into a fresh directory (--algorithm A)",
        cmd_restore,
    ),
    (
        "serve",
        "serve the database over TCP (--addr A, --workers N, --ckpt-ms D, --idle-ms D, --shards N, --slow-us U, --compact-ms D, --recovery-workers N, --replica-of ADDR, --repl-primary, --repl-sync)",
        cmd_serve,
    ),
    (
        "promote",
        "promote a replica to writable primary (--addr A for a live server, offline config flip otherwise)",
        cmd_promote,
    ),
    (
        "bench-net",
        "network benchmark, closed-loop or open-loop (--connections N, --txns N, --updates K, --seed S, --zipf THETA, --rate TPS, --addr A, --out FILE, --shards N, --cross F, --sweep, --log-latency-us U, --group-compare, --intra-sweep)",
        cmd_bench_net,
    ),
    (
        "bench-repl",
        "replication benchmark: primary + live standby, steady-state lag and failover time (--writers N, --txns N, --shards N, --out FILE)",
        cmd_bench_repl,
    ),
    (
        "bench-recovery",
        "recovery-at-scale benchmark: serial vs parallel replay across database and log sizes, compressed cold storage, and the bounded-replay-window demo (--updates K, --seed S, --out FILE)",
        cmd_bench_recovery,
    ),
];

fn usage() -> String {
    let mut out = String::from("usage: mmdb-cli <dir> <command> [args]\ncommands:\n");
    for (name, help, _) in COMMANDS {
        out.push_str(&format!("  {name:<11} {help}\n"));
    }
    out.push_str("run `mmdb-cli <dir> init` first to create a database");
    out
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn open(dir: &Path) -> Result<Mmdb, String> {
    open_with(persist::load(dir)?, dir)
}

fn open_with(config: MmdbConfig, dir: &Path) -> Result<Mmdb, String> {
    let (db, recovered) = Mmdb::open_dir(config, dir).map_err(|e| e.to_string())?;
    if let Some(r) = recovered {
        eprintln!(
            "(recovered from checkpoint {}: {} segments, {} log words, {} txns replayed)",
            r.ckpt.raw(),
            r.segments_loaded,
            r.log_words,
            r.txns_replayed
        );
    }
    Ok(db)
}

/// Reads the sharded-topology marker (`<dir>/shards`) if present.
/// `None` means an unsharded (plain engine) directory.
fn marker_shards(dir: &Path) -> Result<Option<usize>, String> {
    match std::fs::read_to_string(dir.join("shards")) {
        Ok(text) => {
            let n = text
                .trim()
                .strip_prefix("shards=")
                .ok_or_else(|| format!("malformed topology marker in {}", dir.display()))?
                .parse::<usize>()
                .map_err(|e| format!("topology marker: {e}"))?;
            Ok(Some(n))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("reading topology marker: {e}")),
    }
}

/// Opens a sharded database, reporting recovery the way `open_with`
/// does for a single engine.
fn open_sharded(config: MmdbConfig, dir: &Path, shards: usize) -> Result<ShardedMmdb, String> {
    let (db, recovery) = ShardedMmdb::open_dir(config, dir, shards).map_err(|e| e.to_string())?;
    let recovered: Vec<&mmdb_core::RecoveryReport> = recovery.shards.iter().flatten().collect();
    if !recovered.is_empty() {
        eprintln!(
            "(recovered {} shard(s) in parallel: {} segments, {} log words, {} txns replayed; \
             in-doubt cross-shard branches: {} committed, {} aborted)",
            recovered.len(),
            recovered.iter().map(|r| r.segments_loaded).sum::<u64>(),
            recovered.iter().map(|r| r.log_words).sum::<u64>(),
            recovered.iter().map(|r| r.txns_replayed).sum::<u64>(),
            recovery.in_doubt_committed,
            recovery.in_doubt_aborted
        );
    }
    Ok(db)
}

fn cmd_init(dir: &Path, rest: &[String]) -> Result<(), String> {
    if dir.join(persist::CONFIG_FILE).exists() {
        return Err(format!("{} already contains a database", dir.display()));
    }
    let algorithm: Algorithm = flag_value(rest, "--algorithm")
        .unwrap_or_else(|| "COUCOPY".into())
        .parse()?;
    let mut config = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        config.params.log_mode = LogMode::StableTail;
    }
    if let Some(v) = flag_value(rest, "--segment-words") {
        config.params.db.s_seg = v.parse().map_err(|e| format!("--segment-words: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--record-words") {
        config.params.db.s_rec = v.parse().map_err(|e| format!("--record-words: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--segments") {
        let n: u64 = v.parse().map_err(|e| format!("--segments: {e}"))?;
        config.params.db.s_db = n * config.params.db.s_seg;
    }
    if rest.iter().any(|a| a == "--full") {
        config.params.ckpt_mode = mmdb_core::CkptMode::Full;
    }
    if let Some(v) = flag_value(rest, "--durability") {
        config.commit_durability = match v.as_str() {
            "force" => CommitDurability::Force,
            "lazy" => CommitDurability::Lazy,
            "group" => CommitDurability::Group,
            other => {
                return Err(format!(
                    "--durability: expected force|lazy|group, got {other}"
                ))
            }
        };
    }
    if let Some(v) = flag_value(rest, "--recovery-workers") {
        config.recovery_workers = v.parse().map_err(|e| format!("--recovery-workers: {e}"))?;
    }
    if rest.iter().any(|a| a == "--compress-backups") {
        config.compress_backups = true;
    }
    if rest.iter().any(|a| a == "--compress-log") {
        config.compress_log_chunks = true;
    }
    let shards: usize = flag_value(rest, "--shards")
        .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .unwrap_or(1);
    config.validate()?;
    persist::save(&config, dir).map_err(|e| e.to_string())?;

    if shards > 1 {
        // sharded topology: per-shard engine directories plus the
        // topology marker, each shard seeded with two checkpoints
        let db = open_sharded(config, dir, shards)?;
        db.checkpoint_all().map_err(|e| e.to_string())?;
        db.checkpoint_all().map_err(|e| e.to_string())?;
        println!(
            "initialized {}: {} records × {} words across {} shards, algorithm {}",
            dir.display(),
            db.n_records(),
            db.record_words(),
            db.shards(),
            algorithm
        );
        return Ok(());
    }

    // create the device files and take the seeding checkpoints so the
    // database is recoverable from its very first moment
    let (mut db, _) = Mmdb::open_dir(config, dir).map_err(|e| e.to_string())?;
    db.checkpoint().map_err(|e| e.to_string())?;
    db.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "initialized {}: {} records × {} words, {} segments, algorithm {}",
        dir.display(),
        db.n_records(),
        db.record_words(),
        db.n_segments(),
        algorithm
    );
    Ok(())
}

/// Opens a directory routed through its topology: sharded directories
/// (the `<dir>/shards` marker) come up as the full shard set, plain
/// ones as a 1-shard wrapper. Offline `put`/`get` go through this so
/// they hit the same files `serve` and `fsck` use — a plain-engine
/// open of a sharded directory would silently address a stray layout
/// at the directory root.
fn open_routed(dir: &Path) -> Result<ShardedMmdb, String> {
    let config = persist::load(dir)?;
    match marker_shards(dir)? {
        Some(n) => open_sharded(config, dir, n),
        None => Ok(ShardedMmdb::from_single(open_with(config, dir)?)),
    }
}

fn cmd_put(dir: &Path, rest: &[String]) -> Result<(), String> {
    let record: u64 = rest
        .first()
        .ok_or("put needs <record> <fill>")?
        .parse()
        .map_err(|e| format!("record: {e}"))?;
    let fill: u32 = rest
        .get(1)
        .ok_or("put needs <record> <fill>")?
        .parse()
        .map_err(|e| format!("fill: {e}"))?;
    let db = open_routed(dir)?;
    let value = vec![fill; db.record_words()];
    let run = db
        .run_txn(&[(RecordId(record), value)])
        .map_err(|e| e.to_string())?;
    // Direct engine use: under group durability nobody waits on the
    // watermark here, so force before exit to keep the CLI contract
    // that anything reported committed survives the next invocation.
    for i in 0..db.shards() {
        db.with_shard(i, |e| e.force_log())
            .map_err(|e| e.to_string())?;
    }
    println!(
        "committed record {record} = {fill} (txn {}, {} run(s))",
        run.txn.raw(),
        run.runs
    );
    Ok(())
}

fn cmd_get(dir: &Path, rest: &[String]) -> Result<(), String> {
    let record: u64 = rest
        .first()
        .ok_or("get needs <record>")?
        .parse()
        .map_err(|e| format!("record: {e}"))?;
    let db = open_routed(dir)?;
    let value = db
        .read_committed(RecordId(record))
        .map_err(|e| e.to_string())?;
    let uniform = value.iter().all(|w| *w == value[0]);
    if uniform {
        println!("record {record} = {} (×{} words)", value[0], value.len());
    } else {
        println!("record {record} = {value:?}");
    }
    Ok(())
}

fn cmd_workload(dir: &Path, rest: &[String]) -> Result<(), String> {
    let n: u64 = rest
        .first()
        .ok_or("workload needs <n-txns>")?
        .parse()
        .map_err(|e| format!("n-txns: {e}"))?;
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let updates: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(5);

    let mut db = open(dir)?;
    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), updates, seed);
    let start = std::time::Instant::now();
    let mut reruns = 0u64;
    for _ in 0..n {
        let spec = wl.next_txn();
        let run = db
            .run_txn(&spec.materialize(words))
            .map_err(|e| e.to_string())?;
        reruns += (run.runs - 1) as u64;
    }
    // As in `put`: a direct engine never waits on the watermark, so
    // drain the tail before reporting the workload as committed.
    db.force_log().map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    println!(
        "committed {n} transactions ({updates} updates each) in {:.3}s ({:.0} txn/s), {reruns} reruns",
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_checkpoint(dir: &Path, _rest: &[String]) -> Result<(), String> {
    let mut db = open(dir)?;
    let report = db.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "checkpoint {} -> copy {}: {} segments flushed, {} skipped, {} from COU old copies",
        report.ckpt.raw(),
        report.copy,
        report.segments_flushed,
        report.segments_skipped,
        report.old_copies_flushed
    );
    Ok(())
}

/// Offline log maintenance: seal each shard's active chunk, then
/// rewrite cold chunks with superseded committed frames (and durably
/// aborted ones) turned into length-preserving filler. Every LSN
/// survives, so replication and recovery are oblivious; a lagging
/// standby's truncation pin stalls the rewrite rather than losing
/// bytes. `--compress` additionally stores the rewritten cold chunks
/// LZ-compressed on disk for this pass (the persisted `compress_log`
/// knob from `init` does the same continuously).
fn cmd_compact(dir: &Path, rest: &[String]) -> Result<(), String> {
    let mut config = persist::load(dir)?;
    if rest.iter().any(|a| a == "--compress") {
        config.compress_log_chunks = true;
    }
    let db = match marker_shards(dir)? {
        Some(n) => open_sharded(config, dir, n)?,
        None => ShardedMmdb::from_single(open_with(config, dir)?),
    };
    let rotated = db.rotate_logs().map_err(|e| e.to_string())?;
    let reports = db.compact_logs().map_err(|e| e.to_string())?;
    let sum = |f: fn(&mmdb_core::CompactReport) -> u64| reports.iter().map(f).sum::<u64>();
    println!(
        "compact: {} chunk(s) rotated; {} cold chunk(s) examined, {} rewritten, \
         {} frames dropped, {} log bytes reclaimed",
        rotated,
        sum(|r| r.chunks_examined),
        sum(|r| r.chunks_rewritten),
        sum(|r| r.frames_dropped),
        sum(|r| r.bytes_reclaimed),
    );
    println!(
        "compact: cold-chunk disk footprint {} -> {} bytes",
        sum(|r| r.disk_bytes_before),
        sum(|r| r.disk_bytes_after),
    );
    Ok(())
}

fn cmd_stats(dir: &Path, rest: &[String]) -> Result<(), String> {
    let json = rest.iter().any(|a| a == "--json");
    let prom = rest.iter().any(|a| a == "--prom");
    if let Some(addr) = flag_value(rest, "--remote") {
        // live-server statistics over the wire; the round-trip through
        // the snapshot parser is a strict schema check
        let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let text = client.stats_json().map_err(|e| format!("stats: {e}"))?;
        let snap = mmdb_core::MetricsSnapshot::from_json(&text)?;
        if prom {
            print!("{}", snap.to_prometheus());
        } else {
            println!("{}", snap.to_json_pretty());
        }
        return Ok(());
    }
    let mut config = persist::load(dir)?;
    // Telemetry on, like `audit` forces the audit on: the snapshot then
    // carries latency histograms for whatever this invocation did
    // (including a recovery, if one ran).
    config.telemetry = true;
    let db = open_with(config, dir)?;
    if json {
        println!("{}", db.metrics_snapshot().to_json_pretty());
        return Ok(());
    }
    if prom {
        print!("{}", db.metrics_snapshot().to_prometheus());
        return Ok(());
    }
    let t = db.txn_stats();
    let c = db.ckpt_stats();
    let l = db.log_stats();
    println!(
        "database:   {} ({} records × {} words, {} segments)",
        dir.display(),
        db.n_records(),
        db.record_words(),
        db.n_segments()
    );
    println!(
        "algorithm:  {} ({:?} checkpoints, log tail {:?})",
        config.algorithm, config.params.ckpt_mode, config.params.log_mode
    );
    println!("txns:       {} committed, {} two-color aborts, {} other aborts (this session incl. recovery)", t.committed, t.aborted_two_color, t.aborted_other);
    println!(
        "ckpts:      {} completed, {} segments flushed, {} old copies, {} log forces",
        c.completed, c.segments_flushed, c.old_copies_flushed, c.log_forces
    );
    println!(
        "log:        {} records / {} bytes appended this session",
        l.records, l.bytes
    );
    let seg = db.segment_stats();
    println!(
        "segments:   {} total, dirty vs copy0/copy1 = {}/{}, {} white, {} holding COU old copies",
        seg.total, seg.dirty_copy0, seg.dirty_copy1, seg.white, seg.with_old_copy
    );
    let dev = SegmentedLogDevice::open(&dir.join("log"), config.log_chunk_bytes, false)
        .map_err(|e| e.to_string())?;
    println!(
        "log disk:   {} chunks, {} bytes on disk, window [{}, {})",
        dev.chunk_count(),
        dev.disk_bytes(),
        dev.start_offset(),
        dev.len()
    );
    Ok(())
}

/// Prints request span trees in the flight-recorder dump format. Two
/// sources, one formatter:
///
/// * `--remote ADDR` fetches a live server's flight recorder and slow
///   -request log over the wire (`TraceDump`) — no workload is run and
///   `<dir>` is not opened.
/// * Otherwise a telemetry-instrumented workload runs locally — seeded
///   transactions (each under its own request scope) interleaved with
///   stepped checkpoints, a final full checkpoint and a dry-run
///   recoverability check — and its own recorder is dumped.
///
/// Both paths render via [`mmdb_core::TraceDumpDoc`], so the local view
/// and the remote view of "what did this request spend its time on"
/// read identically.
fn cmd_trace(dir: &Path, rest: &[String]) -> Result<(), String> {
    let txns: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(50);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let updates: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(5);
    let limit: usize = flag_value(rest, "--limit")
        .map(|v| v.parse().map_err(|e| format!("--limit: {e}")))
        .transpose()?
        .unwrap_or(200);
    let slow_us: Option<u64> = flag_value(rest, "--slow-us")
        .map(|v| v.parse().map_err(|e| format!("--slow-us: {e}")))
        .transpose()?;
    let as_json = rest.iter().any(|a| a == "--json");

    if let Some(addr) = flag_value(rest, "--remote") {
        let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let json = client
            .trace_dump(limit as u32)
            .map_err(|e| format!("trace dump: {e}"))?;
        // parse even when re-emitting JSON: the strict schema check is
        // the point (CI greps this command's exit status)
        let doc = mmdb_core::TraceDumpDoc::from_json(&json)?;
        if as_json {
            print!("{json}");
        } else {
            print!("{}", doc.render());
        }
        return Ok(());
    }

    let mut config = persist::load(dir)?;
    config.telemetry = true;
    let mut db = open_with(config, dir)?;
    if let Some(us) = slow_us {
        db.obs().set_slow_threshold_us(us);
    }

    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), updates, seed);
    for i in 0..txns {
        if i == txns / 3 && !db.is_checkpoint_active() {
            db.try_begin_checkpoint().map_err(|e| e.to_string())?;
        }
        if db.is_checkpoint_active() && i % 2 == 0 {
            step_checkpoint(&mut db)?;
        }
        let spec = wl.next_txn();
        // Each transaction runs under its own request scope, exactly as
        // the server wraps a wire request: every engine phase it touches
        // (lock waits, txn.exec-equivalent commits, log forces) lands in
        // one span tree, feeding the same slow-request log and
        // attribution table a live server would populate.
        let scope = db
            .obs()
            .request_scope("net.request", "net.request_ns", "txn", 0, 0);
        let run = db.run_txn(&spec.materialize(words));
        scope.finish();
        run.map_err(|e| e.to_string())?;
    }
    while db.is_checkpoint_active() {
        step_checkpoint(&mut db)?;
    }
    db.checkpoint().map_err(|e| e.to_string())?;
    db.verify_recoverability().map_err(|e| e.to_string())?;

    let doc = mmdb_core::TraceDumpDoc::capture(db.obs(), limit);
    if as_json {
        print!("{}", doc.to_json());
    } else {
        print!("{}", doc.render());
        println!("(latency histograms and attribution: `mmdb-cli <dir> stats --json`)");
    }
    Ok(())
}

/// Runs an audited stress pass over the database: a workload interleaved
/// with stepped checkpoints (plus a final full checkpoint and a dry-run
/// recoverability check), with every protocol invariant checked online.
/// Prints the coverage/violation summary; a violation fails the command.
fn cmd_audit(dir: &Path, rest: &[String]) -> Result<(), String> {
    let txns: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(200);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let updates: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(5);

    let mut config = persist::load(dir)?;
    config.audit = true;
    // Telemetry rides along: a violation dumps the flight recorder, so
    // the span trees around the offending interleaving are preserved.
    config.telemetry = true;
    let (mut db, recovered) = Mmdb::open_dir(config, dir).map_err(|e| e.to_string())?;
    if let Some(r) = recovered {
        eprintln!(
            "(recovered from checkpoint {}: {} segments, {} log words, {} txns replayed)",
            r.ckpt.raw(),
            r.segments_loaded,
            r.log_words,
            r.txns_replayed
        );
    }

    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), updates, seed);
    for i in 0..txns {
        // Begin a checkpoint a third of the way in, so transactions and
        // the sweep genuinely interleave (two-color aborts, COU saves).
        if i == txns / 3 && !db.is_checkpoint_active() {
            db.try_begin_checkpoint().map_err(|e| e.to_string())?;
        }
        if db.is_checkpoint_active() && i % 2 == 0 {
            step_checkpoint(&mut db)?;
        }
        let spec = wl.next_txn();
        db.run_txn(&spec.materialize(words))
            .map_err(|e| e.to_string())?;
    }
    while db.is_checkpoint_active() {
        step_checkpoint(&mut db)?;
    }
    db.checkpoint().map_err(|e| e.to_string())?;
    db.verify_recoverability().map_err(|e| e.to_string())?;

    let report = db.audit_report().ok_or("auditing unexpectedly disabled")?;
    print!("{report}");
    if report.is_clean() {
        println!("audit: clean ({txns} txns, checkpoints interleaved, recoverability verified)");
        Ok(())
    } else {
        if let Ok(Some(path)) = mmdb_core::write_flightrec(db.obs(), dir) {
            println!("flight recorder dumped to {}", path.display());
        }
        Err(format!(
            "audit: {} protocol violation(s) detected",
            report.violations.len()
        ))
    }
}

/// Runs the concurrency-discipline lint over the source tree rooted at
/// `dir` (here `<dir>` is a source root, not a database directory),
/// applying `<dir>/lint.baseline`. Mirrors `audit`: clean exits zero,
/// any unbaselined finding is an error.
fn cmd_lint(dir: &Path, rest: &[String]) -> Result<(), String> {
    if !rest.is_empty() {
        return Err("lint takes no arguments".into());
    }
    let report = check_workspace(dir).map_err(|e| format!("lint: {e}"))?;
    for v in &report.violations {
        println!("{v}");
    }
    for s in &report.stale {
        eprintln!("warning: stale baseline entry `{s}` matched nothing — remove it");
    }
    println!(
        "lint: {} file(s), {} baselined exception(s), {} stale entr(ies)",
        report.files,
        report.suppressed,
        report.stale.len()
    );
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "lint: {} unbaselined violation(s)",
            report.violations.len()
        ))
    }
}

/// Serves the database over TCP until a wire `Shutdown` arrives (or the
/// process is killed). The first stdout line is machine-readable —
/// `listening on ADDR` — so harnesses binding port 0 can find the port.
fn cmd_serve(dir: &Path, rest: &[String]) -> Result<(), String> {
    let addr = flag_value(rest, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let workers: usize = flag_value(rest, "--workers")
        .map(|v| v.parse().map_err(|e| format!("--workers: {e}")))
        .transpose()?
        .unwrap_or(16);
    let ckpt_ms: u64 = flag_value(rest, "--ckpt-ms")
        .map(|v| v.parse().map_err(|e| format!("--ckpt-ms: {e}")))
        .transpose()?
        .unwrap_or(10);
    let idle_ms: Option<u64> = flag_value(rest, "--idle-ms")
        .map(|v| v.parse().map_err(|e| format!("--idle-ms: {e}")))
        .transpose()?;
    let slow_us: u64 = flag_value(rest, "--slow-us")
        .map(|v| v.parse().map_err(|e| format!("--slow-us: {e}")))
        .transpose()?
        .unwrap_or(mmdb_server::ServerConfig::default().slow_trace_us);
    let compact_ms: u64 = flag_value(rest, "--compact-ms")
        .map(|v| v.parse().map_err(|e| format!("--compact-ms: {e}")))
        .transpose()?
        .unwrap_or(0);

    let mut config = persist::load(dir)?;
    config.telemetry = true; // request spans must show up in `stats --json`
    if let Some(v) = flag_value(rest, "--recovery-workers") {
        // runtime override for this open only — the persisted knob
        // (set at `init`) is untouched
        config.recovery_workers = v.parse().map_err(|e| format!("--recovery-workers: {e}"))?;
        config.validate()?;
    }
    let marker = marker_shards(dir)?;
    let shards: usize = flag_value(rest, "--shards")
        .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .or(marker)
        .unwrap_or(1);

    // Replication role: flags override and persist; otherwise the role
    // recorded in mmdb.conf resumes (standalone for every directory
    // that predates the keys).
    let mut repl_settings = persist::load_repl(dir)?;
    let settings_before = repl_settings.clone();
    if let Some(peer) = flag_value(rest, "--replica-of") {
        repl_settings.role = persist::ReplRole::Replica(peer);
    }
    if rest.iter().any(|a| a == "--repl-primary") {
        repl_settings.role = persist::ReplRole::Primary;
    }
    if rest.iter().any(|a| a == "--repl-sync") {
        repl_settings.repl_sync = true;
        if repl_settings.role == persist::ReplRole::Standalone {
            repl_settings.role = persist::ReplRole::Primary;
        }
    }
    if repl_settings != settings_before {
        persist::save_repl(dir, &repl_settings).map_err(|e| format!("persisting role: {e}"))?;
    }
    let repl = ReplOptions {
        replica_of: match &repl_settings.role {
            persist::ReplRole::Replica(peer) => Some(peer.clone()),
            _ => None,
        },
        repl_sync: repl_settings.repl_sync,
        // a declared primary pins log truncation from startup (the
        // replication-slot contract): a standby seeded from an
        // identical `init` or a directory copy can then attach without
        // a bootstrap gap, even if checkpoints ran before its hello
        primary: repl_settings.role == persist::ReplRole::Primary,
        // a wire Promote rewrites the persisted role so the next
        // `serve` comes up as a primary, not a stale replica
        on_promote: Some(std::sync::Arc::new({
            let dir = dir.to_path_buf();
            move || {
                let _ = persist::save_repl(
                    &dir,
                    &persist::ReplSettings {
                        role: persist::ReplRole::Primary,
                        repl_sync: false,
                    },
                );
            }
        })),
        // replication progress (primary-LSN applied watermarks) lives
        // next to the data so a standby restart resumes, not re-seeds
        state_dir: Some(dir.to_path_buf()),
    };

    let server_config = ServerConfig {
        addr,
        workers,
        checkpoint_interval: (ckpt_ms > 0).then(|| std::time::Duration::from_millis(ckpt_ms)),
        idle_timeout: idle_ms.map(std::time::Duration::from_millis),
        slow_trace_us: slow_us,
        compact_interval: (compact_ms > 0).then(|| std::time::Duration::from_millis(compact_ms)),
        repl,
        ..ServerConfig::default()
    };
    // An existing unsharded directory stays on the plain-engine path:
    // only a topology marker or an explicit --shards > 1 selects the
    // sharded layout.
    let handle = if shards > 1 || marker.is_some() {
        let db = open_sharded(config, dir, shards)?;
        Server::spawn_sharded(db, server_config)
    } else {
        let db = open_with(config, dir)?;
        Server::spawn(db, server_config)
    }
    .map_err(|e| format!("cannot start server: {e}"))?;
    println!("listening on {}", handle.local_addr());
    eprintln!(
        "serving {} ({} workers, {} shard(s), checkpoints {}{}{}); stop with the wire Shutdown op",
        dir.display(),
        workers,
        shards,
        if ckpt_ms > 0 {
            format!("every {ckpt_ms}ms")
        } else {
            "on request only".into()
        },
        if compact_ms > 0 {
            format!(", log compaction every {compact_ms}ms")
        } else {
            String::new()
        },
        match &repl_settings.role {
            persist::ReplRole::Standalone => String::new(),
            persist::ReplRole::Primary => format!(
                ", primary{}",
                if repl_settings.repl_sync {
                    " (semi-sync)"
                } else {
                    ""
                }
            ),
            persist::ReplRole::Replica(peer) => format!(", replica of {peer}"),
        }
    );
    while !handle.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let ckpts = handle.checkpoints_completed();
    let db = handle.shutdown_join();
    println!(
        "shut down: {} txns committed, {} background checkpoints",
        db.txn_committed(),
        ckpts
    );
    Ok(())
}

/// Runs the network load driver — closed-loop by default, open-loop at
/// a fixed intended rate with `--rate` (latency then measured from the
/// intended send time, immune to coordinated omission). Without
/// `--addr` it self-hosts a server over `<dir>` on a loopback port;
/// with `--addr` it drives an already-running server. `--sweep` instead runs the
/// shard-scaling benchmark (fresh scratch topologies at 1/2/4/8
/// shards) and emits `BENCH_shard.json`-schema output.
fn cmd_bench_net(dir: &Path, rest: &[String]) -> Result<(), String> {
    if rest.iter().any(|a| a == "--sweep") {
        return run_shard_sweep(dir, rest);
    }
    if rest.iter().any(|a| a == "--group-compare") {
        return run_group_compare(dir, rest);
    }
    if rest.iter().any(|a| a == "--intra-sweep") {
        return run_intra_sweep_cmd(rest);
    }
    let connections: usize = flag_value(rest, "--connections")
        .map(|v| v.parse().map_err(|e| format!("--connections: {e}")))
        .transpose()?
        .unwrap_or(8);
    let txns_per_conn: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(100);
    let updates_per_txn: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let workload = match flag_value(rest, "--zipf") {
        Some(v) => WorkloadKind::Zipf(v.parse().map_err(|e| format!("--zipf: {e}"))?),
        None => WorkloadKind::Uniform,
    };
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);
    let cross_fraction: f64 = flag_value(rest, "--cross")
        .map(|v| v.parse().map_err(|e| format!("--cross: {e}")))
        .transpose()?
        .unwrap_or(0.0);
    // --rate switches each connection to an open-loop schedule at TPS
    // intended sends per second, with latency measured from the intended
    // send time — the coordinated-omission-free mode. 0 = closed loop.
    let target_rate_per_conn: f64 = flag_value(rest, "--rate")
        .map(|v| v.parse().map_err(|e| format!("--rate: {e}")))
        .transpose()?
        .unwrap_or(0.0);

    // self-host unless pointed at an external server
    let external_addr = flag_value(rest, "--addr");
    let marker = if external_addr.is_some() {
        None
    } else {
        marker_shards(dir)?
    };
    let shards: usize = flag_value(rest, "--shards")
        .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .or(marker)
        .unwrap_or(1);
    let handle = match &external_addr {
        Some(_) => None,
        None => {
            let mut config = persist::load(dir)?;
            config.telemetry = true;
            let server_config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: connections + 2,
                checkpoint_interval: Some(std::time::Duration::from_millis(5)),
                ..ServerConfig::default()
            };
            let spawned = if shards > 1 || marker.is_some() {
                let db = open_sharded(config, dir, shards)?;
                Server::spawn_sharded(db, server_config)
            } else {
                let db = open_with(config, dir)?;
                Server::spawn(db, server_config)
            };
            Some(spawned.map_err(|e| format!("cannot serve: {e}"))?)
        }
    };
    let addr = match (&external_addr, &handle) {
        (Some(a), _) => a.clone(),
        (None, Some(h)) => h.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let ckpts_before = match &handle {
        Some(_) => 0,
        None => stats_ckpt_completed(&addr)?,
    };
    let cfg = LoadConfig {
        addr: addr.clone(),
        connections,
        txns_per_conn,
        updates_per_txn,
        seed,
        workload,
        shards,
        cross_fraction,
        target_rate_per_conn,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).map_err(|e| format!("load driver: {e}"))?;

    let mut client = Client::connect(&addr).map_err(|e| format!("stats connection: {e}"))?;
    let info = client.info().map_err(|e| format!("info: {e}"))?;
    let ckpts = match &handle {
        Some(h) => h.checkpoints_completed(),
        None => stats_ckpt_completed(&addr)?.saturating_sub(ckpts_before),
    };
    drop(client);

    let json = bench_net_json(&cfg, &report, &info, ckpts);
    validate_bench_net_json(&json).map_err(|e| format!("bench JSON failed validation: {e}"))?;

    println!(
        "bench-net: {} conns × {} txns ({} updates each, {}) -> {} committed in {:.3}s ({:.0} txn/s)",
        connections,
        txns_per_conn,
        updates_per_txn,
        cfg.workload.label(),
        report.committed,
        report.elapsed.as_secs_f64(),
        report.throughput_tps,
    );
    println!(
        "latency us: p50 {} / p90 {} / p99 {} / p99.9 {} / max {}; {} transient retries, {} errors, {} checkpoints during run",
        report.latency_us.p50,
        report.latency_us.p90,
        report.latency_us.p99,
        report.latency_us.p999,
        report.latency_us.max,
        report.retries,
        report.errors,
        ckpts
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    if let Some(h) = handle {
        h.shutdown_join();
    }
    if report.errors > 0 {
        return Err(format!(
            "{} non-transient errors during load",
            report.errors
        ));
    }
    Ok(())
}

/// The within-shard concurrency benchmark behind `bench-net
/// --intra-sweep`: one in-process single-shard database, `{read, mixed}
/// × {lockfree, locked} × {1, 2, 4, 8}` worker threads, emitting one
/// `BENCH_intra.json`-schema document. In-process (no network, no
/// `<dir>`) because the thing under test is the engine's internal
/// concurrency — seqlock point reads against the forced-locked
/// baseline, and per-segment write latches on the mixed leg.
fn run_intra_sweep_cmd(rest: &[String]) -> Result<(), String> {
    let duration_ms: u64 = flag_value(rest, "--duration-ms")
        .map(|v| v.parse().map_err(|e| format!("--duration-ms: {e}")))
        .transpose()?
        .unwrap_or(200);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let write_every: u64 = flag_value(rest, "--write-every")
        .map(|v| v.parse().map_err(|e| format!("--write-every: {e}")))
        .transpose()?
        .unwrap_or(8);
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);

    let cfg = IntraSweepConfig {
        duration: std::time::Duration::from_millis(duration_ms),
        seed,
        write_every,
    };
    let points = run_intra_sweep(&cfg)?;
    for p in &points {
        println!(
            "intra-sweep: {:>5} {:>8} x{}: {:>9.0} ops/s ({} reads, {} commits, {} errors)",
            p.leg, p.mode, p.threads, p.ops_per_s, p.reads, p.commits, p.errors
        );
    }
    let json = bench_intra_json(&cfg, &points);
    validate_bench_intra_json(&json).map_err(|e| format!("bench JSON failed validation: {e}"))?;
    let headline = |leg: &str| {
        let free = points
            .iter()
            .find(|p| p.leg == leg && p.mode == "lockfree" && p.threads == 4);
        let locked = points
            .iter()
            .find(|p| p.leg == leg && p.mode == "locked" && p.threads == 4);
        match (free, locked) {
            (Some(f), Some(l)) if l.ops_per_s > 0.0 => f.ops_per_s / l.ops_per_s,
            _ => 0.0,
        }
    };
    println!(
        "intra-sweep: lock-free over locked at 4 threads: read {:.2}x, mixed {:.2}x",
        headline("read"),
        headline("mixed")
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    let errors: u64 = points.iter().map(|p| p.errors).sum();
    if errors > 0 {
        return Err(format!("{errors} errors during the intra sweep"));
    }
    Ok(())
}

/// The shard-scaling benchmark behind `bench-net --sweep`: for each
/// shard count in {1, 2, 4, 8}, stand up a fresh durable
/// (`sync_files=true`) topology under `<dir>/sweep.<N>/`, drive a
/// shard-affine closed loop at both the uniform and Zipf workloads, and
/// emit one `BENCH_shard.json`-schema document covering the whole
/// curve. Durable commits are the point: a single engine serializes
/// every commit behind one log force, while N shards overlap N of them
/// — the scaling the topology exists to buy. The log device is the
/// paper's: real fsyncs plus a modeled per-force latency
/// (`--log-latency-us`, default 1000), because the paper's commit cost
/// is a rotational log-disk write, not a virtualized flash flush.
fn run_shard_sweep(dir: &Path, rest: &[String]) -> Result<(), String> {
    let txns_per_conn: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(400);
    let updates_per_txn: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let theta: f64 = flag_value(rest, "--zipf")
        .map(|v| v.parse().map_err(|e| format!("--zipf: {e}")))
        .transpose()?
        .unwrap_or(0.8);
    let fixed_connections: Option<usize> = flag_value(rest, "--connections")
        .map(|v| v.parse().map_err(|e| format!("--connections: {e}")))
        .transpose()?;
    let log_latency_us: u32 = flag_value(rest, "--log-latency-us")
        .map(|v| v.parse().map_err(|e| format!("--log-latency-us: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);

    let mut entries: Vec<ShardSweepEntry> = Vec::new();
    let mut base_cfg = LoadConfig {
        txns_per_conn,
        updates_per_txn,
        seed,
        ..LoadConfig::default()
    };
    for shards in [1usize, 2, 4, 8] {
        let subdir = dir.join(format!("sweep.{shards}"));
        if subdir.exists() {
            std::fs::remove_dir_all(&subdir)
                .map_err(|e| format!("clearing {}: {e}", subdir.display()))?;
        }
        let mut config = MmdbConfig::small(Algorithm::FuzzyCopy);
        // Durable commits against the paper's log-device model: real
        // fsyncs plus a modeled per-force latency (default 1 ms). The
        // paper assumes a log disk whose write latency dominates commit
        // cost; a modern virtualized flush is so fast — and so heavily
        // serialized at the device — that it cannot express the regime
        // the sharding subsystem targets. The knob restores it: each
        // shard's commits serialize behind their own modeled log device,
        // and shards overlap those waits. The parameter is recorded in
        // the emitted JSON so the curve is reproducible.
        config.sync_files = true;
        config.log_force_latency_us = log_latency_us;
        let db = open_sharded(config, &subdir, shards)?;
        // offered concurrency scales with the topology (2 closed-loop
        // clients per shard) so every shard's log has work to overlap
        let connections = fixed_connections.unwrap_or(2 * shards);
        // Checkpoints stay on (this is a checkpointing paper) but are
        // paced loosely: each step fsyncs a segment while holding its
        // shard's engine lock, so a tight interval steals the very
        // device-flush slots the commit logs are trying to overlap.
        let server_config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: connections + 2,
            checkpoint_interval: Some(std::time::Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let handle =
            Server::spawn_sharded(db, server_config).map_err(|e| format!("cannot serve: {e}"))?;
        let addr = handle.local_addr().to_string();
        for workload in [WorkloadKind::Uniform, WorkloadKind::Zipf(theta)] {
            let cfg = LoadConfig {
                addr: addr.clone(),
                connections,
                workload,
                shards,
                ..base_cfg.clone()
            };
            let report =
                run_load(&cfg).map_err(|e| format!("load driver ({shards} shards): {e}"))?;
            if report.errors > 0 {
                handle.shutdown_join();
                return Err(format!(
                    "{} non-transient errors at {} shards ({})",
                    report.errors,
                    shards,
                    workload.label()
                ));
            }
            eprintln!(
                "sweep: {:>2} shards, {:7} workload: {:6.0} txn/s (p50 {} us, p99 {} us, {} retries)",
                shards,
                workload.label(),
                report.throughput_tps,
                report.latency_us.p50,
                report.latency_us.p99,
                report.retries
            );
            entries.push(ShardSweepEntry::from_report(&cfg, &report));
        }
        handle.shutdown_join();
    }
    base_cfg.shards = 1; // the config block in the JSON is sweep-wide

    let json = bench_shard_json(&base_cfg, log_latency_us, &entries);
    validate_bench_shard_json(&json).map_err(|e| format!("sweep JSON failed validation: {e}"))?;

    let tps = |shards: usize| {
        entries
            .iter()
            .find(|e| e.shards == shards && e.workload == WorkloadKind::Uniform)
            .map_or(0.0, |e| e.throughput_tps)
    };
    let base = tps(1);
    if base > 0.0 {
        println!(
            "scaling (uniform, durable commits): 1x -> {:.2}x at 2 shards, {:.2}x at 4, {:.2}x at 8",
            tps(2) / base,
            tps(4) / base,
            tps(8) / base
        );
    }
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    Ok(())
}

/// The group-commit benchmark behind `bench-net --group-compare`: two
/// identical single-shard closed-loop runs on fresh durable
/// (`sync_files=true`) topologies — one forcing the log at every commit,
/// one under [`CommitDurability::Group`] — emitting one
/// `BENCH_group.json`-schema document. Unlike the shard sweep, *no*
/// modeled log latency is injected: group commit's claim is about the
/// real device (every concurrent committer shares one in-flight fsync),
/// so the comparison runs on exactly what the hardware does.
fn run_group_compare(dir: &Path, rest: &[String]) -> Result<(), String> {
    let connections: usize = flag_value(rest, "--connections")
        .map(|v| v.parse().map_err(|e| format!("--connections: {e}")))
        .transpose()?
        .unwrap_or(8);
    let txns_per_conn: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(400);
    let updates_per_txn: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(4);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);

    let mut legs: Vec<GroupCompareEntry> = Vec::new();
    let mut json_cfg = None;
    for (durability, label) in [
        (CommitDurability::Force, "force"),
        (CommitDurability::Group, "group"),
    ] {
        let subdir = dir.join(format!("group.{label}"));
        if subdir.exists() {
            std::fs::remove_dir_all(&subdir)
                .map_err(|e| format!("clearing {}: {e}", subdir.display()))?;
        }
        let mut config = MmdbConfig::small(Algorithm::FuzzyCopy);
        config.sync_files = true;
        config.log_force_latency_us = 0; // the real device, nothing modeled
        config.commit_durability = durability;
        let db = open_sharded(config, &subdir, 1)?;
        let server_config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: connections + 2,
            checkpoint_interval: Some(std::time::Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let handle =
            Server::spawn_sharded(db, server_config).map_err(|e| format!("cannot serve: {e}"))?;
        let cfg = LoadConfig {
            addr: handle.local_addr().to_string(),
            connections,
            txns_per_conn,
            updates_per_txn,
            seed,
            shards: 1,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg).map_err(|e| format!("load driver ({label}): {e}"))?;
        let db = handle.shutdown_join();
        if report.errors > 0 {
            return Err(format!(
                "{} non-transient errors during the {label} leg",
                report.errors
            ));
        }
        let snap = db.metrics_snapshot();
        legs.push(GroupCompareEntry::new(
            label,
            &report,
            snap.counter("log.forces").unwrap_or(0),
            snap.counter("log.group_commit.commits").unwrap_or(0),
        ));
        json_cfg = Some(cfg);
        eprintln!(
            "group-compare: {label:>5} commits: {:6.0} txn/s (p50 {} us, p99 {} us, {} log forces)",
            report.throughput_tps,
            report.latency_us.p50,
            report.latency_us.p99,
            legs[legs.len() - 1].log_forces
        );
    }
    let (force, group) = (&legs[0], &legs[1]);
    let cfg = json_cfg.unwrap_or_default();
    let json = bench_group_json(&cfg, force, group);
    validate_bench_group_json(&json).map_err(|e| format!("group JSON failed validation: {e}"))?;

    if force.throughput_tps > 0.0 {
        println!(
            "group commit: {:.0} txn/s vs {:.0} forced ({:.2}x), {} forces vs {} for {} commits",
            group.throughput_tps,
            force.throughput_tps,
            group.throughput_tps / force.throughput_tps,
            group.log_forces,
            force.log_forces,
            group.committed
        );
    }
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    Ok(())
}

/// The replication benchmark behind `bench-repl`: a fresh semi-sync
/// primary plus a live standby on loopback ports, closed-loop writers
/// driving the primary, then a measured failover — lose the primary,
/// promote the standby, and verify every client-acknowledged write is
/// served. Emits one `BENCH_repl.json`-schema document: the lag
/// distribution is the paper's backup *freshness* and the failover time
/// its *recovery cost*, both measured rather than modeled. (The
/// SIGKILL-the-primary variant of the same scenario lives in the crash
/// -test suite; this command's job is the steady-state numbers.)
fn cmd_bench_repl(dir: &Path, rest: &[String]) -> Result<(), String> {
    let writers: usize = flag_value(rest, "--writers")
        .map(|v| v.parse().map_err(|e| format!("--writers: {e}")))
        .transpose()?
        .unwrap_or(4);
    let txns: u64 = flag_value(rest, "--txns")
        .map(|v| v.parse().map_err(|e| format!("--txns: {e}")))
        .transpose()?
        .unwrap_or(300);
    let shards: usize = flag_value(rest, "--shards")
        .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .unwrap_or(2);
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);

    let primary_dir = dir.join("repl.primary");
    let standby_dir = dir.join("repl.standby");
    for d in [&primary_dir, &standby_dir] {
        if d.exists() {
            std::fs::remove_dir_all(d).map_err(|e| format!("clearing {}: {e}", d.display()))?;
        }
    }
    let mut config = MmdbConfig::small(Algorithm::FuzzyCopy);
    config.telemetry = true;

    let pdb = open_sharded(config, &primary_dir, shards)?;
    let primary = Server::spawn_sharded(
        pdb,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // semi-sync committers park in workers until acks arrive as
            // requests: the pool must cover clients + pull connections
            workers: writers + shards + 2,
            checkpoint_interval: Some(std::time::Duration::from_millis(50)),
            repl: ReplOptions {
                repl_sync: true,
                ..ReplOptions::default()
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot serve primary: {e}"))?;
    let primary_addr = primary.local_addr().to_string();

    let sdb = open_sharded(config, &standby_dir, shards)?;
    let standby = Server::spawn_sharded(
        sdb,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            checkpoint_interval: Some(std::time::Duration::from_millis(50)),
            repl: ReplOptions {
                replica_of: Some(primary_addr.clone()),
                ..ReplOptions::default()
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot serve standby: {e}"))?;
    let standby_addr = standby.local_addr().to_string();

    // every commit after this point rides the semi-sync guarantee
    wait_repl_engaged(&primary_addr)?;
    let (n_records, algorithm) = {
        let mut c =
            Client::connect(&primary_addr).map_err(|e| format!("connecting primary: {e}"))?;
        let info = c.info().map_err(|e| format!("info: {e}"))?;
        (info.n_records, info.algorithm)
    };
    let span = (n_records / writers as u64).max(1);
    eprintln!(
        "bench-repl: {writers} writers × {txns} txns, {shards} shard(s), \
         semi-sync primary {primary_addr}, standby {standby_addr}"
    );

    // Closed-loop writers, each owning a disjoint record range and
    // writing monotonically increasing fills — so presence of a
    // record's final fill on the standby proves every acked write to it.
    let t0 = std::time::Instant::now();
    let results: Vec<Result<(u64, Vec<(u64, u32)>), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let addr = primary_addr.clone();
                s.spawn(move || -> Result<(u64, Vec<(u64, u32)>), String> {
                    let mut c = Client::connect(&addr).map_err(|e| e.to_string())?;
                    let words = c.info().map_err(|e| e.to_string())?.record_words as usize;
                    let base = w as u64 * span;
                    let mut counts = vec![0u32; span as usize];
                    let mut total = 0u64;
                    for i in 0..txns {
                        let slot = (i % span) as usize;
                        let rid = base + slot as u64;
                        if rid >= n_records {
                            continue;
                        }
                        let fill = counts[slot] + 1;
                        c.retry_transient(1000, |c| c.put(RecordId(rid), &vec![fill; words]))
                            .map_err(|e| e.to_string())?;
                        counts[slot] = fill;
                        total += 1;
                    }
                    let acked = counts
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(slot, &n)| (base + slot as u64, n))
                        .collect();
                    Ok((total, acked))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("writer panicked".into())))
            .collect()
    });
    let duration = t0.elapsed();
    let mut committed = 0u64;
    let mut acked: Vec<(u64, u32)> = Vec::new();
    for r in results {
        let (n, mut a) = r?;
        committed += n;
        acked.append(&mut a);
    }

    // steady-state lag distribution, measured on the primary's clock
    let lag_us = {
        let mut c = Client::connect(&primary_addr).map_err(|e| e.to_string())?;
        let json = c.stats_json().map_err(|e| e.to_string())?;
        let snap = mmdb_core::MetricsSnapshot::from_json(&json)?;
        *snap
            .hist("repl.lag_us")
            .ok_or("no repl.lag_us samples on the primary — replication never engaged")?
    };

    // failover: lose the primary, promote the standby, verify no
    // acknowledged write was lost and the promoted server actually serves
    let acked_at_kill = committed;
    primary.shutdown_join();
    let t1 = std::time::Instant::now();
    let mut s = Client::connect(&standby_addr).map_err(|e| e.to_string())?;
    s.promote().map_err(|e| format!("promote: {e}"))?;
    s.get(RecordId(0))
        .map_err(|e| format!("post-promote read: {e}"))?;
    let failover_ms = t1.elapsed().as_secs_f64() * 1e3;
    let mut present = 0u64;
    for &(rid, n) in &acked {
        let v = s.get(RecordId(rid)).map_err(|e| e.to_string())?;
        present += u64::from(v.first().copied().unwrap_or(0).min(n));
    }
    standby.shutdown_join();

    let report = ReplBenchReport {
        shards: shards as u64,
        writers: writers as u64,
        algorithm,
        n_records,
        duration_s: duration.as_secs_f64(),
        committed,
        throughput_tps: committed as f64 / duration.as_secs_f64().max(1e-9),
        lag_us,
        failover_ms,
        acked_at_kill,
        present_after_promote: present,
    };
    let json = bench_repl_json(&report);
    validate_bench_repl_json(&json).map_err(|e| format!("repl JSON failed validation: {e}"))?;

    println!(
        "bench-repl: {} acked commits in {:.3}s ({:.0} txn/s, semi-sync)",
        committed, report.duration_s, report.throughput_tps
    );
    println!(
        "lag us: p50 {} / p90 {} / p99 {} / p99.9 {} / max {} over {} acks; \
         failover {:.0} ms, {}/{} acked writes present after promote",
        report.lag_us.p50,
        report.lag_us.p90,
        report.lag_us.p99,
        report.lag_us.p999,
        report.lag_us.max,
        report.lag_us.count,
        failover_ms,
        present,
        acked_at_kill
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    Ok(())
}

/// Polls the primary's stats until a standby's `ReplHello` shows up.
fn wait_repl_engaged(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let json = client.stats_json().map_err(|e| format!("stats: {e}"))?;
        let snap = mmdb_core::MetricsSnapshot::from_json(&json)?;
        if snap.counter("repl.hello").unwrap_or(0) >= 1 {
            return Ok(());
        }
        if std::time::Instant::now() >= deadline {
            return Err("standby never said hello to the primary".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Recursively copies a database directory (regular files only — that
/// is all an engine directory contains).
fn copy_dir_recursive(src: &Path, dst: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dst).map_err(|e| format!("creating {}: {e}", dst.display()))?;
    for entry in std::fs::read_dir(src).map_err(|e| format!("reading {}: {e}", src.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir_recursive(&from, &to)?;
        } else {
            std::fs::copy(&from, &to).map_err(|e| format!("copying {}: {e}", from.display()))?;
        }
    }
    Ok(())
}

/// Bytes a directory actually occupies on disk, recursively. Uses
/// allocated blocks rather than file lengths because compressed backup
/// slots are sparse — the slot grid keeps its logical size while the
/// unwritten tail of each slot is a hole.
fn dir_allocated_bytes(dir: &Path) -> Result<u64, String> {
    let mut total = 0u64;
    for entry in std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            total += dir_allocated_bytes(&path)?;
        } else {
            let meta = entry.metadata().map_err(|e| e.to_string())?;
            #[cfg(unix)]
            {
                use std::os::unix::fs::MetadataExt;
                total += meta.blocks() * 512;
            }
            #[cfg(not(unix))]
            {
                total += meta.len();
            }
        }
    }
    Ok(total)
}

/// Builds one crashed engine directory for the recovery benchmark:
/// seed checkpoints, a seeded uniform workload with checkpoints
/// interleaved, an optional rotation+compaction pass, then a simulated
/// crash. Returns `(window_bytes, total_log_bytes)` — the replay
/// window at the crash and the log ever written (they diverge once
/// checkpoints truncate).
fn build_crashed_dir(
    base: &Path,
    config: MmdbConfig,
    txns: u64,
    ckpt_every: u64,
    updates: u32,
    seed: u64,
    compact: bool,
) -> Result<(u64, u64), String> {
    if base.exists() {
        std::fs::remove_dir_all(base).map_err(|e| format!("clearing {}: {e}", base.display()))?;
    }
    let (mut db, _) = Mmdb::open_dir(config, base).map_err(|e| e.to_string())?;
    db.checkpoint().map_err(|e| e.to_string())?;
    db.checkpoint().map_err(|e| e.to_string())?;
    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), updates, seed);
    for i in 0..txns {
        if i > 0 && i % ckpt_every == 0 {
            db.checkpoint().map_err(|e| e.to_string())?;
        }
        let spec = wl.next_txn();
        db.run_txn(&spec.materialize(words))
            .map_err(|e| e.to_string())?;
    }
    db.force_log().map_err(|e| e.to_string())?;
    if compact {
        db.rotate_log().map_err(|e| e.to_string())?;
        db.compact_log().map_err(|e| e.to_string())?;
    }
    db.crash().map_err(|e| e.to_string())?;
    drop(db);
    // measure the window from the files themselves, like fsck does
    let dev = SegmentedLogDevice::open(&base.join("log"), config.log_chunk_bytes, false)
        .map_err(|e| e.to_string())?;
    let total = dev.len();
    let window = total - dev.start_offset();
    Ok((window, total))
}

/// Copies the crashed directory aside, times a full restart (open +
/// recovery) with the given worker count, and returns the wall-clock
/// seconds plus the recovered fingerprint (so the caller can assert
/// every worker count converges to the same state).
fn timed_recovery(
    src: &Path,
    mut config: MmdbConfig,
    workers: usize,
) -> Result<(f64, u64), String> {
    let run = src.with_extension("run");
    if run.exists() {
        std::fs::remove_dir_all(&run).map_err(|e| e.to_string())?;
    }
    copy_dir_recursive(src, &run)?;
    config.recovery_workers = workers;
    let t0 = std::time::Instant::now();
    let (db, recovered) = Mmdb::open_dir(config, &run).map_err(|e| e.to_string())?;
    let seconds = t0.elapsed().as_secs_f64();
    if recovered.is_none() {
        return Err(format!("{} was not a crashed directory", src.display()));
    }
    let fingerprint = ShardedMmdb::from_single(db).fingerprint();
    std::fs::remove_dir_all(&run).map_err(|e| e.to_string())?;
    Ok((seconds, fingerprint))
}

/// The recovery-at-scale benchmark behind `bench-recovery`: for each
/// database-size × log-length point, build a crashed directory under
/// `<dir>/recovery.<label>/`, then measure wall-clock restart time
/// serially and at 2/4/8 replay workers (asserting every run converges
/// to the same fingerprint), plus a 4-worker run on an LZ-compressed
/// twin (compressed backup slots + compacted, compressed cold log
/// chunks). A final pair of runs demonstrates the bounded replay
/// window: 10x the total work with continuous checkpointing leaves
/// recovery time flat. Emits one `BENCH_recovery.json`-schema document.
fn cmd_bench_recovery(dir: &Path, rest: &[String]) -> Result<(), String> {
    let updates: u32 = flag_value(rest, "--updates")
        .map(|v| v.parse().map_err(|e| format!("--updates: {e}")))
        .transpose()?
        .unwrap_or(8);
    let seed: u64 = flag_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let out: Option<PathBuf> = flag_value(rest, "--out").map(PathBuf::from);

    const S_REC: u64 = 64;
    const S_SEG: u64 = 65_536;
    let algorithm = Algorithm::FuzzyCopy;
    let shaped = |segments: u64| {
        let mut config = MmdbConfig::new(algorithm);
        config.params.db.s_rec = S_REC;
        config.params.db.s_seg = S_SEG;
        config.params.db.s_db = segments * S_SEG;
        config
    };

    let mut report = mmdb_rescale::RecoveryBenchReport {
        algorithm: algorithm.name().into(),
        record_words: S_REC,
        segment_words: S_SEG,
        updates_per_txn: updates as u64,
        ..Default::default()
    };

    // The sweep: database size and log length grow together; the whole
    // window stays in the replay path (one mid-run checkpoint ages the
    // backup without truncating the interesting tail).
    for (label, segments, txns) in [
        ("small", 16u64, 2_000u64),
        ("medium", 64, 8_000),
        ("large", 128, 24_000),
    ] {
        let config = shaped(segments);
        let base = dir.join(format!("recovery.{label}"));
        let (window, _) = build_crashed_dir(&base, config, txns, txns / 2, updates, seed, false)?;

        let mut serial_s = 0.0;
        let mut serial_fp = 0u64;
        let mut parallel = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let (seconds, fp) = timed_recovery(&base, config, workers)?;
            if workers == 1 {
                serial_s = seconds;
                serial_fp = fp;
            } else if fp != serial_fp {
                return Err(format!(
                    "parallel recovery diverged at {workers} workers on {label}: \
                     {fp:#018x} vs serial {serial_fp:#018x}"
                ));
            }
            parallel.push(mmdb_rescale::ParallelEntry {
                workers: workers as u64,
                seconds,
                speedup: serial_s / seconds,
            });
        }

        // the compressed twin: same workload, compressed backup slots,
        // plus a rotation+compaction pass so the cold chunks are
        // compressed (and superseded frames already filler) at crash
        let mut lz_config = config;
        lz_config.compress_backups = true;
        lz_config.compress_log_chunks = true;
        let lz_base = dir.join(format!("recovery.{label}.lz"));
        build_crashed_dir(&lz_base, lz_config, txns, txns / 2, updates, seed, true)?;
        let (compressed_parallel_s, _) = timed_recovery(&lz_base, lz_config, 4)?;
        let ratio =
            dir_allocated_bytes(&lz_base)? as f64 / dir_allocated_bytes(&base)?.max(1) as f64;

        let at4 = parallel
            .iter()
            .find(|p| p.workers == 4)
            .map_or(0.0, |p| p.speedup);
        eprintln!(
            "bench-recovery: {label:>6}: {segments:3} segments, {txns:5} txns — serial {serial_s:.3}s, \
             4 workers {at4:.2}x, compressed {compressed_parallel_s:.3}s ({:.0}% of raw disk)",
            ratio * 100.0
        );
        report.points.push(mmdb_rescale::RecoveryPoint {
            label: label.into(),
            n_segments: segments,
            db_bytes: segments * S_SEG * 4,
            log_txns: txns,
            log_bytes: window,
            serial_s,
            parallel,
            compressed_parallel_s,
            compressed_disk_ratio: ratio,
        });
    }

    // The bounded-window demo: ten times the total work, same
    // checkpoint cadence — the log ever written grows 10x while the
    // replay window (and so recovery time) stays put.
    let config = shaped(64);
    for (growth, txns) in [(1u64, 3_000u64), (10, 30_000)] {
        let base = dir.join(format!("recovery.window.{growth}x"));
        let (window, total) = build_crashed_dir(&base, config, txns, 500, updates, seed, false)?;
        let (recovery_s, _) = timed_recovery(&base, config, 4)?;
        eprintln!(
            "bench-recovery: window {growth:>2}x work: {total:>9} log bytes written, \
             {window:>8} in the window, recovery {recovery_s:.3}s"
        );
        report.bounded_window.push(mmdb_rescale::WindowPoint {
            growth,
            total_log_bytes: total,
            window_bytes: window,
            recovery_s,
        });
    }

    let json = mmdb_rescale::bench_recovery_json(&report);
    mmdb_rescale::validate_bench_recovery_json(&json)
        .map_err(|e| format!("recovery JSON failed validation: {e}"))?;

    let large = report.points.last().ok_or("no sweep points")?;
    let at4 = large
        .parallel
        .iter()
        .find(|p| p.workers == 4)
        .map_or(0.0, |p| p.speedup);
    println!(
        "parallel replay: {:.2}x at 4 workers on the large point (serial {:.3}s); \
         10x the work moves recovery {:.3}s -> {:.3}s",
        at4,
        large.serial_s,
        report.bounded_window[0].recovery_s,
        report.bounded_window[1].recovery_s
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    } else {
        print!("{json}");
    }
    Ok(())
}

/// Promotes a replica to a writable primary. With `--addr` the wire
/// `Promote` op is sent to the live standby server (which persists the
/// role flip itself via its `on_promote` hook); without it, the
/// directory's persisted role is flipped offline so the next `serve`
/// comes up writable.
fn cmd_promote(dir: &Path, rest: &[String]) -> Result<(), String> {
    if let Some(addr) = flag_value(rest, "--addr") {
        let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        client.promote().map_err(|e| format!("promote: {e}"))?;
        println!("promoted server at {addr}: now writable");
        // Best-effort local flip too, in case the server runs over a
        // different directory than the one named here.
        if let Ok(settings) = persist::load_repl(dir) {
            if matches!(settings.role, persist::ReplRole::Replica(_)) {
                persist::save_repl(
                    dir,
                    &persist::ReplSettings {
                        role: persist::ReplRole::Primary,
                        repl_sync: false,
                    },
                )
                .map_err(|e| format!("persisting role: {e}"))?;
            }
        }
        return Ok(());
    }
    let settings = persist::load_repl(dir)?;
    match settings.role {
        persist::ReplRole::Replica(peer) => {
            persist::save_repl(
                dir,
                &persist::ReplSettings {
                    role: persist::ReplRole::Primary,
                    repl_sync: false,
                },
            )
            .map_err(|e| format!("persisting role: {e}"))?;
            println!(
                "promoted {}: was replica of {peer}, next `serve` comes up as a writable primary",
                dir.display()
            );
            Ok(())
        }
        _ => Err(format!(
            "{} is not a replica (role {:?}); nothing to promote",
            dir.display(),
            settings.role
        )),
    }
}

/// Computes the storage fingerprint of the database in `dir` (sharded
/// or not), offline.
fn dir_fingerprint(dir: &Path) -> Result<u64, String> {
    dir_fingerprint_with(persist::load(dir)?, dir)
}

/// [`dir_fingerprint`] under a caller-adjusted config (e.g. `fsck
/// --recovery-workers N --compare <serial-dir>` recovers the local side
/// in parallel and the target with its own persisted settings — the
/// fingerprint-identity check).
fn dir_fingerprint_with(config: MmdbConfig, dir: &Path) -> Result<u64, String> {
    match marker_shards(dir)? {
        Some(shards) => Ok(open_sharded(config, dir, shards)?.fingerprint()),
        None => Ok(ShardedMmdb::from_single(open_with(config, dir)?).fingerprint()),
    }
}

/// Reads `ckpt.completed` from a server's wire stats snapshot.
fn stats_ckpt_completed(addr: &str) -> Result<u64, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("stats connection: {e}"))?;
    let json = client.stats_json().map_err(|e| format!("stats: {e}"))?;
    let snap = mmdb_core::MetricsSnapshot::from_json(&json)?;
    Ok(snap.counter("ckpt.completed").unwrap_or(0))
}

fn step_checkpoint(db: &mut Mmdb) -> Result<(), String> {
    match db.checkpoint_step().map_err(|e| e.to_string())? {
        mmdb_core::StepOutcome::WaitingForLog => db.force_log().map_err(|e| e.to_string()),
        _ => Ok(()),
    }
}

fn cmd_fsck(dir: &Path, rest: &[String]) -> Result<(), String> {
    let mut config = persist::load(dir)?;
    // Run the deep verify's dry-run recovery through the parallel path
    // (the fingerprint-identity check: recover with N workers, then
    // `--compare` against a serially-recovered copy).
    if let Some(v) = flag_value(rest, "--recovery-workers") {
        config.recovery_workers = v.parse().map_err(|e| format!("--recovery-workers: {e}"))?;
        config.validate()?;
    }
    let mut problems = 0u64;

    // --compare cross-checks this database's storage fingerprint
    // against another database directory or a live server (addr with a
    // ':'): the one-line answer to "is my standby byte-equivalent?"
    if let Some(target) = flag_value(rest, "--compare") {
        let local = dir_fingerprint_with(config, dir)?;
        let (what, other) = if target.contains(':') {
            let mut client =
                Client::connect(&target).map_err(|e| format!("connecting {target}: {e}"))?;
            let fp = client
                .fingerprint()
                .map_err(|e| format!("fingerprint: {e}"))?;
            (format!("server {target}"), fp)
        } else {
            let other_dir = PathBuf::from(&target);
            (target.clone(), dir_fingerprint(&other_dir)?)
        };
        if local == other {
            println!("compare: fingerprints match ({local:#018x})");
        } else {
            println!(
                "compare: FINGERPRINT MISMATCH — {} is {local:#018x}, {what} is {other:#018x}",
                dir.display()
            );
            problems += 1;
        }
    }

    match marker_shards(dir)? {
        Some(shards) => {
            // sharded topology: every shard is a standalone engine
            // directory checked with the per-shard parameter shape
            println!(
                "topology: {shards} shards (marker {})",
                dir.join("shards").display()
            );
            let scfg = shard_config(&config, shards);
            for i in 0..shards {
                let shard_dir = dir.join(format!("shard.{i}"));
                println!("-- shard {i} ({})", shard_dir.display());
                problems += fsck_engine_dir(&shard_dir, scfg)?;
            }
        }
        None => problems += fsck_engine_dir(dir, config)?,
    }

    if problems == 0 {
        println!("fsck: clean");
        Ok(())
    } else {
        Err(format!("fsck: {problems} problem(s) found"))
    }
}

/// Checks one engine directory (backup checksums, log window, dry-run
/// recovery) and returns the number of problems found.
fn fsck_engine_dir(dir: &Path, config: MmdbConfig) -> Result<u64, String> {
    use mmdb_disk::{BackupStore, CopyStatus, FileBackup};
    let mut problems = 0u64;

    // backups: header status + every segment checksum of complete copies
    let mut backup = FileBackup::open(&dir.join("backup"), config.params.db, false)
        .map_err(|e| e.to_string())?;
    for copy in 0..2usize {
        let status = backup.copy_status(copy).map_err(|e| e.to_string())?;
        print!("backup.{copy}: {status:?}");
        if let CopyStatus::Complete(_) = status {
            let mut buf = vec![0u32; config.params.db.s_seg as usize];
            let mut bad = 0u64;
            for sid in 0..config.params.db.n_segments() as u32 {
                if backup
                    .read_segment(copy, mmdb_types::SegmentId(sid), &mut buf)
                    .is_err()
                {
                    bad += 1;
                }
            }
            if bad == 0 {
                println!(
                    " — all {} segment checksums OK",
                    config.params.db.n_segments()
                );
            } else {
                println!(" — {bad} CORRUPT segments");
                problems += bad;
            }
        } else {
            println!();
        }
    }

    // log: validated window + marker inventory
    let mut dev = SegmentedLogDevice::open(&dir.join("log"), config.log_chunk_bytes, false)
        .map_err(|e| e.to_string())?;
    let window = dev.len() - dev.start_offset();
    let scanner = LogScanner::from_device(&mut dev).map_err(|e| e.to_string())?;
    let intact = scanner.valid_len();
    println!(
        "log: {} of {} window bytes intact{}",
        intact,
        window,
        if intact == window {
            ""
        } else {
            " (torn tail — expected after a crash)"
        }
    );
    match scanner.last_complete_checkpoint() {
        Some(mark) => println!(
            "log: last complete checkpoint {} (begin marker at {})",
            mark.ckpt.raw(),
            mark.begin_lsn.raw()
        ),
        None => {
            println!("log: NO complete checkpoint marker in the readable window");
            problems += 1;
        }
    }

    // deep verification: dry-run recovery must reproduce the live state.
    // Telemetry is forced on so that if the verify fails, the flight
    // recorder holds the recovery/verification phases that led up to the
    // failure and can be dumped next to the evidence.
    let mut deep_config = config;
    deep_config.telemetry = true;
    match open_with(deep_config, dir) {
        Ok(mut db) => {
            match db.verify_recoverability() {
                Ok(report) => println!(
                    "deep verify: dry-run recovery reproduces the live state \
                     (checkpoint {}, {} log words, modeled {:.1}s)",
                    report.ckpt.raw(),
                    report.log_words,
                    report.total_seconds()
                ),
                Err(e) => {
                    println!("deep verify: FAILED — {e}");
                    problems += 1;
                }
            }
            // Any problem dumps the flight recorder next to the
            // evidence: the recovery and verification spans of this
            // very open are what a post-mortem wants to see.
            if problems > 0 {
                if let Ok(Some(path)) = mmdb_core::write_flightrec(db.obs(), dir) {
                    println!("flight recorder dumped to {}", path.display());
                }
            }
        }
        Err(e) => {
            println!("deep verify: cannot open engine — {e}");
            problems += 1;
        }
    }

    Ok(problems)
}

fn cmd_dump(dir: &Path, rest: &[String]) -> Result<(), String> {
    let out: PathBuf = rest.first().ok_or("dump needs <archive-file>")?.into();
    let mut db = open(dir)?;
    let info = db.dump_archive(&out).map_err(|e| e.to_string())?;
    println!(
        "archived checkpoint {} image plus {} log bytes to {}",
        info.ckpt.raw(),
        info.log_bytes,
        out.display()
    );
    Ok(())
}

fn cmd_restore(dir: &Path, rest: &[String]) -> Result<(), String> {
    let archive: PathBuf = rest.first().ok_or("restore needs <archive-file>")?.into();
    if dir.join(persist::CONFIG_FILE).exists() {
        return Err(format!(
            "{} already contains a database; restore into a fresh directory",
            dir.display()
        ));
    }
    // reconstruct the engine config from the archive's shape, defaulting
    // the algorithm to COUCOPY (the archive does not constrain it)
    let info = mmdb_disk::archive_info(&archive).map_err(|e| e.to_string())?;
    let algorithm: Algorithm = flag_value(rest, "--algorithm")
        .unwrap_or_else(|| "COUCOPY".into())
        .parse()?;
    let mut config = MmdbConfig::small(algorithm);
    config.params.db = info.db;
    if algorithm == Algorithm::FastFuzzy {
        config.params.log_mode = LogMode::StableTail;
    }
    config.validate()?;
    let (db, report) =
        Mmdb::restore_archive_dir(config, dir, &archive).map_err(|e| e.to_string())?;
    persist::save(&config, dir).map_err(|e| e.to_string())?;
    println!(
        "restored {} from checkpoint {}: {} segments, {} log words, {} txns replayed",
        dir.display(),
        report.ckpt.raw(),
        report.segments_loaded,
        report.log_words,
        report.txns_replayed
    );
    drop(db);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_lists_every_dispatchable_command_once() {
        let text = usage();
        for (name, help, _) in COMMANDS {
            let line = text
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("{name} ")))
                .unwrap_or_else(|| panic!("usage must list {name}"));
            assert!(line.contains(help), "usage line for {name} lost its help");
        }
        // no duplicates in the dispatch table (the first match would
        // silently shadow the second)
        let mut names: Vec<&str> = COMMANDS.iter().map(|(n, _, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COMMANDS.len(), "duplicate command name");
    }

    #[test]
    fn telemetry_commands_are_dispatchable() {
        for required in ["stats", "trace"] {
            assert!(
                COMMANDS.iter().any(|(n, _, _)| *n == required),
                "{required} missing from dispatch table"
            );
        }
    }

    #[test]
    fn module_doc_mentions_every_command() {
        // the ```text block at the top of this file is the README-facing
        // synopsis; keep it covering the full command set
        let doc = include_str!("main.rs");
        let synopsis_end = doc.find("mod persist").expect("module body");
        let synopsis = &doc[..synopsis_end];
        for (name, _, _) in COMMANDS {
            assert!(
                synopsis.contains(&format!("mmdb-cli <dir> {name}")),
                "module doc synopsis missing {name}"
            );
        }
    }
}
