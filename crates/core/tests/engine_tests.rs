//! Engine-level tests: transaction lifecycle, checkpointing under load,
//! crash/recovery for every algorithm, and the two-color / COU protocols
//! observed through the public API.

use mmdb_core::{
    Algorithm, CheckpointStart, CkptMode, CommitDurability, LogMode, Mmdb, MmdbConfig, MmdbError,
    RecordId, StepOutcome,
};

fn small(algorithm: Algorithm) -> MmdbConfig {
    let mut c = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        c.params.log_mode = LogMode::StableTail;
    }
    c
}

fn db(algorithm: Algorithm) -> Mmdb {
    Mmdb::open_in_memory(small(algorithm)).unwrap()
}

fn val(db: &Mmdb, fill: u32) -> Vec<u32> {
    vec![fill; db.record_words()]
}

#[test]
fn txn_read_your_writes_and_isolation() {
    let mut db = db(Algorithm::FuzzyCopy);
    let v1 = val(&db, 1);

    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(5), &v1).unwrap();
    // the writer sees its own staged value
    assert_eq!(db.read(t, RecordId(5)).unwrap(), v1);
    // the database does not, until commit
    assert_eq!(db.read_committed(RecordId(5)).unwrap(), val(&db, 0));
    db.commit(t).unwrap();
    assert_eq!(db.read_committed(RecordId(5)).unwrap(), v1);
}

#[test]
fn abort_discards_staged_writes() {
    let mut db = db(Algorithm::FuzzyCopy);
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(5), &val(&db, 9)).unwrap();
    db.abort(t).unwrap();
    assert_eq!(db.read_committed(RecordId(5)).unwrap(), val(&db, 0));
    // the transaction is gone
    assert!(db.read(t, RecordId(5)).is_err());
    assert_eq!(db.txn_stats().aborted_other, 1);
}

#[test]
fn wrong_record_size_rejected() {
    let mut db = db(Algorithm::FuzzyCopy);
    let t = db.begin_txn().unwrap();
    assert!(matches!(
        db.write(t, RecordId(0), &[1, 2, 3]),
        Err(MmdbError::BadRecordSize { .. })
    ));
}

#[test]
fn crash_recover_roundtrip_every_algorithm() {
    for alg in Algorithm::ALL_EXTENDED {
        let mut db = db(alg);
        // a spread of committed transactions
        for i in 0..40u64 {
            db.run_txn(&[
                (RecordId(i * 50 % 2048), val(&db, i as u32 + 1)),
                (RecordId((i * 97 + 13) % 2048), val(&db, i as u32 + 100)),
            ])
            .unwrap();
        }
        db.checkpoint().unwrap();
        // more transactions after the checkpoint
        for i in 0..25u64 {
            db.run_txn(&[(RecordId((i * 31 + 7) % 2048), val(&db, 7000 + i as u32))])
                .unwrap();
        }
        let before = db.fingerprint();
        db.crash().unwrap();
        assert!(db.is_crashed());
        assert!(
            db.begin_txn().is_err(),
            "{alg}: crashed engine refuses work"
        );
        let report = db.recover().unwrap();
        assert_eq!(db.fingerprint(), before, "{alg}: lost or ghost updates");
        assert!(!db.is_crashed());
        assert!(report.segments_loaded > 0);

        // the engine keeps working after recovery, including checkpoints
        db.run_txn(&[(RecordId(1), val(&db, 424242))]).unwrap();
        db.checkpoint().unwrap();
        let before2 = db.fingerprint();
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), before2, "{alg}: second cycle");
    }
}

#[test]
fn crash_mid_checkpoint_every_algorithm() {
    for alg in Algorithm::ALL_EXTENDED {
        let mut db = db(alg);
        for i in 0..30u64 {
            db.run_txn(&[(RecordId(i * 64 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap(); // a complete checkpoint exists
        for i in 0..10u64 {
            db.run_txn(&[(RecordId(i * 3 % 2048), val(&db, 500 + i as u32))])
                .unwrap();
        }
        let before = db.fingerprint();
        // begin a second checkpoint and crash partway through its sweep
        match db.try_begin_checkpoint().unwrap() {
            CheckpointStart::Started(_) => {}
            CheckpointStart::Quiescing => unreachable!("no active txns"),
        }
        for _ in 0..5 {
            if let StepOutcome::Done { .. } = db.checkpoint_step().unwrap() {
                break;
            }
        }
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(
            db.fingerprint(),
            before,
            "{alg}: torn checkpoint broke recovery"
        );
    }
}

#[test]
fn interleaved_transactions_and_checkpoint_steps() {
    for alg in Algorithm::ALL_EXTENDED {
        let mut db = db(alg);
        for i in 0..20u64 {
            db.run_txn(&[(RecordId(i * 100 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.try_begin_checkpoint().unwrap();
        // interleave: one transaction, one checkpoint step, repeat
        let mut done = false;
        let mut i = 0u64;
        while !done {
            i += 1;
            db.run_txn(&[(RecordId((i * 37) % 2048), val(&db, 999 + i as u32))])
                .unwrap();
            if db.is_checkpoint_active() {
                match db.checkpoint_step().unwrap() {
                    StepOutcome::Done { .. } => done = true,
                    StepOutcome::WaitingForLog => unreachable!("Force policy"),
                    StepOutcome::Progress { .. } => {}
                }
            } else {
                done = true;
            }
        }
        // crash + recover must still land exactly on the committed state
        let before = db.fingerprint();
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), before, "{alg}");
    }
}

#[test]
fn cou_quiesce_flow() {
    let mut db = db(Algorithm::CouCopy);
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(0), &val(&db, 1)).unwrap();

    // a COU checkpoint cannot begin while t is active: it quiesces
    assert_eq!(
        db.try_begin_checkpoint().unwrap(),
        CheckpointStart::Quiescing
    );
    assert!(db.is_quiescing());
    // new transactions are refused during the drain
    assert!(matches!(db.begin_txn(), Err(MmdbError::Quiesced)));
    assert!(!db.is_checkpoint_active());

    // when the straggler commits, the checkpoint begins automatically
    db.commit(t).unwrap();
    assert!(!db.is_quiescing());
    assert!(db.is_checkpoint_active());
    // and transactions are admitted again immediately (§3.2.2: "once the
    // timestamp is assigned and the begin-checkpoint entry is in the log,
    // transaction processing can begin again")
    let t2 = db.begin_txn().unwrap();
    db.write(t2, RecordId(1), &val(&db, 2)).unwrap();
    db.commit(t2).unwrap();

    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    assert_eq!(db.ckpt_stats().completed, 1);
}

#[test]
fn cou_sync_checkpoint_refuses_open_txns() {
    let mut db = db(Algorithm::CouFlush);
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(0), &val(&db, 1)).unwrap();
    assert!(matches!(db.checkpoint(), Err(MmdbError::Quiesced)));
    // the failed attempt must not leave the engine quiescing forever
    db.commit(t).unwrap();
    db.checkpoint().unwrap();
}

#[test]
fn two_color_violation_aborts_and_rerun_succeeds() {
    let mut db = db(Algorithm::TwoColorCopy);
    // dirty two segments at opposite ends so the sweep separates them
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.run_txn(&[(RecordId(2047), val(&db, 2))]).unwrap();

    db.try_begin_checkpoint().unwrap();
    // sweep past segment 0 only: segment 0 black, segment 31 still white
    loop {
        match db.checkpoint_step().unwrap() {
            StepOutcome::Progress { io_words } if io_words > 0 => break,
            StepOutcome::Done { .. } => panic!("checkpoint finished too early"),
            _ => {}
        }
    }

    // a transaction touching both segment 0 (black) and 31 (white) violates
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(0), &val(&db, 10)).unwrap();
    let err = db.write(t, RecordId(2047), &val(&db, 11)).unwrap_err();
    assert!(matches!(err, MmdbError::TwoColorViolation { .. }));
    // the transaction was auto-aborted
    assert!(db.read(t, RecordId(0)).is_err());
    assert_eq!(db.txn_stats().aborted_two_color, 1);

    // run_txn retries until the checkpoint advances past the conflict
    let run = db
        .run_txn(&[(RecordId(0), val(&db, 10)), (RecordId(2047), val(&db, 11))])
        .unwrap();
    assert!(run.runs >= 1);
    assert_eq!(db.read_committed(RecordId(0)).unwrap(), val(&db, 10));
    assert_eq!(db.read_committed(RecordId(2047)).unwrap(), val(&db, 11));

    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    // two-color checkpoints are transaction-consistent; crash/recover
    let before = db.fingerprint();
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.fingerprint(), before);
}

#[test]
fn two_color_same_color_txns_pass() {
    let mut db = db(Algorithm::TwoColorFlush);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.try_begin_checkpoint().unwrap();
    // all-white access: segments 0 is the only white (dirty) one
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(1), &val(&db, 5)).unwrap(); // segment 0, white
    db.write(t, RecordId(2), &val(&db, 6)).unwrap(); // segment 0, white
    db.commit(t).unwrap();
    // all-black access
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(200), &val(&db, 7)).unwrap(); // clean segment: black
    db.write(t, RecordId(300), &val(&db, 8)).unwrap(); // clean segment: black
    db.commit(t).unwrap();
    assert_eq!(db.txn_stats().aborted_two_color, 0);
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
}

#[test]
fn lazy_commit_loses_only_a_suffix() {
    let mut config = small(Algorithm::FuzzyCopy);
    config.commit_durability = CommitDurability::Lazy;
    let mut db = Mmdb::open_in_memory(config).unwrap();

    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.checkpoint().unwrap();
    // two lazy commits that never get forced
    db.run_txn(&[(RecordId(10), val(&db, 2))]).unwrap();
    db.run_txn(&[(RecordId(20), val(&db, 3))]).unwrap();

    db.crash().unwrap();
    db.recover().unwrap();
    // the unforced suffix is gone...
    assert_eq!(db.read_committed(RecordId(10)).unwrap(), val(&db, 0));
    assert_eq!(db.read_committed(RecordId(20)).unwrap(), val(&db, 0));
    // ...but the checkpointed prefix is intact
    assert_eq!(db.read_committed(RecordId(0)).unwrap(), val(&db, 1));
}

#[test]
fn overhead_report_separates_meters() {
    let mut db = db(Algorithm::CouCopy);
    for i in 0..10u64 {
        db.run_txn(&[(RecordId(i), val(&db, i as u32))]).unwrap();
    }
    db.checkpoint().unwrap();
    // updates during an active checkpoint trigger COU copies (sync cost)
    db.try_begin_checkpoint().unwrap();
    db.run_txn(&[(RecordId(2000), val(&db, 9))]).unwrap();
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    let report = db.overhead_report();
    assert!(report.committed >= 11);
    assert!(
        report.async_ckpt.total() > 0,
        "checkpointer work must be metered"
    );
    assert!(
        report.sync_ckpt.total() > 0,
        "the COU copy is synchronous transaction-side work"
    );
    assert!(report.base.total() > 0);
    assert!(report.ckpt_overhead_per_txn() > 0.0);
}

#[test]
fn fastfuzzy_requires_stable_tail_config() {
    let mut c = MmdbConfig::small(Algorithm::FastFuzzy);
    c.params.log_mode = LogMode::VolatileTail;
    assert!(Mmdb::open_in_memory(c).is_err());
}

#[test]
fn full_mode_checkpoints_everything() {
    let mut c = small(Algorithm::FuzzyCopy);
    c.params.ckpt_mode = CkptMode::Full;
    let mut db = Mmdb::open_in_memory(c).unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    // even with no writes, full mode flushes all 32 segments each time
    let report = db.checkpoint().unwrap();
    assert_eq!(report.segments_flushed, 32);
}

#[test]
fn file_backed_engine_survives_process_restart() {
    let dir = std::env::temp_dir().join(format!("mmdb-core-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let config = small(Algorithm::CouCopy);
    let fingerprint = {
        let (mut db, recovered) = Mmdb::open_dir(config, &dir).unwrap();
        assert!(recovered.is_none(), "fresh directory");
        for i in 0..30u64 {
            db.run_txn(&[(RecordId(i * 61 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap();
        // post-checkpoint transactions, durable via forced commits
        db.run_txn(&[(RecordId(100), val(&db, 777))]).unwrap();
        db.fingerprint()
        // drop = process dies without a clean shutdown
    };

    let (db, recovered) = Mmdb::open_dir(config, &dir).unwrap();
    let report = recovered.expect("should have recovered from files");
    assert!(report.segments_loaded > 0);
    assert_eq!(db.fingerprint(), fingerprint);
    assert_eq!(db.read_committed(RecordId(100)).unwrap(), val(&db, 777));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_on_live_engine_rejected() {
    let mut db = db(Algorithm::FuzzyCopy);
    assert!(db.recover().is_err());
}

#[test]
fn recovery_without_any_checkpoint_fails_cleanly() {
    let mut db = db(Algorithm::FuzzyCopy);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.crash().unwrap();
    assert!(matches!(db.recover(), Err(MmdbError::NoCompleteBackup)));
}

#[test]
fn checkpoints_alternate_copies_across_recovery() {
    let mut db = db(Algorithm::FuzzyCopy);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    let r1 = db.checkpoint().unwrap();
    assert_eq!(r1.copy, 1);
    let r2 = db.checkpoint().unwrap();
    assert_eq!(r2.copy, 0);
    db.crash().unwrap();
    let rec = db.recover().unwrap();
    assert_eq!(rec.ckpt.raw(), 2, "recovered from the newest checkpoint");
    // next checkpoint must NOT overwrite the copy we just recovered from
    let r3 = db.checkpoint().unwrap();
    assert_ne!(r3.copy, rec.copy);
}

#[test]
fn old_copy_buffer_is_bounded_by_database_size() {
    let mut db = db(Algorithm::CouCopy);
    for i in 0..32u64 {
        db.run_txn(&[(RecordId(i * 64), val(&db, 1))]).unwrap();
    }
    db.try_begin_checkpoint().unwrap();
    // touch every segment while the checkpoint is active
    for i in 0..32u64 {
        db.run_txn(&[(RecordId(i * 64 + 1), val(&db, 2))]).unwrap();
    }
    // the snapshot buffer can grow to at most the database size (§3.2.2)
    assert!(db.old_copy_words() <= 32 * 2048);
    assert!(db.old_copy_words() > 0);
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    assert_eq!(db.old_copy_words(), 0, "all old copies consumed");
}

#[test]
fn couac_begins_without_quiescing() {
    // The whole point of the AC variant: a checkpoint can begin while
    // transactions are in flight, with no admission stall.
    let mut db = db(Algorithm::CouAc);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.checkpoint().unwrap();

    let straggler = db.begin_txn().unwrap();
    db.write(straggler, RecordId(100), &val(&db, 7)).unwrap();

    // begins immediately — contrast with CouCopy's Quiescing
    match db.try_begin_checkpoint().unwrap() {
        CheckpointStart::Started(report) => {
            assert_eq!(report.ckpt.raw(), 2);
        }
        CheckpointStart::Quiescing => panic!("COUAC must not quiesce"),
    }
    assert!(db.is_checkpoint_active());
    // new transactions are admitted during the whole window
    db.run_txn(&[(RecordId(200), val(&db, 9))]).unwrap();
    // and the straggler commits mid-checkpoint
    db.commit(straggler).unwrap();

    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    // everything committed must survive a crash
    let before = db.fingerprint();
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.fingerprint(), before);
    assert_eq!(db.read_committed(RecordId(100)).unwrap(), val(&db, 7));
    assert_eq!(db.read_committed(RecordId(200)).unwrap(), val(&db, 9));
}

#[test]
fn couac_marker_carries_active_list() {
    // A transaction active at the (non-quiesced) begin must extend the
    // recovery scan-back, exactly like a fuzzy checkpoint's marker.
    let mut db = db(Algorithm::CouAc);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.checkpoint().unwrap();

    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(50), &val(&db, 5)).unwrap();
    db.try_begin_checkpoint().unwrap();
    db.commit(t).unwrap();
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    let before = db.fingerprint();
    db.crash().unwrap();
    let report = db.recover().unwrap();
    assert_eq!(db.fingerprint(), before);
    // the replay had to reach back before the begin marker to T's begin
    assert!(report.txns_replayed >= 1);
}

#[test]
fn wait_policy_blocks_until_commit_forces_the_log() {
    // WalPolicy::Wait + lazy commits: the checkpointer must not flush a
    // segment image whose log records are still in the volatile tail.
    // It reports WaitingForLog until a group-commit force catches up.
    let mut cfg = small(Algorithm::FuzzyCopy);
    cfg.wal_policy = mmdb_core::WalPolicy::Wait;
    cfg.commit_durability = CommitDurability::Lazy;
    let mut db = Mmdb::open_in_memory(cfg).unwrap();

    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.force_log().unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap(); // seed both copies (forces internally)

    // a lazy commit that stays in the tail
    db.run_txn(&[(RecordId(64), val(&db, 2))]).unwrap();
    db.try_begin_checkpoint().unwrap();
    // the only dirty segment's image is gated
    let mut waits = 0;
    loop {
        match db.checkpoint_step().unwrap() {
            StepOutcome::WaitingForLog => {
                waits += 1;
                if waits == 3 {
                    // the group-commit daemon arrives
                    db.force_log().unwrap();
                }
                assert!(waits < 10, "gate never opened");
            }
            StepOutcome::Done { .. } => break,
            StepOutcome::Progress { .. } => {}
        }
    }
    assert!(waits >= 1, "the WAL gate should have closed at least once");

    // durability is intact end to end
    let before = db.fingerprint();
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.fingerprint(), before);
}

#[test]
fn wait_policy_full_cycle_every_algorithm() {
    // Force-commit mode keeps the log durable, so Wait never actually
    // blocks — but every algorithm must run the same protocol paths.
    for alg in Algorithm::ALL_EXTENDED {
        let mut cfg = small(alg);
        cfg.wal_policy = mmdb_core::WalPolicy::Wait;
        let mut db = Mmdb::open_in_memory(cfg).unwrap();
        for i in 0..20u64 {
            db.run_txn(&[(RecordId(i * 100 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap();
        db.run_txn(&[(RecordId(5), val(&db, 99))]).unwrap();
        let before = db.fingerprint();
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), before, "{alg}");
    }
}

#[test]
fn reads_alone_can_violate_two_color() {
    // §3.2.1: "no transaction is allowed to access both white and black
    // records" — access, not just update. A read-only straddler aborts.
    let mut db = db(Algorithm::TwoColorFlush);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.run_txn(&[(RecordId(2047), val(&db, 2))]).unwrap();
    db.try_begin_checkpoint().unwrap();
    // advance past segment 0 so colors differ
    loop {
        match db.checkpoint_step().unwrap() {
            StepOutcome::Progress { io_words } if io_words > 0 => break,
            StepOutcome::Done { .. } => panic!("too fast"),
            _ => {}
        }
    }
    let t = db.begin_txn().unwrap();
    db.read(t, RecordId(0)).unwrap(); // black now
    let err = db.read(t, RecordId(2047)).unwrap_err(); // still white
    assert!(matches!(err, MmdbError::TwoColorViolation { .. }));
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
}

#[test]
fn corrupted_backup_header_falls_back_to_other_copy() {
    // Media corruption on one ping-pong copy's header: recovery must
    // fall back to the other complete copy rather than fail or restore
    // garbage.
    let dir = std::env::temp_dir().join(format!("mmdb-corrupt-hdr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = small(Algorithm::FuzzyCopy);

    let expected = {
        let (mut db, _) = Mmdb::open_dir(config, &dir).unwrap();
        for i in 0..30u64 {
            db.run_txn(&[(RecordId(i * 11 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap(); // ckpt 1 → copy 1
        db.run_txn(&[(RecordId(9), val(&db, 999))]).unwrap();
        db.checkpoint().unwrap(); // ckpt 2 → copy 0 (newest)
        db.fingerprint()
    };

    // scribble over copy 0's header (the newest complete copy)
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("backup.0"))
            .unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&[0xAB; 64]).unwrap();
    }

    let (db, recovered) = Mmdb::open_dir(config, &dir).unwrap();
    let report = recovered.expect("copy 1 still recoverable");
    assert_eq!(report.ckpt.raw(), 1, "fell back to the older complete copy");
    // copy 1 + the log (which still has ckpt 2's interval) = same state
    assert_eq!(db.fingerprint(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_recoverability_passes_on_healthy_engine() {
    for alg in [
        Algorithm::FuzzyCopy,
        Algorithm::CouCopy,
        Algorithm::TwoColorCopy,
    ] {
        let mut db = db(alg);
        for i in 0..25u64 {
            db.run_txn(&[(RecordId(i * 19 % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap();
        db.run_txn(&[(RecordId(3), val(&db, 42))]).unwrap();
        let report = db.verify_recoverability().unwrap();
        assert!(report.segments_loaded > 0, "{alg}");
        // verification must not disturb the live engine
        db.run_txn(&[(RecordId(4), val(&db, 43))]).unwrap();
        assert_eq!(db.read_committed(RecordId(3)).unwrap(), val(&db, 42));
    }
}

#[test]
fn verify_recoverability_fails_without_backup() {
    let mut db = db(Algorithm::FuzzyCopy);
    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    assert!(matches!(
        db.verify_recoverability(),
        Err(MmdbError::NoCompleteBackup)
    ));
}

#[test]
fn same_record_twice_in_one_txn_last_write_wins() {
    let mut db = db(Algorithm::FuzzyCopy);
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(5), &val(&db, 1)).unwrap();
    db.write(t, RecordId(5), &val(&db, 2)).unwrap();
    // read-your-writes sees the latest staged value
    assert_eq!(db.read(t, RecordId(5)).unwrap(), val(&db, 2));
    db.commit(t).unwrap();
    assert_eq!(db.read_committed(RecordId(5)).unwrap(), val(&db, 2));
    // and so does recovery replay
    db.checkpoint().unwrap();
    let t = db.begin_txn().unwrap();
    db.write(t, RecordId(6), &val(&db, 7)).unwrap();
    db.write(t, RecordId(6), &val(&db, 8)).unwrap();
    db.commit(t).unwrap();
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.read_committed(RecordId(5)).unwrap(), val(&db, 2));
    assert_eq!(db.read_committed(RecordId(6)).unwrap(), val(&db, 8));
}

#[test]
fn segment_stats_track_the_population() {
    let mut db = db(Algorithm::CouCopy);
    let s = db.segment_stats();
    assert_eq!(s.total, 32);
    assert_eq!(
        (s.dirty_copy0, s.dirty_copy1, s.white, s.with_old_copy),
        (0, 0, 0, 0)
    );

    db.run_txn(&[(RecordId(0), val(&db, 1))]).unwrap();
    db.run_txn(&[(RecordId(100), val(&db, 2))]).unwrap(); // segment 1
    let s = db.segment_stats();
    assert_eq!(s.dirty_copy0, 2);
    assert_eq!(s.dirty_copy1, 2);

    db.checkpoint().unwrap(); // copy 1 (escalated full)
    let s = db.segment_stats();
    assert_eq!(s.dirty_copy1, 0, "copy 1 is now current");
    // "dirty" means modified-since-last-flush-to-that-copy; the two
    // updated segments still owe their content to copy 0 (never-modified
    // segments are not dirty — first-checkpoint seeding is handled by
    // full-escalation, not dirty bits)
    assert_eq!(s.dirty_copy0, 2);

    // mid-COU-checkpoint, an update parks an old copy
    db.checkpoint().unwrap(); // seed copy 0 too
    db.try_begin_checkpoint().unwrap();
    db.run_txn(&[(RecordId(2000), val(&db, 9))]).unwrap();
    assert_eq!(db.segment_stats().with_old_copy, 1);
    while db.is_checkpoint_active() {
        db.checkpoint_step().unwrap();
    }
    assert_eq!(db.segment_stats().with_old_copy, 0);
}

#[test]
fn for_each_record_scans_in_order() {
    let mut db = db(Algorithm::FuzzyCopy);
    db.run_txn(&[(RecordId(5), val(&db, 55)), (RecordId(9), val(&db, 99))])
        .unwrap();
    let mut seen = Vec::new();
    db.for_each_record(|rid, words| {
        if words[0] != 0 {
            seen.push((rid.raw(), words[0]));
        }
    })
    .unwrap();
    assert_eq!(seen, vec![(5, 55), (9, 99)]);
}
