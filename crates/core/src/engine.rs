//! The `Mmdb` engine: storage + log + transactions + checkpointer +
//! recovery, wired together with the paper's protocols.

use crate::config::{CommitDurability, MmdbConfig};
use crate::metrics::{Meters, OverheadReport};
use mmdb_audit::{Audit, AuditEvent, AuditReport, AuditViolation, PaintColor};
use mmdb_checkpoint::{BeginReport, Checkpointer, CkptReport, CkptStats, StepOutcome};
use mmdb_disk::{summarize, AuditedBackup, BackupStore, FileBackup, MemBackup, ObservedBackup};
use mmdb_log::{LogManager, LogRecord, LogStats, MemLogDevice, SegmentedLogDevice};
use mmdb_obs::{MetricsSnapshot, Obs, PaperOverhead, SpanRecord, Timer};
use mmdb_recovery::RecoveryReport;
use mmdb_storage::{Color, PendingInstall, ReadMirror, Storage};
use mmdb_sync::{LockRank, RankedMutex};
use mmdb_txn::{SeenColor, TxnStats, TxnTable};
use mmdb_types::{
    CheckpointId, CostMeter, Lsn, MmdbError, RecordId, Result, SegmentId, Timestamp, TxnId, Word,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of [`Mmdb::try_begin_checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointStart {
    /// The checkpoint began.
    Started(BeginReport),
    /// A COU checkpoint is waiting for active transactions to drain
    /// (§3.2.2 quiesce); it will begin automatically when the last one
    /// commits or aborts. New transactions are refused until then.
    Quiescing,
}

/// Segment-population snapshot returned by [`Mmdb::segment_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Total segments in the database.
    pub total: u64,
    /// Segments dirty with respect to ping-pong copy 0.
    pub dirty_copy0: u64,
    /// Segments dirty with respect to ping-pong copy 1.
    pub dirty_copy1: u64,
    /// Segments currently painted white (0 outside a 2C checkpoint).
    pub white: u64,
    /// Segments holding a COU old copy right now.
    pub with_old_copy: u64,
}

/// One deferred install of a prepared transaction branch (record,
/// segment, after-image, and the LSN just past its update record — the
/// checkpointer's write-ahead gate needs it at install time).
type PreparedInstall = (RecordId, SegmentId, Vec<Word>, mmdb_types::Lsn);

/// Outcome of [`Mmdb::run_txn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnRun {
    /// The committed transaction's id (of the successful run).
    pub txn: TxnId,
    /// Number of runs it took (1 = no two-color restart).
    pub runs: u32,
    /// End-LSN of the commit record: the log is durable through this
    /// transaction once `durable_lsn >= commit_lsn`. Under
    /// [`CommitDurability::Group`] the caller acks only after the
    /// watermark passes it; under `Force` it is already durable.
    pub commit_lsn: mmdb_types::Lsn,
}

/// The memory-resident database engine.
///
/// All data lives in main memory ([`Storage`]); a REDO log and two
/// ping-pong backup copies on (simulated or real) disk make it
/// crash-recoverable. The engine is deliberately single-threaded with an
/// explicitly-steppable checkpointer, so every interleaving of
/// transactions, checkpoint steps and crashes is expressible — and
/// therefore testable — deterministically. Wrap it in a mutex for
/// concurrent drivers.
pub struct Mmdb {
    config: MmdbConfig,
    storage: Storage,
    /// The REDO log, behind an interior lock (rank `engine-log`) so
    /// shared-mode committers can serialize at log append — the commit
    /// pipeline's single serial point. Exclusive paths use
    /// [`RankedMutex::get_mut`] (no locking cost).
    log: RankedMutex<LogManager>,
    backup: Box<dyn BackupStore>,
    /// The transaction table, behind an interior lock (rank
    /// `engine-txns`) for the same reason as `log`.
    txns: RankedMutex<TxnTable>,
    ckpt: Checkpointer,
    meters: Meters,
    tau_counter: AtomicU64,
    /// One write latch per segment (ranks `segment[j]`, below the engine
    /// gate and above `engine-txns`/`engine-log`): shared-mode committers
    /// latch their write set in ascending segment order so
    /// disjoint-segment transactions run concurrently. Empty when the
    /// database has more segments than the rank space allows — the
    /// shared path then simply refuses and callers stay on the
    /// exclusive path.
    latches: Vec<RankedMutex<()>>,
    quiesce_pending: bool,
    crashed: bool,
    /// Replay floor of the in-progress checkpoint: the earliest LSN
    /// recovery would need if that checkpoint becomes the one restored
    /// from (its begin marker, extended backward to the begin record of
    /// the oldest transaction active at the marker).
    pending_floor: Option<(CheckpointId, mmdb_types::Lsn)>,
    /// Replay floors of the newest complete checkpoint per ping-pong
    /// copy; the log before min(both) is unreachable by any future
    /// recovery and is truncated away when `auto_truncate_log` is set.
    replay_floor: [Option<mmdb_types::Lsn>; 2],
    /// Replication truncation pin: when set (a standby is attached),
    /// auto-truncation keeps every byte at or above this LSN readable,
    /// so log shipping can never be outrun by the checkpointer. Advanced
    /// by standby acks; raw LSN in the atomic.
    repl_truncate_pin: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    /// Install lists of *prepared* transaction branches (sharded
    /// two-phase commit): their update records are already durable, but
    /// installation waits for the coordinator's decision.
    prepared_installs: std::collections::HashMap<TxnId, Vec<PreparedInstall>>,
    /// End-LSN of the most recent commit record, as a raw LSN advanced
    /// with `fetch_max` (what group committers wait on; see
    /// [`TxnRun::commit_lsn`]).
    last_commit_lsn: AtomicU64,
    /// The shared protocol-audit handle (disabled unless
    /// [`MmdbConfig::audit`] is set).
    audit: Audit,
    /// The shared telemetry handle (disabled unless
    /// [`MmdbConfig::telemetry`] is set).
    obs: Obs,
    /// Running while a COU quiesce drain is in progress, so the stall can
    /// be reported as a `ckpt.quiesce` span when the checkpoint begins.
    quiesce_timer: Timer,
}

impl std::fmt::Debug for Mmdb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmdb")
            .field("algorithm", &self.config.algorithm)
            .field("crashed", &self.crashed)
            .field("active_txns", &self.txns.lock().active_count())
            .field("checkpoint_active", &self.ckpt.is_active())
            .finish()
    }
}

impl Mmdb {
    /// An engine over in-memory devices (tests, simulation, examples).
    pub fn open_in_memory(config: MmdbConfig) -> Result<Mmdb> {
        config.validate().map_err(MmdbError::Invalid)?;
        let meters = Meters::new(config.params.cost);
        let storage = Storage::new(config.params.db)?;
        let log = LogManager::new(
            Box::new(MemLogDevice::new()),
            config.params.log_mode,
            meters.logging.clone(),
        );
        let backup = Box::new(MemBackup::new(config.params.db));
        Ok(Self::assemble(config, storage, log, backup, meters))
    }

    /// An engine over a caller-supplied log device (and an in-memory
    /// backup) — fault-injection tests hand in a
    /// [`mmdb_log::FlakyLogDevice`] to exercise the error paths a healthy
    /// device never reaches.
    pub fn open_with_log_device(
        config: MmdbConfig,
        device: Box<dyn mmdb_log::LogDevice>,
    ) -> Result<Mmdb> {
        config.validate().map_err(MmdbError::Invalid)?;
        let meters = Meters::new(config.params.cost);
        let storage = Storage::new(config.params.db)?;
        let log = LogManager::new(device, config.params.log_mode, meters.logging.clone());
        let backup = Box::new(MemBackup::new(config.params.db));
        Ok(Self::assemble(config, storage, log, backup, meters))
    }

    /// An engine over file devices in `dir` (a segmented log under
    /// `log/`, backup copies `backup.0`/`backup.1`). If the directory
    /// already holds a complete backup, the database is recovered from it
    /// before the engine is returned.
    pub fn open_dir(config: MmdbConfig, dir: &Path) -> Result<(Mmdb, Option<RecoveryReport>)> {
        config.validate().map_err(MmdbError::Invalid)?;
        std::fs::create_dir_all(dir)?;
        let meters = Meters::new(config.params.cost);
        let storage = Storage::new(config.params.db)?;
        let log = LogManager::new(
            Box::new(SegmentedLogDevice::open(
                &dir.join("log"),
                config.log_chunk_bytes,
                config.sync_files,
            )?),
            config.params.log_mode,
            meters.logging.clone(),
        );
        let mut file_backup =
            FileBackup::open(&dir.join("backup"), config.params.db, config.sync_files)?;
        file_backup.set_compress(config.compress_backups);
        let mut backup: Box<dyn BackupStore> = Box::new(file_backup);
        let has_backup = backup.recovery_copy().is_ok();
        let mut engine = Self::assemble(config, storage, log, backup, meters);
        let report = if has_backup {
            Some(engine.recover_internal()?)
        } else {
            None
        };
        Ok((engine, report))
    }

    fn assemble(
        config: MmdbConfig,
        storage: Storage,
        mut log: LogManager,
        backup: Box<dyn BackupStore>,
        meters: Meters,
    ) -> Mmdb {
        log.set_tail_threshold(config.log_tail_flush_bytes);
        log.set_force_latency(
            (config.log_force_latency_us > 0)
                .then(|| std::time::Duration::from_micros(u64::from(config.log_force_latency_us))),
        );
        let audit = if config.audit {
            Audit::enabled()
        } else {
            Audit::disabled()
        };
        let obs = if config.telemetry {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        log.set_audit(audit.clone());
        log.set_obs(obs.clone());
        // Observed innermost (device-level latencies), audited outside it.
        let backup: Box<dyn BackupStore> = if obs.is_enabled() {
            Box::new(ObservedBackup::new(backup, obs.clone()))
        } else {
            backup
        };
        let backup: Box<dyn BackupStore> = if audit.is_enabled() {
            Box::new(AuditedBackup::new(backup, audit.clone()))
        } else {
            backup
        };
        let mut ckpt = Checkpointer::new(
            config.algorithm,
            config.params.ckpt_mode,
            config.wal_policy,
            meters.async_ckpt.clone(),
        );
        ckpt.set_audit(audit.clone());
        ckpt.set_obs(obs.clone());
        let n_segments = config.params.db.n_segments() as usize;
        let latches = if n_segments <= LockRank::MAX_SEGMENT_INDEX + 1 {
            (0..n_segments)
                .map(|i| RankedMutex::new("segment", LockRank::segment(i), ()))
                .collect()
        } else {
            Vec::new()
        };
        Mmdb {
            config,
            storage,
            log: RankedMutex::new("engine-log", LockRank::ENGINE_LOG, log),
            backup,
            txns: RankedMutex::new("engine-txns", LockRank::ENGINE_TXNS, TxnTable::new()),
            ckpt,
            meters,
            tau_counter: AtomicU64::new(0),
            latches,
            quiesce_pending: false,
            crashed: false,
            pending_floor: None,
            replay_floor: [None, None],
            repl_truncate_pin: None,
            prepared_installs: std::collections::HashMap::new(),
            last_commit_lsn: AtomicU64::new(0),
            audit,
            obs,
            quiesce_timer: Timer::default(),
        }
    }

    // ----- accessors -------------------------------------------------------

    /// The engine configuration.
    pub fn config(&self) -> &MmdbConfig {
        &self.config
    }

    /// Record size in words — values passed to [`Mmdb::write`] must have
    /// exactly this length.
    pub fn record_words(&self) -> usize {
        self.config.params.db.s_rec as usize
    }

    /// Number of records in the database.
    pub fn n_records(&self) -> u64 {
        self.storage.n_records()
    }

    /// Number of segments in the database.
    pub fn n_segments(&self) -> u64 {
        self.storage.n_segments()
    }

    /// Transaction statistics (commits, aborts, restart rate).
    pub fn txn_stats(&self) -> TxnStats {
        self.txns.lock().stats()
    }

    /// Checkpointer statistics.
    pub fn ckpt_stats(&self) -> CkptStats {
        self.ckpt.stats()
    }

    /// Log statistics.
    pub fn log_stats(&self) -> LogStats {
        self.log.lock().stats()
    }

    /// Report of the most recently completed checkpoint.
    pub fn last_ckpt_report(&self) -> Option<CkptReport> {
        self.ckpt.last_report().copied()
    }

    /// The paper's overhead accounting, from the engine's meters.
    pub fn overhead_report(&self) -> OverheadReport {
        OverheadReport {
            committed: self.txns.lock().stats().committed,
            sync_ckpt: self.meters.sync_ckpt.snapshot(),
            async_ckpt: self.meters.async_ckpt.snapshot(),
            logging: self.meters.logging.snapshot(),
            base: self.meters.base.snapshot(),
        }
    }

    /// The engine's cost meters (for simulation harnesses).
    pub fn meters(&self) -> &Meters {
        &self.meters
    }

    /// The shared protocol-audit handle (disabled unless
    /// [`MmdbConfig::audit`] is set). External drivers may clone it to
    /// feed their own events into the same checker stream.
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// Is protocol auditing enabled?
    pub fn is_audited(&self) -> bool {
        self.audit.is_enabled()
    }

    /// Coverage/violation snapshot of the protocol audit (`None` when
    /// auditing is disabled).
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.audit.report()
    }

    /// All protocol-invariant violations detected so far (empty when
    /// auditing is disabled — or when the engine behaves).
    pub fn audit_violations(&self) -> Vec<AuditViolation> {
        self.audit.violations()
    }

    /// The shared telemetry handle (disabled unless
    /// [`MmdbConfig::telemetry`] is set). External drivers may clone it
    /// to record their own metrics and spans into the same registry.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Is the telemetry layer enabled?
    pub fn is_observed(&self) -> bool {
        self.obs.is_enabled()
    }

    /// The most recent `limit` trace spans plus the count of spans
    /// dropped by the bounded ring buffer (empty/zero when telemetry is
    /// disabled).
    pub fn trace_spans(&self, limit: usize) -> (Vec<SpanRecord>, u64) {
        let dropped = self.obs.span_stats().1;
        (self.obs.spans(limit), dropped)
    }

    /// A unified point-in-time metrics snapshot: everything the telemetry
    /// registry accumulated (latency histograms, device counters, spans'
    /// histograms) merged with the engine's own statistics structures
    /// (transactions, checkpointer, log, segment population) and the
    /// paper's overhead accounting — one source of truth for export.
    ///
    /// The counters injected here are *not* double-counted on hot paths:
    /// they come from the same [`TxnStats`]/[`CkptStats`]/[`LogStats`]
    /// structs the engine always maintains, copied in at snapshot time.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::capture(&self.obs);

        let t = self.txn_stats();
        snap.put_counter("txn.begun", t.begun);
        snap.put_counter("txn.committed", t.committed);
        snap.put_counter("txn.aborted_two_color", t.aborted_two_color);
        snap.put_counter("txn.aborted_other", t.aborted_other);

        let c = self.ckpt_stats();
        snap.put_counter("ckpt.completed", c.completed);
        snap.put_counter("ckpt.segments_flushed", c.segments_flushed);
        snap.put_counter("ckpt.segments_skipped", c.segments_skipped);
        snap.put_counter("ckpt.old_copies_flushed", c.old_copies_flushed);
        snap.put_counter("ckpt.log_forces", c.log_forces);
        snap.put_counter("ckpt.wal_waits", c.wal_waits);
        snap.put_counter("ckpt.io_words", c.io_words);

        let l = self.log_stats();
        snap.put_counter("log.records", l.records);
        snap.put_counter("log.bytes", l.bytes);
        snap.put_counter("log.forces", l.forces);
        snap.put_gauge("log.lost_on_crash_bytes", l.lost_on_crash);

        let s = self.segment_stats();
        snap.put_gauge("seg.total", s.total);
        snap.put_gauge("seg.dirty_copy0", s.dirty_copy0);
        snap.put_gauge("seg.dirty_copy1", s.dirty_copy1);
        snap.put_gauge("seg.white", s.white);
        snap.put_gauge("seg.with_old_copy", s.with_old_copy);
        snap.put_gauge("storage.old_copy_words", self.old_copy_words());

        let r = self.overhead_report();
        snap.paper = Some(PaperOverhead {
            committed: r.committed,
            sync_ckpt_total: r.sync_ckpt.total(),
            async_ckpt_total: r.async_ckpt.total(),
            logging_total: r.logging.total(),
            base_total: r.base.total(),
            sync_ckpt_per_txn: r.sync_per_txn(),
            async_ckpt_per_txn: r.async_per_txn(),
            logging_per_txn: if r.committed == 0 {
                0.0
            } else {
                r.logging.total() as f64 / r.committed as f64
            },
            ckpt_overhead_per_txn: r.ckpt_overhead_per_txn(),
        });
        snap
    }

    /// Content fingerprint of the primary database (test aid).
    pub fn fingerprint(&self) -> u64 {
        self.storage.fingerprint()
    }

    /// Words currently held in COU old copies (snapshot buffer footprint).
    pub fn old_copy_words(&self) -> u64 {
        self.storage.old_copy_words()
    }

    /// A point-in-time observability snapshot of the segment population:
    /// how many segments are dirty with respect to each ping-pong copy,
    /// how many are painted white (mid two-color checkpoint), and how
    /// many hold COU old copies. What an operator's dashboard would poll.
    pub fn segment_stats(&self) -> SegmentStats {
        let mut stats = SegmentStats::default();
        for sid in self.storage.segment_ids() {
            if self.storage.is_dirty(sid, 0).expect("in range") {
                stats.dirty_copy0 += 1;
            }
            if self.storage.is_dirty(sid, 1).expect("in range") {
                stats.dirty_copy1 += 1;
            }
            if self.storage.has_old(sid).expect("in range") {
                stats.with_old_copy += 1;
            }
        }
        stats.white = self.storage.white_count();
        stats.total = self.storage.n_segments();
        stats
    }

    /// Visits every record's committed value in id order (index rebuilds,
    /// exports). The callback gets the record id and its words.
    pub fn for_each_record(&self, mut f: impl FnMut(RecordId, &[Word])) -> Result<()> {
        self.ensure_alive()?;
        for rid in 0..self.storage.n_records() {
            f(RecordId(rid), self.storage.read_record(RecordId(rid))?);
        }
        Ok(())
    }

    /// Has the engine crashed (and not yet recovered)?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Is a checkpoint in progress?
    pub fn is_checkpoint_active(&self) -> bool {
        self.ckpt.is_active()
    }

    /// Is the engine waiting for transactions to drain before a COU
    /// checkpoint can begin?
    pub fn is_quiescing(&self) -> bool {
        self.quiesce_pending
    }

    fn ensure_alive(&self) -> Result<()> {
        if self.crashed {
            return Err(MmdbError::Invalid(
                "the engine has crashed; call recover() first".into(),
            ));
        }
        Ok(())
    }

    fn next_tau(&self) -> Timestamp {
        Timestamp(self.tau_counter.fetch_add(1, Ordering::SeqCst) + 1)
    }

    // ----- transactions ----------------------------------------------------

    /// Begins a transaction. Fails with [`MmdbError::Quiesced`] while a
    /// COU checkpoint begin is draining active transactions.
    pub fn begin_txn(&mut self) -> Result<TxnId> {
        self.begin_txn_run(1)
    }

    fn begin_txn_run(&mut self, run: u32) -> Result<TxnId> {
        self.ensure_alive()?;
        if self.quiesce_pending {
            return Err(MmdbError::Quiesced);
        }
        let t = self.obs.timer();
        let tau = self.next_tau();
        let id = self.txns.get_mut().begin(tau, mmdb_types::Lsn::ZERO, run);
        let lsn = self
            .log
            .get_mut()
            .append(&LogRecord::TxnBegin { txn: id, tau });
        self.txns
            .get_mut()
            .get_mut(id)
            .expect("just created")
            .begin_lsn = lsn;
        self.obs
            .span_end("txn.begin", "txn.begin_ns", t, || format!("{id} run {run}"));
        Ok(id)
    }

    /// Reads a record within a transaction (observes two-color state and
    /// the transaction's own staged writes — read-your-writes).
    pub fn read(&mut self, txn: TxnId, rid: RecordId) -> Result<Vec<Word>> {
        self.ensure_alive()?;
        let sid = self.storage.segment_of(rid)?;
        self.check_color(txn, sid)?;
        // read-your-writes: latest staged value wins
        let t = self.txns.get_mut().get(txn)?;
        if let Some(w) = t.writes.iter().rev().find(|w| w.record == rid) {
            return Ok(w.value.clone());
        }
        Ok(self.storage.read_record(rid)?.to_vec())
    }

    /// Stages a write within a transaction (shadow-copy scheme: nothing
    /// touches the database until commit).
    pub fn write(&mut self, txn: TxnId, rid: RecordId, value: &[Word]) -> Result<()> {
        self.ensure_alive()?;
        if value.len() != self.record_words() {
            return Err(MmdbError::BadRecordSize {
                expected: self.record_words() as u64,
                got: value.len() as u64,
            });
        }
        let sid = self.storage.segment_of(rid)?;
        self.check_color(txn, sid)?;
        self.txns
            .get_mut()
            .stage_write(txn, rid, sid, value.to_vec())
    }

    /// Observes the segment's color for the transaction if a two-color
    /// checkpoint is active; on a violation, aborts the transaction and
    /// returns the violation error.
    fn check_color(&mut self, txn: TxnId, sid: SegmentId) -> Result<()> {
        if !self.ckpt.two_color_active() {
            // still validate the txn exists
            self.txns.get_mut().get(txn)?;
            return Ok(());
        }
        let color = match self.storage.color(sid)? {
            Color::White => SeenColor::White,
            Color::Black => SeenColor::Black,
        };
        let t = self.txns.get_mut().get_mut(txn)?;
        if let Err(e) = t.observe_color(color, sid) {
            self.abort_two_color(txn)?;
            return Err(e);
        }
        Ok(())
    }

    /// Commits a transaction: re-validates two-color consistency of the
    /// write set, writes the REDO records and the commit record (forced
    /// under [`CommitDurability::Force`]), then installs the updates into
    /// the primary database (running the COU hook first).
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_alive()?;
        if self.txns.get_mut().get(txn)?.prepared.is_some() {
            return Err(MmdbError::Invalid(format!(
                "{txn} is prepared; finish it with commit_prepared/abort_prepared"
            )));
        }
        let commit_timer = self.obs.timer();

        // Commit-time color revalidation: installs happen *now*, so the
        // write set must be color-consistent *now* (colors may have
        // advanced since staging). This closes the race between staging
        // and the checkpointer's sweep that deferred installs open up.
        if self.ckpt.two_color_active() {
            let segs: Vec<SegmentId> = self
                .txns
                .get_mut()
                .get(txn)?
                .writes
                .iter()
                .map(|w| w.segment)
                .collect();
            for sid in segs {
                self.check_color(txn, sid)?;
            }
        }

        let gating = self
            .config
            .algorithm
            .needs_lsn_gating(self.config.params.log_mode);

        // REDO records for every staged write, then the commit record.
        let t = self.txns.get_mut().get(txn)?;
        let mut installs = Vec::with_capacity(t.writes.len());
        let writes: Vec<_> = t
            .writes
            .iter()
            .map(|w| (w.record, w.segment, w.value.clone()))
            .collect();
        for (record, segment, value) in writes {
            let rec = LogRecord::Update {
                txn,
                record,
                value: value.clone(),
            };
            let lsn = self.log.get_mut().append(&rec);
            installs.push((record, segment, value, rec.end_lsn(lsn)));
        }
        let commit_rec = LogRecord::Commit { txn };
        let commit_start = match self.config.commit_durability {
            CommitDurability::Force => self.log.get_mut().append_forced(&commit_rec)?,
            // Group: append only — the caller releases the engine lock and
            // waits on the durable-LSN watermark for a batched force to
            // cover `last_commit_lsn` before acking (Lazy never waits).
            CommitDurability::Lazy | CommitDurability::Group => {
                self.log.get_mut().append(&commit_rec)
            }
        };
        self.last_commit_lsn
            .fetch_max(commit_rec.end_lsn(commit_start).raw(), Ordering::SeqCst);

        // Install (the shadow-copy "overwrite old with new", §2.6).
        let tau = self.txns.get_mut().get(txn)?.tau;
        let installs_len = installs.len();
        for (record, segment, value, end_lsn) in installs {
            if self.audit.is_enabled() && self.ckpt.two_color_active() {
                let color = match self.storage.color(segment)? {
                    Color::White => PaintColor::White,
                    Color::Black => PaintColor::Black,
                };
                self.audit.emit(|| AuditEvent::InstallObserved {
                    txn,
                    sid: segment,
                    color,
                });
            }
            self.ckpt
                .on_before_install(&mut self.storage, segment, &self.meters.sync_ckpt)?;
            self.storage
                .install_record(record, &value, end_lsn, tau, &self.meters.base)?;
            if gating {
                // The transaction maintains the segment's LSN for the
                // checkpointer's write-ahead gate (C_lsn per update, §2.1).
                self.meters.sync_ckpt.lsn_op();
            }
        }

        self.txns.get_mut().finish_commit(txn)?;
        self.meters.base.txn_body(self.config.params.txn.c_trans);
        self.obs
            .span_end("txn.commit", "txn.commit_ns", commit_timer, || {
                format!("{txn}: {installs_len} writes")
            });
        self.maybe_begin_pending_checkpoint()?;
        Ok(())
    }

    /// Aborts a transaction (application abort: staged writes are simply
    /// dropped; an abort record keeps the log scanner's picture clean).
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_alive()?;
        if self.txns.get_mut().get(txn)?.prepared.is_some() {
            return Err(MmdbError::Invalid(format!(
                "{txn} is prepared; only the coordinator's decision may abort it"
            )));
        }
        self.log.get_mut().append(&LogRecord::Abort { txn });
        self.txns.get_mut().finish_abort(txn, false)?;
        self.maybe_begin_pending_checkpoint()?;
        Ok(())
    }

    /// Two-color abort: checkpoint-induced, charged as wasted work to the
    /// synchronous checkpoint meter (the paper: "Most of the cost comes
    /// from rerunning transactions that are aborted for violating the
    /// two-color restriction").
    fn abort_two_color(&mut self, txn: TxnId) -> Result<()> {
        let t = self.obs.timer();
        self.log.get_mut().append(&LogRecord::Abort { txn });
        self.txns.get_mut().finish_abort(txn, true)?;
        self.meters
            .sync_ckpt
            .txn_body(self.config.params.txn.c_trans);
        self.obs.span_end("txn.abort_rerun", "txn.abort_ns", t, || {
            format!("{txn} (two-color)")
        });
        self.maybe_begin_pending_checkpoint()?;
        Ok(())
    }

    /// Runs a whole transaction (begin, write every update, commit),
    /// automatically rerunning it after two-color aborts. Between reruns
    /// one checkpoint step is performed so the conflicting checkpoint
    /// makes progress (in a live system the checkpointer runs
    /// concurrently; the rerun would find the colors advanced).
    pub fn run_txn<V: AsRef<[Word]>>(&mut self, updates: &[(RecordId, V)]) -> Result<TxnRun> {
        let max_runs = 10 * self.n_segments().max(10) as u32;
        let mut runs = 0;
        loop {
            runs += 1;
            if runs > max_runs {
                return Err(MmdbError::Invalid(format!(
                    "transaction failed to commit after {max_runs} two-color reruns"
                )));
            }
            match self.try_run_once(runs, updates) {
                Ok(txn) => {
                    self.obs.observe("txn.runs_per_commit", runs as u64);
                    return Ok(TxnRun {
                        txn,
                        runs,
                        commit_lsn: self.last_commit_lsn(),
                    });
                }
                Err(MmdbError::TwoColorViolation { .. }) => {
                    // Let the checkpoint advance, then rerun.
                    if self.ckpt.is_active() {
                        match self.checkpoint_step()? {
                            StepOutcome::WaitingForLog => {
                                self.log.get_mut().force()?;
                            }
                            StepOutcome::Progress { .. } | StepOutcome::Done { .. } => {}
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_run_once<V: AsRef<[Word]>>(
        &mut self,
        run: u32,
        updates: &[(RecordId, V)],
    ) -> Result<TxnId> {
        let txn = self.begin_txn_run(run)?;
        for (rid, value) in updates {
            self.write(txn, *rid, value.as_ref())?;
        }
        self.commit(txn)?;
        Ok(txn)
    }

    // ----- sharded two-phase commit ----------------------------------------
    //
    // The sharded engine (`mmdb-shard`) runs cross-shard transactions as
    // one participant branch per shard. Phase one (`prepare_txn`) makes a
    // branch durable-but-undecided; the coordinator's forced `Decide`
    // record (`log_decision`) is the commit point; phase two
    // (`commit_prepared`/`abort_prepared`) finishes each branch. A
    // prepared branch stays in the active-transaction table, so it keeps
    // pinning the checkpoint replay floor and blocking COU quiesce until
    // the decision lands — exactly the window recovery must be able to
    // replay.

    /// Phase one: re-validates two-color consistency, logs every staged
    /// update plus a forced `Prepare` record, and marks the transaction
    /// prepared for global transaction `gid`. After this returns, the
    /// branch survives any crash and can no longer unilaterally abort;
    /// finish it with [`Mmdb::commit_prepared`] or
    /// [`Mmdb::abort_prepared`].
    pub fn prepare_txn(&mut self, txn: TxnId, gid: u64) -> Result<()> {
        self.ensure_alive()?;
        if self.txns.get_mut().get(txn)?.prepared.is_some() {
            return Err(MmdbError::Invalid(format!("{txn} is already prepared")));
        }
        // Same commit-time color revalidation as `commit`: installs are
        // promised now, so the write set must be color-consistent now.
        if self.ckpt.two_color_active() {
            let segs: Vec<SegmentId> = self
                .txns
                .get_mut()
                .get(txn)?
                .writes
                .iter()
                .map(|w| w.segment)
                .collect();
            for sid in segs {
                self.check_color(txn, sid)?;
            }
        }

        let t = self.txns.get_mut().get(txn)?;
        let writes: Vec<_> = t
            .writes
            .iter()
            .map(|w| (w.record, w.segment, w.value.clone()))
            .collect();
        let mut installs = Vec::with_capacity(writes.len());
        for (record, segment, value) in writes {
            let rec = LogRecord::Update {
                txn,
                record,
                value: value.clone(),
            };
            let lsn = self.log.get_mut().append(&rec);
            installs.push((record, segment, value, rec.end_lsn(lsn)));
        }
        self.log
            .get_mut()
            .append_forced(&LogRecord::Prepare { txn, gid })?;
        self.prepared_installs.insert(txn, installs);
        self.txns.get_mut().get_mut(txn)?.prepared = Some(gid);
        self.obs.counter("txn.prepared", 1);
        Ok(())
    }

    /// Durably logs the coordinator's decision for global transaction
    /// `gid` (forced — this is the cross-shard commit point).
    pub fn log_decision(&mut self, gid: u64, commit: bool) -> Result<()> {
        self.ensure_alive()?;
        self.log
            .get_mut()
            .append_forced(&LogRecord::Decide { gid, commit })?;
        self.obs.counter("txn.decisions_logged", 1);
        Ok(())
    }

    /// Phase two, commit side: writes a *forced* commit record and
    /// installs the branch's updates. The force is deliberate even under
    /// lazy durability: once the branch's own log carries the commit, a
    /// later truncation of the coordinator's `Decide` record can never
    /// orphan it.
    pub fn commit_prepared(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_alive()?;
        if self.txns.get_mut().get(txn)?.prepared.is_none() {
            return Err(MmdbError::Invalid(format!("{txn} is not prepared")));
        }
        let commit_timer = self.obs.timer();
        let gating = self
            .config
            .algorithm
            .needs_lsn_gating(self.config.params.log_mode);
        let commit_rec = LogRecord::Commit { txn };
        let commit_start = self.log.get_mut().append_forced(&commit_rec)?;
        self.last_commit_lsn
            .fetch_max(commit_rec.end_lsn(commit_start).raw(), Ordering::SeqCst);
        let tau = self.txns.get_mut().get(txn)?.tau;
        let installs = self.prepared_installs.remove(&txn).unwrap_or_default();
        let installs_len = installs.len();
        for (record, segment, value, end_lsn) in installs {
            if self.audit.is_enabled() && self.ckpt.two_color_active() {
                let color = match self.storage.color(segment)? {
                    Color::White => PaintColor::White,
                    Color::Black => PaintColor::Black,
                };
                self.audit.emit(|| AuditEvent::InstallObserved {
                    txn,
                    sid: segment,
                    color,
                });
            }
            self.ckpt
                .on_before_install(&mut self.storage, segment, &self.meters.sync_ckpt)?;
            self.storage
                .install_record(record, &value, end_lsn, tau, &self.meters.base)?;
            if gating {
                self.meters.sync_ckpt.lsn_op();
            }
        }
        self.txns.get_mut().finish_commit(txn)?;
        self.meters.base.txn_body(self.config.params.txn.c_trans);
        self.obs
            .span_end("txn.commit", "txn.commit_ns", commit_timer, || {
                format!("{txn}: {installs_len} writes (prepared)")
            });
        self.maybe_begin_pending_checkpoint()?;
        Ok(())
    }

    /// Phase two, abort side: drops a prepared branch after the
    /// coordinator decided abort. The branch's staged installs are
    /// discarded; an abort record keeps the log scanner's picture clean
    /// (and, if it reaches the disk, spares recovery the in-doubt
    /// resolution — presumed abort covers it if it does not).
    pub fn abort_prepared(&mut self, txn: TxnId) -> Result<()> {
        self.ensure_alive()?;
        if self.txns.get_mut().get(txn)?.prepared.is_none() {
            return Err(MmdbError::Invalid(format!("{txn} is not prepared")));
        }
        self.log.get_mut().append(&LogRecord::Abort { txn });
        self.prepared_installs.remove(&txn);
        self.txns.get_mut().finish_abort(txn, false)?;
        self.maybe_begin_pending_checkpoint()?;
        Ok(())
    }

    // ----- checkpointing ---------------------------------------------------

    /// Requests a checkpoint. Non-COU algorithms start immediately; COU
    /// quiesces first (new transactions are refused, and the checkpoint
    /// begins when the last active transaction finishes).
    pub fn try_begin_checkpoint(&mut self) -> Result<CheckpointStart> {
        self.ensure_alive()?;
        if self.ckpt.is_active() {
            return Err(MmdbError::CheckpointInProgress);
        }
        if self.config.algorithm.requires_quiesce() && !self.txns.get_mut().is_quiescent() {
            self.quiesce_pending = true;
            self.quiesce_timer = self.obs.timer();
            self.audit.emit(|| AuditEvent::QuiesceBegin);
            return Ok(CheckpointStart::Quiescing);
        }
        self.do_begin_checkpoint().map(CheckpointStart::Started)
    }

    fn maybe_begin_pending_checkpoint(&mut self) -> Result<()> {
        if self.quiesce_pending && self.txns.get_mut().is_quiescent() && !self.ckpt.is_active() {
            self.do_begin_checkpoint()?;
        }
        Ok(())
    }

    fn do_begin_checkpoint(&mut self) -> Result<BeginReport> {
        if self.quiesce_pending {
            self.audit.emit(|| AuditEvent::QuiesceEnd);
            let stall = std::mem::take(&mut self.quiesce_timer);
            self.obs
                .span_end("ckpt.quiesce", "ckpt.quiesce_stall_ns", stall, || {
                    "COU quiesce drain".to_string()
                });
        }
        let tau_ch = self.next_tau();
        if self.config.algorithm.is_two_color() {
            // Color observations from before this checkpoint refer to
            // pre-checkpoint state; wipe them.
            self.txns.get_mut().reset_colors();
        }
        let active = self.txns.get_mut().active_ids();
        let report = self.ckpt.begin(
            &mut self.storage,
            self.log.get_mut(),
            &mut *self.backup,
            &active,
            tau_ch,
        )?;
        // The replay floor: recovery from this checkpoint starts at its
        // begin marker, or at the begin record of the oldest transaction
        // active at the marker (fuzzy/2C recovery, §3.3).
        let mut floor = report.begin_lsn;
        for id in &active {
            if let Ok(t) = self.txns.get_mut().get(*id) {
                floor = floor.min(t.begin_lsn);
            }
        }
        self.pending_floor = Some((report.ckpt, floor));
        self.quiesce_pending = false;
        Ok(report)
    }

    /// Called after a checkpoint completes: records its replay floor and
    /// truncates the now-unreachable log prefix. Recovery can only ever
    /// use one of the two complete ping-pong copies, so everything before
    /// the older copy's replay floor is dead log.
    fn after_checkpoint_complete(&mut self) -> Result<()> {
        let Some(report) = self.ckpt.last_report().copied() else {
            return Ok(());
        };
        if let Some((ckpt, floor)) = self.pending_floor {
            if ckpt == report.ckpt {
                self.replay_floor[report.copy & 1] = Some(floor);
                self.pending_floor = None;
            }
        }
        if self.config.auto_truncate_log {
            if let (Some(a), Some(b)) = (self.replay_floor[0], self.replay_floor[1]) {
                // A replication pin clamps the cut: a standby still
                // pulling these bytes must not have them truncated out
                // from under it (the pin rises with its acks).
                let mut cut = a.min(b);
                if let Some(pin) = &self.repl_truncate_pin {
                    let pinned = mmdb_types::Lsn(pin.load(std::sync::atomic::Ordering::SeqCst));
                    cut = cut.min(pinned);
                }
                if cut > self.log.get_mut().start_lsn() {
                    self.log.get_mut().truncate_prefix(cut)?;
                }
            }
        }
        Ok(())
    }

    /// Performs one checkpoint step (see
    /// [`mmdb_checkpoint::Checkpointer::step`]).
    pub fn checkpoint_step(&mut self) -> Result<StepOutcome> {
        self.ensure_alive()?;
        let outcome = self
            .ckpt
            .step(&mut self.storage, self.log.get_mut(), &mut *self.backup)?;
        if matches!(outcome, StepOutcome::Done { .. }) {
            self.after_checkpoint_complete()?;
        }
        Ok(outcome)
    }

    /// Takes a complete checkpoint synchronously. For COU algorithms the
    /// engine must be quiescent (commit or abort open transactions
    /// first); otherwise returns [`MmdbError::Quiesced`].
    pub fn checkpoint(&mut self) -> Result<CkptReport> {
        match self.try_begin_checkpoint()? {
            CheckpointStart::Started(_) => {}
            CheckpointStart::Quiescing => {
                self.quiesce_pending = false; // nothing will drain it here
                return Err(MmdbError::Quiesced);
            }
        }
        let report = self.ckpt.run_to_completion(
            &mut self.storage,
            self.log.get_mut(),
            &mut *self.backup,
        )?;
        self.after_checkpoint_complete()?;
        Ok(report)
    }

    // ----- crash and recovery ----------------------------------------------

    /// Simulates a system failure: the primary database, log tail (unless
    /// stable), active transactions and checkpointer state are lost. Only
    /// the backup copies and the durable log survive. Call
    /// [`Mmdb::recover`] to come back.
    pub fn crash(&mut self) -> Result<()> {
        self.audit.emit(|| AuditEvent::Crash);
        // Take the read mirror out of service first: from here until
        // recovery republishes, lock-free readers must fail over to the
        // locked path (which reports the crash properly). Queued
        // shared-mode installs are discarded — they are logged, and
        // recovery replays them.
        let mirror = self.storage.mirror();
        if !mirror.gate_closed() {
            mirror.gate_close();
        }
        mirror.take_pending();
        self.log.get_mut().crash()?;
        self.txns.get_mut().crash();
        self.prepared_installs.clear();
        self.ckpt.crash(&mut self.storage);
        self.quiesce_pending = false;
        self.pending_floor = None;
        self.crashed = true;
        Ok(())
    }

    /// Recovers from a crash: rebuilds the primary database from the most
    /// recent complete backup plus the log (paper §3.3).
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        if !self.crashed {
            return Err(MmdbError::Invalid(
                "recover() called on a live engine; call crash() first".into(),
            ));
        }
        self.recover_internal()
    }

    fn recover_internal(&mut self) -> Result<RecoveryReport> {
        // Keep the pre-crash mirror `Arc` alive across the storage swap,
        // so lock-free readers holding a handle keep working after
        // recovery. The gate stays closed (readers fail over to the
        // locked path) until the rebuilt content is republished below.
        // `open_dir` reaches here without a crash(); close the gate then.
        let old_mirror = self.storage.mirror().clone();
        if !old_mirror.gate_closed() {
            old_mirror.gate_close();
        }
        self.storage = Storage::new(self.config.params.db)?;
        self.storage.adopt_mirror(old_mirror)?;
        let copies = if self.audit.is_enabled() {
            Some([
                summarize(self.backup.copy_status(0)?),
                summarize(self.backup.copy_status(1)?),
            ])
        } else {
            None
        };
        let recovery_meter = CostMeter::new(self.config.params.cost);
        let report = if self.config.recovery_workers > 1 {
            mmdb_rescale::recover_parallel(
                &mut self.storage,
                &mut *self.backup,
                self.log.get_mut().device_mut(),
                &self.config.params.disk,
                &recovery_meter,
                &self.obs,
                self.config.recovery_workers,
            )?
        } else {
            mmdb_recovery::recover_observed(
                &mut self.storage,
                &mut *self.backup,
                self.log.get_mut().device_mut(),
                &self.config.params.disk,
                &recovery_meter,
                &self.obs,
            )?
        };
        if let Some(copies) = copies {
            self.audit.emit(|| AuditEvent::RecoveryChosen {
                ckpt: report.ckpt,
                copy: report.copy,
                copies,
            });
        }
        // crash() already emptied the transaction table; keep it (and its
        // cumulative statistics — they are measurements, not state).
        debug_assert!(self.txns.get_mut().is_quiescent());
        self.ckpt = Checkpointer::new(
            self.config.algorithm,
            self.config.params.ckpt_mode,
            self.config.wal_policy,
            self.meters.async_ckpt.clone(),
        );
        self.ckpt.set_audit(self.audit.clone());
        self.ckpt.set_obs(self.obs.clone());
        // The next checkpoint targets the copy recovery did NOT restore
        // from, so a crash mid-checkpoint still leaves a complete copy.
        self.ckpt.set_next_ckpt(CheckpointId(report.ckpt.raw() + 1));
        self.tau_counter.store(0, Ordering::SeqCst);
        self.quiesce_pending = false;
        self.pending_floor = None;
        // only the restored copy's floor is known to be valid now; the
        // other copy must complete a fresh checkpoint before truncation
        // may move again
        self.replay_floor = [None, None];
        self.replay_floor[report.copy & 1] = Some(report.replay_start);
        self.crashed = false;
        // Recovery rebuilt the authoritative copy record by record; the
        // mirror saw every install with the gate closed. Republish
        // wholesale (belt and braces — e.g. restore may shrink content)
        // and put the mirror back in service.
        self.storage.republish_all();
        self.storage.mirror().gate_open();
        Ok(report)
    }

    /// Reads a record outside any transaction (no color checks; test and
    /// tooling aid — a real client should use a transaction).
    pub fn read_committed(&self, rid: RecordId) -> Result<Vec<Word>> {
        self.ensure_alive()?;
        Ok(self.storage.read_record(rid)?.to_vec())
    }

    // ----- intra-shard concurrency (shared-mode paths) ---------------------

    /// The storage's read mirror: a seqlock-protected copy of every
    /// record, readable without any engine lock. Clone the `Arc` once
    /// and keep it — the handle stays valid across crash and recovery
    /// (the gate closes while the content is rebuilt, so stale reads
    /// fail over to the locked path).
    pub fn read_mirror(&self) -> Arc<ReadMirror> {
        self.storage.mirror().clone()
    }

    /// Copies queued shared-mode installs back into the authoritative
    /// segments (see [`mmdb_storage::Storage::sync_pending`]). The
    /// sharded engine calls this on every exclusive acquisition, so the
    /// checkpointer, recovery, 2PC and quiesce always see fully-synced
    /// segment data and metadata. Returns the number of installs
    /// applied.
    pub fn sync_pending(&mut self) -> u64 {
        self.storage.sync_pending()
    }

    /// Commits a whole single-shard transaction from **shared** engine
    /// access: the caller holds only a read guard on the engine gate, so
    /// disjoint-segment transactions on other threads commit
    /// concurrently, serializing only at log append.
    ///
    /// Returns `Ok(None)` — caller falls back to the exclusive path —
    /// whenever the protocol requires exclusivity: after a crash, while
    /// a COU quiesce is pending, while any checkpoint is active (the
    /// two-color and COU install hooks need `&mut`), when the database
    /// has more segments than the latch rank space covers, or when the
    /// updates are invalid (the exclusive path reports the precise
    /// error). All of those fields only change under `&mut self`, which
    /// the engine gate excludes while a shared committer is inside — so
    /// the admission check cannot race.
    ///
    /// Protocol: latch the write set's segments in ascending id order
    /// (descending lock rank — deadlock-free by construction), append
    /// begin/updates/commit *contiguously* under the interior log lock
    /// (the pipeline's single serial point: WAL order is decided here,
    /// and the log reads exactly like a serial execution), install into
    /// the read mirror plus the pending-sync queue while still latched,
    /// then finish in the transaction table. Durability matches the
    /// exclusive path: `Force` forces inside the append; `Group`/`Lazy`
    /// return immediately and the caller signals the flusher / waits on
    /// the durable watermark *after* releasing its engine read guard.
    pub fn try_commit_shared<V: AsRef<[Word]>>(
        &self,
        updates: &[(RecordId, V)],
    ) -> Result<Option<TxnRun>> {
        if self.crashed || self.quiesce_pending || self.ckpt.is_active() {
            return Ok(None);
        }
        if self.latches.len() != self.storage.n_segments() as usize {
            return Ok(None);
        }
        // Validate everything up front: after the first log append the
        // commit must run to completion.
        let s_rec = self.record_words();
        let mut latch_order = Vec::with_capacity(updates.len());
        for (rid, value) in updates {
            if value.as_ref().len() != s_rec {
                return Ok(None);
            }
            match self.storage.segment_of(*rid) {
                Ok(sid) => latch_order.push(sid.index()),
                Err(_) => return Ok(None),
            }
        }
        latch_order.sort_unstable();
        latch_order.dedup();

        let gating = self
            .config
            .algorithm
            .needs_lsn_gating(self.config.params.log_mode);
        let commit_timer = self.obs.timer();
        let tau = self.next_tau();
        let txn = self.txns.lock().begin(tau, Lsn::ZERO, 1);

        let held: Vec<_> = latch_order
            .iter()
            .map(|&i| self.latches[i].lock())
            .collect();

        let (begin_lsn, commit_lsn, install_lsns) = {
            let mut log = self.log.lock();
            let begin_lsn = log.append(&LogRecord::TxnBegin { txn, tau });
            let mut install_lsns = Vec::with_capacity(updates.len());
            for (rid, value) in updates {
                let rec = LogRecord::Update {
                    txn,
                    record: *rid,
                    value: value.as_ref().to_vec(),
                };
                let lsn = log.append(&rec);
                install_lsns.push(rec.end_lsn(lsn));
            }
            let commit_rec = LogRecord::Commit { txn };
            let commit_start = match self.config.commit_durability {
                CommitDurability::Force => log.append_forced(&commit_rec)?,
                CommitDurability::Lazy | CommitDurability::Group => log.append(&commit_rec),
            };
            (begin_lsn, commit_rec.end_lsn(commit_start), install_lsns)
        };
        self.last_commit_lsn
            .fetch_max(commit_lsn.raw(), Ordering::SeqCst);

        // Install into the mirror while still latched (the latch is what
        // serializes publishes per record); the authoritative segments
        // catch up at the next exclusive acquisition via `sync_pending`.
        let mirror = self.storage.mirror();
        for ((rid, value), end_lsn) in updates.iter().zip(install_lsns) {
            mirror.publish(*rid, value.as_ref());
            mirror.note_pending(PendingInstall {
                rid: *rid,
                tau,
                lsn: end_lsn,
            });
            self.meters.base.move_words(s_rec as u64);
            if gating {
                self.meters.sync_ckpt.lsn_op();
            }
        }
        drop(held);

        {
            let mut txns = self.txns.lock();
            if let Ok(t) = txns.get_mut(txn) {
                t.begin_lsn = begin_lsn;
            }
            txns.finish_commit(txn)?;
        }
        self.meters.base.txn_body(self.config.params.txn.c_trans);
        self.obs
            .span_end("txn.commit", "txn.commit_ns", commit_timer, || {
                format!("{txn}: {} writes (shared)", updates.len())
            });
        Ok(Some(TxnRun {
            txn,
            runs: 1,
            commit_lsn,
        }))
    }

    /// Forces the log tail to the log disks — the group-commit daemon's
    /// hook. Under [`CommitDurability::Lazy`], committed transactions
    /// become durable at the next force. Publishes the durable-LSN
    /// watermark, so group committers parked on
    /// [`log_watermark`](Self::log_watermark) are released too.
    pub fn force_log(&mut self) -> Result<()> {
        self.ensure_alive()?;
        self.log.get_mut().force()
    }

    /// The group-commit force: flushes the tail but returns the pending
    /// completion (modeled latency + watermark publish) for the caller —
    /// the per-shard flusher — to run *after* releasing the engine lock.
    /// `Ok(None)` when the tail was empty (the watermark is still
    /// published, so no waiter strands).
    pub fn force_log_group(&mut self) -> Result<Option<mmdb_log::PendingForce>> {
        self.ensure_alive()?;
        self.log.get_mut().force_group()
    }

    /// The log's shared durable-LSN watermark. A group committer clones
    /// this, commits (append-only), drops the engine lock, and waits for
    /// the watermark to pass [`TxnRun::commit_lsn`] before acking.
    pub fn log_watermark(&self) -> std::sync::Arc<mmdb_log::DurableWatermark> {
        self.log.lock().watermark()
    }

    /// Seals the active log chunk so it becomes cold — eligible for
    /// compaction and compression; subsequent appends land in a fresh
    /// chunk. Flushes the volatile tail first. Returns `true` if a
    /// rotation actually happened (`false` on unchunked devices or an
    /// already-empty active chunk).
    pub fn rotate_log(&mut self) -> Result<bool> {
        self.ensure_alive()?;
        self.log.get_mut().rotate()
    }

    /// Runs one compaction pass over the cold log chunks: frames that no
    /// future recovery can need (durably aborted, or durably committed
    /// and superseded by a later committed write to the same record) are
    /// rewritten as length-preserving filler, so the REDO window stays
    /// bounded while every LSN survives. The pass is clamped below the
    /// replication truncation pin — a lagging standby stalls compaction
    /// exactly as it stalls truncation — and with
    /// [`MmdbConfig::compress_log_chunks`] set, rewritten chunks are
    /// stored compressed. A no-op (zero report) on unchunked log devices.
    pub fn compact_log(&mut self) -> Result<mmdb_rescale::CompactReport> {
        self.ensure_alive()?;
        // flush the tail so the durable window (and txn outcomes) are
        // current before classification
        self.log.get_mut().force()?;
        let mut pins = Vec::new();
        if let Some(pin) = &self.repl_truncate_pin {
            pins.push(pin.load(std::sync::atomic::Ordering::SeqCst));
        }
        let opts = mmdb_rescale::CompactOptions {
            pins,
            compress: self.config.compress_log_chunks,
        };
        mmdb_rescale::compact_device(self.log.get_mut().device_mut(), &opts, &self.obs)
    }

    /// The log device's chunk layout (oldest first, the last entry being
    /// the active chunk). Empty on unchunked devices.
    pub fn log_chunk_map(&self) -> Vec<mmdb_log::ChunkInfo> {
        self.log.lock().device().chunk_map()
    }

    /// Attaches a log-shipping tap: every force mirrors the freshly
    /// durable bytes into the tap window for the replication shipper
    /// (see [`mmdb_log::ShipTap`]).
    pub fn set_ship_tap(&mut self, tap: std::sync::Arc<mmdb_log::ShipTap>) {
        self.log.get_mut().set_ship_tap(tap);
    }

    /// Attaches the replication truncation pin (raw-LSN atomic, shared
    /// with the replication gate): while set, auto-truncation never cuts
    /// at or above the pin, so an attached standby's unshipped log bytes
    /// survive checkpoints. The caller seeds the pin — typically with
    /// [`Mmdb::log_start_lsn`] at attach time — and raises it as the
    /// standby acks.
    pub fn set_repl_truncate_pin(&mut self, pin: std::sync::Arc<std::sync::atomic::AtomicU64>) {
        self.repl_truncate_pin = Some(pin);
    }

    /// The log's durable device LSN (what a shipper may read up to).
    pub fn log_durable_lsn(&self) -> mmdb_types::Lsn {
        self.log.lock().durable_lsn()
    }

    /// The log device's first readable LSN (0 unless truncated).
    pub fn log_start_lsn(&self) -> mmdb_types::Lsn {
        self.log.lock().start_lsn()
    }

    /// Reads durable log bytes starting at `from`, cut to whole record
    /// frames — the shipper's device-read fallback when a standby has
    /// fallen behind the tap window. See
    /// [`mmdb_log::LogManager::read_range_aligned`].
    pub fn read_log_range(&mut self, from: mmdb_types::Lsn, max_bytes: usize) -> Result<Vec<u8>> {
        self.ensure_alive()?;
        self.log.get_mut().read_range_aligned(from, max_bytes)
    }

    /// End-LSN of the most recent commit record this engine wrote (see
    /// [`TxnRun::commit_lsn`]; interactive commits read it while still
    /// holding the engine lock).
    pub fn last_commit_lsn(&self) -> mmdb_types::Lsn {
        Lsn(self.last_commit_lsn.load(Ordering::SeqCst))
    }

    /// Deep verification: performs a *dry-run* recovery (backup + log →
    /// scratch storage) and checks it reproduces the live database
    /// exactly. The log is forced first so the comparison is against the
    /// full committed state. Returns the would-be recovery report.
    ///
    /// This is what an operator runs to answer "if we crashed right now,
    /// would we get everything back?" without crashing anything.
    pub fn verify_recoverability(&mut self) -> Result<RecoveryReport> {
        self.ensure_alive()?;
        self.log.get_mut().force()?;
        let live = self.storage.fingerprint();
        let (recovered, report) = mmdb_recovery::dry_run_observed(
            self.config.params.db,
            &mut *self.backup,
            self.log.get_mut().device_mut(),
            &self.config.params.disk,
            &self.obs,
        )?;
        if recovered != live {
            return Err(MmdbError::Corrupt(format!(
                "dry-run recovery diverges from the live committed state                  (live {live:#x}, recovered {recovered:#x})"
            )));
        }
        Ok(report)
    }

    // ----- archival (cold backups, paper §2.7) -----------------------------

    /// Dumps a point-in-time cold backup: the most recent complete
    /// ping-pong copy plus the REDO-log slice needed to bring it to the
    /// committed state as of this call. The log is forced first, so every
    /// committed transaction is captured.
    pub fn dump_archive(&mut self, path: &Path) -> Result<mmdb_disk::ArchiveInfo> {
        self.ensure_alive()?;
        self.log.get_mut().force()?;
        let (copy, _) = self.backup.recovery_copy()?;
        // replay floor of the archived copy; if unknown (no checkpoint
        // completed this session for that copy), fall back to the whole
        // readable log — replaying extra prefix is safe (complete,
        // in-order suffix), just bulkier.
        let floor = self.replay_floor[copy & 1].unwrap_or(self.log.get_mut().start_lsn());
        let dev = self.log.get_mut().device_mut();
        let start = floor.raw().max(dev.start_offset());
        let mut slice = vec![0u8; (dev.len() - start) as usize];
        dev.read_at(start, &mut slice)?;
        mmdb_disk::dump_archive(&mut *self.backup, path, &slice)
    }

    /// Creates a brand-new database directory from an archive: the image
    /// seeds the backup store, the archived log slice seeds the log, and
    /// ordinary recovery rebuilds the primary database to the exact
    /// committed state the archive captured.
    pub fn restore_archive_dir(
        config: MmdbConfig,
        dir: &Path,
        archive: &Path,
    ) -> Result<(Mmdb, RecoveryReport)> {
        config.validate().map_err(MmdbError::Invalid)?;
        std::fs::create_dir_all(dir)?;
        let meters = Meters::new(config.params.cost);
        let storage = Storage::new(config.params.db)?;
        let mut backup: Box<dyn BackupStore> = Box::new(mmdb_disk::FileBackup::open(
            &dir.join("backup"),
            config.params.db,
            config.sync_files,
        )?);
        if backup.recovery_copy().is_ok() {
            return Err(MmdbError::Invalid(format!(
                "{} already holds a database; refusing to restore over it",
                dir.display()
            )));
        }
        let (_info, log_slice) = mmdb_disk::restore_archive(&mut *backup, archive)?;
        // Seed the fresh log device with the archived slice *before*
        // handing it to the manager, so the manager's LSN space starts
        // past it. The slice's records are self-delimiting; recovery
        // locates the markers by scanning, so placing them at the fresh
        // device's offset 0 is sound.
        let mut device =
            SegmentedLogDevice::open(&dir.join("log"), config.log_chunk_bytes, config.sync_files)?;
        {
            use mmdb_log::LogDevice as _;
            device.append(&log_slice)?;
        }
        let log = LogManager::new(
            Box::new(device),
            config.params.log_mode,
            meters.logging.clone(),
        );
        let mut engine = Self::assemble(config, storage, log, backup, meters);
        let report = engine.recover_internal()?;
        Ok((engine, report))
    }
}
