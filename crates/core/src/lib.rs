//! `mmdb-core` — a crash-recoverable main-memory database engine, built
//! as a faithful, executable reproduction of Salem & Garcia-Molina,
//! *Checkpointing Memory-Resident Databases* (ICDE 1989).
//!
//! The engine keeps the whole database in main memory and maintains two
//! ping-pong backup copies on disk via one of six checkpointing
//! algorithms (`FUZZYCOPY`, `2CFLUSH`, `2CCOPY`, `COUFLUSH`, `COUCOPY`,
//! `FASTFUZZY`), with a REDO-only log providing the delta between the
//! latest backup and the committed state. After a crash, recovery
//! restores the most recent complete backup and replays the log.
//!
//! # Quickstart
//!
//! ```
//! use mmdb_core::{Mmdb, MmdbConfig};
//! use mmdb_types::{Algorithm, RecordId};
//!
//! let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::CouCopy)).unwrap();
//! let value = vec![42; db.record_words()];
//!
//! // A transaction: begin, write, commit (shadow-copy updates — nothing
//! // hits the database until commit).
//! let txn = db.begin_txn().unwrap();
//! db.write(txn, RecordId(7), &value).unwrap();
//! db.commit(txn).unwrap();
//!
//! // Take a transaction-consistent checkpoint, then crash and recover.
//! db.checkpoint().unwrap();
//! let before = db.fingerprint();
//! db.crash().unwrap();
//! db.recover().unwrap();
//! assert_eq!(db.fingerprint(), before);
//! assert_eq!(db.read_committed(RecordId(7)).unwrap(), value);
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
mod metrics;

pub use config::{CommitDurability, MmdbConfig};
pub use engine::{CheckpointStart, Mmdb, SegmentStats, TxnRun};
pub use metrics::{Meters, OverheadReport};

// Re-export the pieces users need to drive the public API.
pub use mmdb_audit::{Audit, AuditReport, AuditViolation, CheckerId};
pub use mmdb_checkpoint::{CkptReport, CkptStats, StepOutcome, WalPolicy};
pub use mmdb_log::ChunkInfo;
pub use mmdb_log::{
    DurableWatermark, FlakyControl, FlakyLogDevice, LogDevice, LogRecord, PendingForce, ShipTap,
    TapRead, DEFAULT_TAP_WINDOW_BYTES,
};
pub use mmdb_obs::{
    render_spans, validate_prometheus, write_flightrec, HistSummary, MetricsSnapshot, Obs,
    PaperOverhead, SpanRecord, TraceDumpDoc,
};
pub use mmdb_recovery::RecoveryReport;
pub use mmdb_rescale::{CompactOptions, CompactReport};
pub use mmdb_storage::{PendingInstall, ReadMirror};
pub use mmdb_types::{
    Algorithm, CkptMode, LogMode, Lsn, MmdbError, Params, RecordId, Result, TxnId,
};
