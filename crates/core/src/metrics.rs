//! Engine metrics: the paper's overhead accounting, assembled from the
//! engine's cost meters.

use mmdb_types::{CostBreakdown, SharedCostMeter};

/// The engine's cost meters, separated the way the paper's model
/// separates costs (§4):
///
/// * `sync_ckpt` — checkpoint-related work done *synchronously* on behalf
///   of transactions: LSN maintenance, COU old-copy saves, and the bodies
///   of transactions rerun after two-color aborts;
/// * `async_ckpt` — the checkpointer's own work: scans, locks, copies,
///   I/O initiations, LSN checks, checkpoint-induced log forces;
/// * `logging` — routine log creation and forcing (the paper excludes
///   these from checkpointing overhead: "we do not include the other
///   recovery costs, such as data movement for the creation of the
///   log");
/// * `base` — transaction bodies (`C_trans`) and shadow-install data
///   movement, the work a recovery-free system would also do.
#[derive(Debug, Clone)]
pub struct Meters {
    /// Synchronous checkpoint-related cost (charged to transactions).
    pub sync_ckpt: SharedCostMeter,
    /// Asynchronous checkpointer cost.
    pub async_ckpt: SharedCostMeter,
    /// Routine logging cost (excluded from checkpoint overhead).
    pub logging: SharedCostMeter,
    /// Baseline transaction cost.
    pub base: SharedCostMeter,
}

impl Meters {
    /// Fresh meters charging at the given unit costs.
    pub fn new(costs: mmdb_types::CostParams) -> Meters {
        Meters {
            sync_ckpt: mmdb_types::CostMeter::shared(costs),
            async_ckpt: mmdb_types::CostMeter::shared(costs),
            logging: mmdb_types::CostMeter::shared(costs),
            base: mmdb_types::CostMeter::shared(costs),
        }
    }

    /// Resets every meter.
    pub fn reset(&self) {
        self.sync_ckpt.reset();
        self.async_ckpt.reset();
        self.logging.reset();
        self.base.reset();
    }
}

/// A point-in-time overhead summary, in the units of the paper's figures:
/// instructions per committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Committed transactions in the measured window.
    pub committed: u64,
    /// Synchronous checkpoint-related instructions (total).
    pub sync_ckpt: CostBreakdown,
    /// Asynchronous checkpointer instructions (total).
    pub async_ckpt: CostBreakdown,
    /// Routine logging instructions (total, not checkpoint overhead).
    pub logging: CostBreakdown,
    /// Baseline transaction instructions (total).
    pub base: CostBreakdown,
}

impl OverheadReport {
    /// Synchronous checkpoint overhead per committed transaction.
    pub fn sync_per_txn(&self) -> f64 {
        self.per_txn(self.sync_ckpt.total())
    }

    /// Asynchronous (checkpointer) overhead per committed transaction —
    /// the paper's amortization rule: asynchronous cost divided by the
    /// number of transactions that ran while it accrued.
    pub fn async_per_txn(&self) -> f64 {
        self.per_txn(self.async_ckpt.total())
    }

    /// Total checkpointing overhead per committed transaction — the
    /// paper's headline metric (Figures 4a, 4c, 4d, 4e).
    pub fn ckpt_overhead_per_txn(&self) -> f64 {
        self.sync_per_txn() + self.async_per_txn()
    }

    fn per_txn(&self, total: u64) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            total as f64 / self.committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::CostParams;

    #[test]
    fn per_txn_math() {
        let meters = Meters::new(CostParams::default());
        meters.sync_ckpt.lsn_op(); // 20
        meters.async_ckpt.io_op(); // 1000
        let report = OverheadReport {
            committed: 10,
            sync_ckpt: meters.sync_ckpt.snapshot(),
            async_ckpt: meters.async_ckpt.snapshot(),
            logging: meters.logging.snapshot(),
            base: meters.base.snapshot(),
        };
        assert_eq!(report.sync_per_txn(), 2.0);
        assert_eq!(report.async_per_txn(), 100.0);
        assert_eq!(report.ckpt_overhead_per_txn(), 102.0);
    }

    #[test]
    fn zero_committed_is_not_nan() {
        let meters = Meters::new(CostParams::default());
        meters.sync_ckpt.io_op();
        let report = OverheadReport {
            committed: 0,
            sync_ckpt: meters.sync_ckpt.snapshot(),
            async_ckpt: meters.async_ckpt.snapshot(),
            logging: meters.logging.snapshot(),
            base: meters.base.snapshot(),
        };
        assert_eq!(report.ckpt_overhead_per_txn(), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let meters = Meters::new(CostParams::default());
        meters.sync_ckpt.io_op();
        meters.base.io_op();
        meters.reset();
        assert_eq!(meters.sync_ckpt.total(), 0);
        assert_eq!(meters.base.total(), 0);
    }
}
