//! Engine configuration.

use mmdb_checkpoint::WalPolicy;
use mmdb_types::{Algorithm, Params};

/// When a commit becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitDurability {
    /// Force the log tail at every commit: a successful `commit()` is
    /// durable (no committed work is ever lost). This is the default and
    /// what the durability property tests assume.
    #[default]
    Force,
    /// Group commit: the commit record stays in the volatile tail until
    /// some later force. A crash may lose a suffix of committed
    /// transactions, but recovery still lands on a consistent prefix —
    /// the paper notes the desire to avoid "forcing transaction updates
    /// to disk before commit" (§1); this mode is that trade.
    Lazy,
    /// Group commit with full durability: `commit()` only appends the
    /// commit record (like [`Lazy`](Self::Lazy)), but the *caller* — the
    /// shard router or server worker — then releases the engine lock and
    /// waits on the log's durable-LSN watermark
    /// ([`mmdb_log::DurableWatermark`]) until a batched force covers the
    /// commit's end-LSN. The ack is therefore exactly as durable as
    /// [`Force`](Self::Force), but one real force is amortized over every
    /// commit that arrived while the previous force was in flight. Only
    /// meaningful with a volatile tail (a stable tail is durable on
    /// append); engines used directly (not through `mmdb-shard` /
    /// `mmdb-server`) must do their own watermark wait or the commit is
    /// effectively lazy.
    Group,
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmdbConfig {
    /// The paper's model parameters (database shape, costs, disks, load).
    pub params: Params,
    /// The checkpointing algorithm.
    pub algorithm: Algorithm,
    /// What to do when the write-ahead gate blocks a flush.
    pub wal_policy: WalPolicy,
    /// Commit durability discipline.
    pub commit_durability: CommitDurability,
    /// `fsync` file devices on write (real durability; slower tests).
    pub sync_files: bool,
    /// Modeled log-device force latency, in microseconds (`0` disables).
    /// The paper evaluates checkpointing with parameterized I/O costs
    /// rather than wall-clock hardware; this knob is the wall-clock
    /// analogue for the log disk: every log force additionally waits
    /// this long, standing in for the rotational log device whose write
    /// latency dominates commit cost in the paper's era. Benchmarks use
    /// it to study commit-serialization effects (e.g. shard scaling) in
    /// the regime the paper assumes, on hardware where a real flush is
    /// too fast to expose them.
    pub log_force_latency_us: u32,
    /// After each completed checkpoint, truncate the log prefix that no
    /// recovery can ever need (everything before the older complete
    /// ping-pong copy's replay floor). Space is actually reclaimed on
    /// devices that support it (the segmented log deletes whole chunks).
    pub auto_truncate_log: bool,
    /// Chunk size for the segmented on-disk log used by
    /// [`Mmdb::open_dir`](crate::Mmdb::open_dir).
    pub log_chunk_bytes: u64,
    /// Bound on the volatile log tail: appends past this size force the
    /// tail (group commit's backstop). `None` leaves flushing entirely to
    /// commit forces / explicit [`Mmdb::force_log`](crate::Mmdb::force_log)
    /// calls.
    pub log_tail_flush_bytes: Option<u64>,
    /// Run the online protocol-invariant audit: the engine, checkpointer,
    /// log manager and backup store emit a typed event stream that five
    /// checker state machines validate as it happens (WAL gate, paint
    /// discipline, COU old-copy lifetime, ping-pong alternation, LSN /
    /// checkpoint-id monotonicity). Violations surface through
    /// [`Mmdb::audit_violations`](crate::Mmdb::audit_violations). Off by
    /// default for production-shaped runs; [`MmdbConfig::small`] turns it
    /// on so every test runs fully checked.
    pub audit: bool,
    /// Apply workers for crash recovery. `1` (the default) runs the
    /// serial replay path — the paper's §4 model made executable and the
    /// correctness oracle. Higher values partition the committed-REDO
    /// window by record segment and replay with that many concurrent
    /// workers, overlapped with backup loading
    /// ([`mmdb_rescale::recover_parallel`]); the result is bit-identical
    /// to serial, and any log corruption falls back to the serial path
    /// wholesale.
    pub recovery_workers: usize,
    /// Compress backup segment slots as checkpoints write them. Reads
    /// are per-slot self-describing, so the flag can change between
    /// checkpoints and old backups stay readable either way.
    pub compress_backups: bool,
    /// Compress cold log chunks when the compactor rewrites them.
    pub compress_log_chunks: bool,
    /// Run the telemetry layer: spans, latency histograms, and the
    /// unified metrics registry behind
    /// [`Mmdb::metrics_snapshot`](crate::Mmdb::metrics_snapshot) and
    /// [`Mmdb::obs`](crate::Mmdb::obs). When off (the default for
    /// production-shaped runs) every instrumentation point is a no-op on
    /// a `None` handle — no clock reads, no label formatting, no
    /// allocation. [`MmdbConfig::small`] turns it on so every test
    /// exercises the instrumented paths.
    pub telemetry: bool,
}

impl MmdbConfig {
    /// A configuration with the paper's defaults and the given algorithm.
    pub fn new(algorithm: Algorithm) -> MmdbConfig {
        MmdbConfig {
            params: Params::paper_defaults(),
            algorithm,
            wal_policy: WalPolicy::Force,
            commit_durability: CommitDurability::Force,
            sync_files: false,
            log_force_latency_us: 0,
            auto_truncate_log: true,
            log_chunk_bytes: mmdb_log::DEFAULT_CHUNK_BYTES,
            log_tail_flush_bytes: Some(1 << 20),
            recovery_workers: 1,
            compress_backups: false,
            compress_log_chunks: false,
            audit: false,
            telemetry: false,
        }
    }

    /// A laptop-scale configuration (small database) with the given
    /// algorithm — what the tests and examples use.
    pub fn small(algorithm: Algorithm) -> MmdbConfig {
        MmdbConfig {
            params: Params::small(),
            audit: true,
            telemetry: true,
            ..MmdbConfig::new(algorithm)
        }
    }

    /// Validates internal consistency (shape constraints, algorithm/log
    /// soundness).
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if !self.algorithm.sound_under(self.params.log_mode) {
            return Err(format!(
                "{} requires a stable log tail (set params.log_mode = LogMode::StableTail)",
                self.algorithm
            ));
        }
        if self.recovery_workers == 0 {
            return Err("recovery_workers must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::LogMode;

    #[test]
    fn default_config_is_valid() {
        for alg in Algorithm::BASE_FIVE {
            MmdbConfig::new(alg).validate().unwrap();
            MmdbConfig::small(alg).validate().unwrap();
        }
    }

    #[test]
    fn fastfuzzy_needs_stable_tail() {
        let mut c = MmdbConfig::small(Algorithm::FastFuzzy);
        assert!(c.validate().is_err());
        c.params.log_mode = LogMode::StableTail;
        c.validate().unwrap();
    }

    #[test]
    fn bad_shape_rejected() {
        let mut c = MmdbConfig::small(Algorithm::FuzzyCopy);
        c.params.db.s_seg = 100;
        assert!(c.validate().is_err());
    }
}
