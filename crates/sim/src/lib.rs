//! The discrete-event simulation testbed.
//!
//! The paper evaluates its checkpointing algorithms with an analytic
//! model and closes by announcing a testbed "with which we will be able
//! to experimentally evaluate the algorithms presented here" (§5). This
//! crate is that testbed: it drives the *real* engine — real segments,
//! real paint bits, real COU copies, real aborts, real REDO log — under a
//! Poisson transaction stream, advancing a simulated clock with the
//! paper's disk service model, and measures the same two metrics the
//! analytic model predicts: processor overhead per transaction and
//! (estimated) recovery time.
//!
//! Timing model:
//!
//! * transactions are instantaneous (the paper's CPU "cost" is an
//!   instruction count, not a duration; the checkpoint timeline is set by
//!   disk bandwidth);
//! * each checkpointer step that issues a segment flush occupies one disk
//!   for `T_seek + T_trans·S_seg` simulated seconds; up to `N_bdisks`
//!   flushes proceed in parallel ([`mmdb_disk::SimDiskArray`]);
//! * a transaction aborted by the two-color rule is retried after the
//!   next checkpointer step completes (the paint frontier has advanced),
//!   each retry paying the full transaction cost — the paper's rerun
//!   model.

#![warn(missing_docs)]

use mmdb_core::{CommitDurability, MetricsSnapshot, Mmdb, MmdbConfig, MmdbError, StepOutcome};
use mmdb_disk::SimDiskArray;
use mmdb_types::{Algorithm, CostBreakdown, LogMode, Params, Result};
use mmdb_workload::{
    ArrivalProcess, HotSetWorkload, TxnSpec, UniformWorkload, Workload, ZipfWorkload,
};

/// Which record-popularity distribution drives the simulated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// The paper's uniform update distribution (§2.5).
    Uniform,
    /// Zipf-distributed popularity with the given theta (beyond-paper).
    Zipf(f64),
    /// Hot-set skew: `(hot_fraction, hot_access)` (beyond-paper).
    HotSet(f64, f64),
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Model parameters (usually a scaled-down database).
    pub params: Params,
    /// The checkpointing algorithm under test.
    pub algorithm: Algorithm,
    /// Seconds between checkpoint *begins*; `None` runs checkpoints
    /// back-to-back (the paper's minimum-duration setting).
    pub ckpt_interval: Option<f64>,
    /// Simulated seconds of measured run (after warm-up).
    pub duration: f64,
    /// Simulated warm-up seconds before measurement begins: the system
    /// runs under load (checkpoints included) so the measured window
    /// starts in steady state — the dirty population and checkpoint
    /// cadence need a few intervals to converge.
    pub warmup: f64,
    /// RNG seed (workload + arrivals).
    pub seed: u64,
    /// Record-popularity distribution.
    pub workload: WorkloadKind,
    /// Run the engine's protocol-invariant audit during the simulation and
    /// fail the run if any checker fires. On by default: the simulator is
    /// exactly the adversarial interleaving generator the checkers are
    /// meant to watch.
    pub audit: bool,
    /// Run the engine's telemetry layer. The simulator additionally feeds
    /// the *simulated* clock into the registry (`sim.ckpt_pass_us`:
    /// request-to-completion checkpoint pass durations in simulated
    /// microseconds), so the exported latency distributions are
    /// deterministic under a fixed seed.
    pub telemetry: bool,
}

impl SimConfig {
    /// A laptop-scale validation configuration: the paper's proportions
    /// at 1/64 database scale, with the load *and the disk array* scaled
    /// down together so the dirtying regime (`μ·D_act`, the number of
    /// updates a segment absorbs per checkpoint) is comparable to the
    /// paper's default operating point.
    pub fn validation(algorithm: Algorithm) -> SimConfig {
        let mut params = Params::paper_defaults();
        params.db.s_db = 4 << 20; // 4 Mwords: 512 segments of 8 Kwords
        params.txn.lambda = 1000.0 / 64.0;
        params.disk.n_bdisks = 2; // ≈14 s full flush: μ·D ≈ 2–4
        if algorithm == Algorithm::FastFuzzy {
            params.log_mode = LogMode::StableTail;
        }
        SimConfig {
            params,
            algorithm,
            ckpt_interval: None,
            duration: 400.0,
            warmup: 120.0,
            seed: 42,
            workload: WorkloadKind::Uniform,
            audit: true,
            telemetry: true,
        }
    }
}

/// Measured results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The algorithm simulated.
    pub algorithm: Algorithm,
    /// Simulated seconds measured (excluding warm-up).
    pub measured_seconds: f64,
    /// Transactions committed in the window.
    pub committed: u64,
    /// Transaction attempts begun in the window (includes reruns).
    pub begun: u64,
    /// Two-color aborts in the window.
    pub aborted_two_color: u64,
    /// Checkpoints completed in the window.
    pub checkpoints: u64,
    /// Mean begin-to-begin checkpoint duration, seconds.
    pub avg_ckpt_interval: f64,
    /// Mean segments flushed per checkpoint.
    pub avg_segments_flushed: f64,
    /// Synchronous checkpoint-related instructions (window total).
    pub sync_ckpt: CostBreakdown,
    /// Asynchronous checkpointer instructions (window total).
    pub async_ckpt: CostBreakdown,
    /// Log bytes appended in the window.
    pub log_bytes: u64,
    /// Estimated recovery time, seconds: full backup read plus 1.5
    /// checkpoint intervals of log at the observed log production rate.
    pub est_recovery_seconds: f64,
    /// *Measured* recovery: at the end of the run the engine is crashed
    /// and actually recovered; this is the modeled I/O time of that real
    /// recovery (backup read + the log it really replayed).
    pub measured_recovery_seconds: f64,
    /// Log words the real end-of-run recovery replayed.
    pub measured_recovery_log_words: u64,
    /// Unified metrics snapshot taken after the end-of-run crash and
    /// recovery (empty histograms and counters when
    /// [`SimConfig::telemetry`] is off). The `sim.ckpt_pass_us` and
    /// `recovery.total_modeled_us` histograms in here are driven by the
    /// simulated clock and the paper's I/O model, so they are
    /// deterministic under a fixed seed.
    pub snapshot: MetricsSnapshot,
}

impl SimResult {
    /// Empirical checkpoint-induced restart probability.
    pub fn p_restart(&self) -> f64 {
        if self.begun == 0 {
            0.0
        } else {
            self.aborted_two_color as f64 / self.begun as f64
        }
    }

    /// Synchronous overhead, instructions per committed transaction.
    pub fn sync_per_txn(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.sync_ckpt.total() as f64 / self.committed as f64
        }
    }

    /// Asynchronous (checkpointer) overhead, instructions per committed
    /// transaction.
    pub fn async_per_txn(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.async_ckpt.total() as f64 / self.committed as f64
        }
    }

    /// Total checkpointing overhead per committed transaction — the
    /// paper's Figure 4a/4c/4d/4e metric.
    pub fn overhead_per_txn(&self) -> f64 {
        self.sync_per_txn() + self.async_per_txn()
    }
}

/// Aggregate of several independent simulation runs (different seeds).
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// The individual runs.
    pub runs: Vec<SimResult>,
}

impl ReplicatedResult {
    fn stats(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
        let n = values.clone().count() as f64;
        let mean = values.clone().sum::<f64>() / n;
        let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.max(1.0);
        (mean, var.sqrt())
    }

    /// Mean and standard deviation of the per-transaction overhead.
    pub fn overhead_stats(&self) -> (f64, f64) {
        Self::stats(self.runs.iter().map(|r| r.overhead_per_txn()))
    }

    /// Mean and standard deviation of the restart probability.
    pub fn p_restart_stats(&self) -> (f64, f64) {
        Self::stats(self.runs.iter().map(|r| r.p_restart()))
    }

    /// Mean and standard deviation of the checkpoint interval.
    pub fn interval_stats(&self) -> (f64, f64) {
        Self::stats(self.runs.iter().map(|r| r.avg_ckpt_interval))
    }
}

/// The simulator. Construct with [`Simulator::new`] and call
/// [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// A simulator for `config`.
    pub fn new(config: SimConfig) -> Simulator {
        Simulator { config }
    }

    /// Runs the simulation: a warm-up phase (two checkpoints, seeding
    /// both ping-pong copies) followed by `duration` measured seconds.
    pub fn run(&self) -> Result<SimResult> {
        let cfg = self.config;
        let mut engine_cfg = MmdbConfig::new(cfg.algorithm);
        engine_cfg.params = cfg.params;
        // Group commit: the paper's premise is that transactions do not
        // synchronously force the log (§1); the periodic forces below
        // play the group-commit daemon.
        engine_cfg.commit_durability = CommitDurability::Lazy;
        engine_cfg.audit = cfg.audit;
        engine_cfg.telemetry = cfg.telemetry;
        let mut db = Mmdb::open_in_memory(engine_cfg)?;

        let s_rec = cfg.params.db.s_rec as usize;
        let n_records = cfg.params.db.n_records();
        let n_ru = cfg.params.txn.n_ru;
        let mut workload: Box<dyn Workload> = match cfg.workload {
            WorkloadKind::Uniform => Box::new(UniformWorkload::new(n_records, n_ru, cfg.seed)),
            WorkloadKind::Zipf(theta) => {
                Box::new(ZipfWorkload::new(n_records, n_ru, theta, cfg.seed))
            }
            WorkloadKind::HotSet(frac, access) => {
                Box::new(HotSetWorkload::new(n_records, n_ru, frac, access, cfg.seed))
            }
        };
        let mut arrivals = ArrivalProcess::new(cfg.params.txn.lambda, cfg.seed ^ 0x9E37);
        let mut disks = SimDiskArray::new(cfg.params.disk);

        // ---- warm-up: seed both ping-pong copies --------------------------
        // A few transactions so the database is not empty, then two
        // checkpoints (escalated to full automatically).
        for _ in 0..20 {
            let spec = workload.next_txn();
            db.run_txn(&spec.materialize(s_rec))?;
        }
        db.checkpoint()?;
        db.checkpoint()?;

        // ---- event loop: warm-up, then the measured window ---------------
        let meters = db.meters().clone();
        let mut committed_0 = db.txn_stats().committed;
        let mut begun_0 = db.txn_stats().begun;
        let mut aborts_0 = db.txn_stats().aborted_two_color;
        let mut ckpts_0 = db.ckpt_stats().completed;
        let mut flushed_0 = db.ckpt_stats().segments_flushed;
        let mut log_bytes_0 = db.log_stats().bytes;
        let mut measuring = cfg.warmup <= 0.0;
        if measuring {
            meters.reset();
        }

        let end = cfg.warmup + cfg.duration;
        let mut now = 0.0f64;
        let mut next_arrival = arrivals.next_arrival();
        let mut retry_queue: Vec<TxnSpec> = Vec::new();
        // time at which the checkpointer may issue its next step (a disk
        // must be free); f64::INFINITY when no checkpoint is active
        let mut next_begin = 0.0f64;
        let mut last_begin = 0.0f64;
        let mut begin_times: Vec<f64> = Vec::new();
        // group-commit force cadence: 100 forces/second
        let mut next_force = 0.0f64;

        while now < end {
            if !measuring && now >= cfg.warmup {
                // warm-up over: reset the measurement window
                measuring = true;
                meters.reset();
                committed_0 = db.txn_stats().committed;
                begun_0 = db.txn_stats().begun;
                aborts_0 = db.txn_stats().aborted_two_color;
                ckpts_0 = db.ckpt_stats().completed;
                flushed_0 = db.ckpt_stats().segments_flushed;
                log_bytes_0 = db.log_stats().bytes;
                begin_times.clear();
            }
            // start a checkpoint if due
            if !db.is_checkpoint_active() && now >= next_begin {
                db.try_begin_checkpoint()?;
                last_begin = now;
                begin_times.push(now);
                // transactions parked during a COU quiesce run now
                Self::drain_retries(&mut db, s_rec, &mut retry_queue)?;
            }

            let ckpt_ready = if db.is_checkpoint_active() {
                disks.next_free(now)
            } else {
                f64::INFINITY
            };

            if next_arrival <= ckpt_ready.min(next_force) {
                // --- a transaction arrives -----------------------------
                now = next_arrival;
                next_arrival = arrivals.next_arrival();
                let spec = workload.next_txn();
                Self::attempt_txn(&mut db, &spec, s_rec, &mut retry_queue)?;
            } else if next_force <= ckpt_ready {
                // --- group-commit force --------------------------------
                now = next_force;
                next_force = now + 0.01;
                db.force_log()?;
            } else {
                // --- the checkpointer takes a step ----------------------
                now = ckpt_ready;
                match db.checkpoint_step()? {
                    StepOutcome::Progress { io_words } | StepOutcome::Done { io_words } => {
                        if io_words > 0 {
                            disks.submit(now, io_words);
                        }
                        if !db.is_checkpoint_active() {
                            if measuring {
                                // simulated request-to-completion pass time
                                db.obs()
                                    .observe("sim.ckpt_pass_us", ((now - last_begin) * 1e6) as u64);
                            }
                            // checkpoint done: schedule the next begin
                            let interval = cfg.ckpt_interval.unwrap_or(0.0);
                            next_begin = (last_begin + interval).max(now);
                            if db
                                .last_ckpt_report()
                                .map(|r| r.segments_flushed == 0)
                                .unwrap_or(false)
                            {
                                // nothing was dirty: wait for new work to
                                // avoid spinning at one timestamp
                                next_begin = next_begin.max(next_arrival);
                            }
                            // the conflicting checkpoint is gone: rerun
                            // the transactions it aborted
                            Self::drain_retries(&mut db, s_rec, &mut retry_queue)?;
                        }
                    }
                    StepOutcome::WaitingForLog => {
                        // wait for the next group-commit force
                        disks.submit(now, 0); // no-op to keep time moving
                    }
                }
            }
        }

        let committed = db.txn_stats().committed - committed_0;
        let begun = db.txn_stats().begun - begun_0;
        let aborted_two_color = db.txn_stats().aborted_two_color - aborts_0;
        let checkpoints = db.ckpt_stats().completed - ckpts_0;
        let segments_flushed = db.ckpt_stats().segments_flushed - flushed_0;
        let log_bytes = db.log_stats().bytes - log_bytes_0;

        let avg_ckpt_interval = if begin_times.len() >= 2 {
            (begin_times[begin_times.len() - 1] - begin_times[0]) / (begin_times.len() - 1) as f64
        } else {
            cfg.duration
        };
        let avg_segments_flushed = if checkpoints == 0 {
            0.0
        } else {
            segments_flushed as f64 / checkpoints as f64
        };

        // Estimated recovery time: full backup read + 1.5 intervals of
        // log at the observed production rate (ping-pong: the completed
        // checkpoint's begin marker is on average 1.5 intervals old).
        let log_words_per_sec = (log_bytes as f64 / 4.0) / cfg.duration;
        let replay_words = (1.5 * avg_ckpt_interval * log_words_per_sec) as u64;
        let est_recovery_seconds = mmdb_recovery::recovery_time_model(
            &cfg.params.disk,
            cfg.params.db.n_segments(),
            cfg.params.db.s_seg,
            replay_words,
        );

        // ---- measured recovery: crash the engine for real ---------------
        db.crash()?;
        let recovery = db.recover()?;
        let snapshot = db.metrics_snapshot();

        // ---- protocol audit: the whole run must have been invariant-clean
        let violations = db.audit_violations();
        if let Some(first) = violations.first() {
            return Err(MmdbError::Corrupt(format!(
                "protocol audit detected {} violation(s); first: {first}",
                violations.len()
            )));
        }

        Ok(SimResult {
            algorithm: cfg.algorithm,
            measured_seconds: cfg.duration,
            committed,
            begun,
            aborted_two_color,
            checkpoints,
            avg_ckpt_interval,
            avg_segments_flushed,
            sync_ckpt: meters.sync_ckpt.snapshot(),
            async_ckpt: meters.async_ckpt.snapshot(),
            log_bytes,
            est_recovery_seconds,
            measured_recovery_seconds: recovery.total_seconds(),
            measured_recovery_log_words: recovery.log_words,
            snapshot,
        })
    }

    /// Runs `n` independent replications (seed, seed+1, …) and returns
    /// the collected results — the standard way to put error bars on the
    /// cross-validation numbers.
    pub fn run_replicated(&self, n: u32) -> Result<ReplicatedResult> {
        let mut runs = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut cfg = self.config;
            cfg.seed = self.config.seed.wrapping_add(i as u64);
            runs.push(Simulator::new(cfg).run()?);
        }
        Ok(ReplicatedResult { runs })
    }

    fn drain_retries(db: &mut Mmdb, s_rec: usize, retry_queue: &mut Vec<TxnSpec>) -> Result<()> {
        let retries: Vec<TxnSpec> = std::mem::take(retry_queue);
        for spec in retries {
            Self::attempt_txn(db, &spec, s_rec, retry_queue)?;
        }
        Ok(())
    }

    fn attempt_txn(
        db: &mut Mmdb,
        spec: &TxnSpec,
        s_rec: usize,
        retry_queue: &mut Vec<TxnSpec>,
    ) -> Result<()> {
        let updates = spec.materialize(s_rec);
        let txn = match db.begin_txn() {
            Ok(t) => t,
            Err(MmdbError::Quiesced) => {
                // COU quiesce window: retry after the checkpoint begins
                retry_queue.push(spec.clone());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        for (rid, value) in &updates {
            match db.write(txn, *rid, value) {
                Ok(()) => {}
                Err(MmdbError::TwoColorViolation { .. }) => {
                    // aborted by the engine; rerun after the sweep advances
                    retry_queue.push(spec.clone());
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        match db.commit(txn) {
            Ok(()) => Ok(()),
            Err(MmdbError::TwoColorViolation { .. }) => {
                retry_queue.push(spec.clone());
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(algorithm: Algorithm) -> SimConfig {
        let mut c = SimConfig::validation(algorithm);
        // smaller and shorter for unit tests
        c.params.db.s_db = 1 << 20; // 128 segments
        c.params.txn.lambda = 40.0;
        c.duration = 60.0;
        c.warmup = 20.0;
        c
    }

    #[test]
    fn all_algorithms_simulate() {
        for alg in Algorithm::ALL {
            let r = Simulator::new(quick(alg)).run().unwrap();
            assert!(r.committed > 0, "{alg}: no commits");
            assert!(r.checkpoints > 0, "{alg}: no checkpoints");
            assert!(r.overhead_per_txn() > 0.0, "{alg}: no overhead measured");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Simulator::new(quick(Algorithm::CouCopy)).run().unwrap();
        let b = Simulator::new(quick(Algorithm::CouCopy)).run().unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.sync_ckpt, b.sync_ckpt);
        assert_eq!(a.async_ckpt, b.async_ckpt);
        let mut other = quick(Algorithm::CouCopy);
        other.seed ^= 1;
        let c = Simulator::new(other).run().unwrap();
        assert_ne!(a.committed, c.committed, "seed must matter");
    }

    #[test]
    fn snapshot_carries_deterministic_simulated_latencies() {
        let a = Simulator::new(quick(Algorithm::FuzzyCopy)).run().unwrap();
        let pass = a.snapshot.hist("sim.ckpt_pass_us").expect("pass hist");
        assert_eq!(pass.count, a.checkpoints, "one pass sample per checkpoint");
        assert!(pass.p50 > 0);
        let rec = a
            .snapshot
            .hist("recovery.total_modeled_us")
            .expect("recovery hist");
        assert_eq!(rec.count, 1, "exactly the end-of-run recovery");
        // the simulated-clock histograms must be reproducible under the
        // same seed (unlike the wall-clock ones)
        let b = Simulator::new(quick(Algorithm::FuzzyCopy)).run().unwrap();
        assert_eq!(
            a.snapshot.hist("sim.ckpt_pass_us"),
            b.snapshot.hist("sim.ckpt_pass_us")
        );
        assert_eq!(
            a.snapshot.hist("recovery.total_modeled_us"),
            b.snapshot.hist("recovery.total_modeled_us")
        );
    }

    #[test]
    fn two_color_aborts_happen_under_back_to_back_checkpoints() {
        let r = Simulator::new(quick(Algorithm::TwoColorCopy))
            .run()
            .unwrap();
        assert!(
            r.aborted_two_color > 0,
            "continuous 2C checkpointing should abort some transactions"
        );
        assert!(r.p_restart() > 0.0 && r.p_restart() < 1.0);
    }

    #[test]
    fn fuzzy_and_cou_never_abort() {
        for alg in [
            Algorithm::FuzzyCopy,
            Algorithm::CouCopy,
            Algorithm::CouFlush,
        ] {
            let r = Simulator::new(quick(alg)).run().unwrap();
            assert_eq!(r.aborted_two_color, 0, "{alg} must not abort transactions");
        }
    }

    #[test]
    fn cou_pays_synchronous_copies() {
        let r = Simulator::new(quick(Algorithm::CouCopy)).run().unwrap();
        assert!(
            r.sync_ckpt.get(mmdb_types::CostCategory::Move) > 0,
            "COU transactions must have copied segments"
        );
    }

    #[test]
    fn throughput_matches_lambda() {
        let r = Simulator::new(quick(Algorithm::FuzzyCopy)).run().unwrap();
        let rate = r.committed as f64 / r.measured_seconds;
        assert!((rate - 40.0).abs() < 4.0, "committed rate ≈ λ, got {rate}");
    }

    #[test]
    fn longer_interval_lowers_overhead() {
        let fast = Simulator::new(quick(Algorithm::CouCopy)).run().unwrap();
        let mut slow_cfg = quick(Algorithm::CouCopy);
        slow_cfg.ckpt_interval = Some(30.0);
        let slow = Simulator::new(slow_cfg).run().unwrap();
        assert!(
            slow.overhead_per_txn() < fast.overhead_per_txn(),
            "spacing checkpoints out must reduce per-txn overhead: {} vs {}",
            slow.overhead_per_txn(),
            fast.overhead_per_txn()
        );
        assert!(slow.checkpoints < fast.checkpoints);
    }

    #[test]
    fn replications_are_tight() {
        let mut cfg = quick(Algorithm::CouCopy);
        cfg.duration = 40.0;
        let rep = Simulator::new(cfg).run_replicated(4).unwrap();
        assert_eq!(rep.runs.len(), 4);
        let (mean, std) = rep.overhead_stats();
        assert!(mean > 0.0);
        // independent seeds must differ but agree within ~15%
        assert!(
            std / mean < 0.15,
            "replication spread too wide: mean {mean}, std {std}"
        );
        let distinct: std::collections::HashSet<u64> =
            rep.runs.iter().map(|r| r.committed).collect();
        assert!(distinct.len() > 1, "seeds must actually vary the run");
    }

    #[test]
    fn measured_recovery_close_to_estimate() {
        let r = Simulator::new(quick(Algorithm::FuzzyCopy)).run().unwrap();
        assert!(r.measured_recovery_seconds > 0.0);
        // the estimate models 1.5 intervals of log; the real crash point
        // is some fraction of an interval past the last completed
        // checkpoint, so agreement within ~2× of the (small) log part is
        // all that is claimed — but both are dominated by the backup
        // read, so totals should be within 20%.
        let ratio = r.measured_recovery_seconds / r.est_recovery_seconds;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured {} vs estimated {}",
            r.measured_recovery_seconds,
            r.est_recovery_seconds
        );
    }

    #[test]
    fn fastfuzzy_is_cheapest_in_simulation() {
        let mut best: Option<(Algorithm, f64)> = None;
        let fast = Simulator::new(quick(Algorithm::FastFuzzy)).run().unwrap();
        for alg in [
            Algorithm::FuzzyCopy,
            Algorithm::TwoColorCopy,
            Algorithm::CouCopy,
        ] {
            let r = Simulator::new(quick(alg)).run().unwrap();
            let o = r.overhead_per_txn();
            if best.map(|(_, b)| o < b).unwrap_or(true) {
                best = Some((alg, o));
            }
        }
        assert!(
            fast.overhead_per_txn() < best.unwrap().1,
            "FASTFUZZY should beat {:?}",
            best
        );
    }
}
