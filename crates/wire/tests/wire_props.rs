//! Property tests: the wire codec round-trips every message shape, and
//! corrupt payloads fail to decode instead of panicking or misparsing.

// Test helpers exercise infallible paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb_types::{RecordId, TxnId, Word};
use mmdb_wire::{
    read_frame, write_frame, CkptStartState, CkptSummary, ErrorCode, ReplWelcome, Request,
    Response, ServerInfo, TraceContext, WireError,
};
use proptest::prelude::*;

fn words() -> impl Strategy<Value = Vec<Word>> {
    proptest::collection::vec(any::<u32>(), 0..9)
}

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..48)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn updates() -> impl Strategy<Value = Vec<(RecordId, Vec<Word>)>> {
    proptest::collection::vec((any::<u64>(), words()), 0..6)
        .prop_map(|v| v.into_iter().map(|(r, w)| (RecordId(r), w)).collect())
}

fn requests() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        any::<u64>().prop_map(|r| Request::Get { rid: RecordId(r) }),
        (any::<u64>(), words()).prop_map(|(r, value)| Request::Put {
            rid: RecordId(r),
            value,
        }),
        updates().prop_map(|updates| Request::Batch { updates }),
        Just(Request::Begin),
        (any::<u64>(), any::<u64>()).prop_map(|(t, r)| Request::Read {
            txn: TxnId(t),
            rid: RecordId(r),
        }),
        (any::<u64>(), any::<u64>(), words()).prop_map(|(t, r, value)| Request::Write {
            txn: TxnId(t),
            rid: RecordId(r),
            value,
        }),
        any::<u64>().prop_map(|t| Request::Commit { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| Request::Abort { txn: TxnId(t) }),
        Just(Request::Stats),
        any::<bool>().prop_map(|sync| Request::Checkpoint { sync }),
        Just(Request::Fingerprint),
        Just(Request::Info),
        Just(Request::Shutdown),
        any::<u32>().prop_map(|limit| Request::TraceDump { limit }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(ver_min, ver_max)| Request::ReplHello { ver_min, ver_max }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
            |(shard, applied, max_bytes, wait_ms)| Request::ReplAck {
                shard,
                applied,
                max_bytes,
                wait_ms,
            }
        ),
        Just(Request::Promote),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(shard, from, max_records)| {
            Request::ReplScan {
                shard,
                from,
                max_records,
            }
        }),
    ]
}

fn trace_contexts() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None::<TraceContext>),
        (any::<u64>(), any::<u64>()).prop_map(|(trace_id, parent_span)| {
            Some(TraceContext {
                trace_id,
                parent_span,
            })
        }),
    ]
}

fn error_codes() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Transient),
        Just(ErrorCode::OutOfRange),
        Just(ErrorCode::Invalid),
        Just(ErrorCode::Corrupt),
        Just(ErrorCode::Io),
        Just(ErrorCode::Busy),
        Just(ErrorCode::Protocol),
        Just(ErrorCode::ShuttingDown),
    ]
}

fn responses() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        words().prop_map(|words| Response::Value { words }),
        (any::<u64>(), any::<u32>()).prop_map(|(t, runs)| Response::Committed {
            txn: TxnId(t),
            runs,
        }),
        any::<u64>().prop_map(|t| Response::Begun { txn: TxnId(t) }),
        Just(Response::Ok),
        text().prop_map(|json| Response::StatsJson { json }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(ckpt, f, s, o, copy)| Response::CkptDone(CkptSummary {
                ckpt,
                copy: u8::from(copy),
                segments_flushed: f,
                segments_skipped: s,
                old_copies_flushed: o,
            })),
        prop_oneof![
            Just(CkptStartState::Started),
            Just(CkptStartState::Quiescing),
            Just(CkptStartState::AlreadyRunning),
        ]
        .prop_map(|state| Response::CkptStarted { state }),
        any::<u64>().prop_map(|fp| Response::Fingerprint { fp }),
        (any::<u64>(), any::<u32>(), any::<u64>(), text()).prop_map(|(n, w, s, algorithm)| {
            Response::Info(ServerInfo {
                n_records: n,
                record_words: w,
                n_segments: s,
                algorithm,
            })
        }),
        Just(Response::ShuttingDown),
        text().prop_map(|json| Response::TraceDump { json }),
        (error_codes(), text()).prop_map(|(code, message)| Response::Error { code, message }),
        (
            any::<u8>(),
            1u32..16,
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        )
            .prop_map(|(ver, shards, n_records, record_words, shard_lsns)| {
                Response::ReplWelcome(ReplWelcome {
                    ver,
                    shards,
                    n_records,
                    record_words,
                    shard_lsns,
                })
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(shard, start, durable, bytes)| Response::ReplBatch {
                shard,
                start,
                durable,
                bytes,
            }),
        Just(Response::Promoted),
        (any::<u64>(), updates()).prop_map(|(next, records)| Response::ReplRecords {
            next,
            records: records.into_iter().map(|(r, w)| (r.raw(), w)).collect(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn request_roundtrip(req in requests()) {
        let payload = req.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in responses()) {
        let payload = resp.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_survive_the_frame_transport(reqs in proptest::collection::vec(requests(), 1..8)) {
        let mut buf = Vec::new();
        for req in &reqs {
            write_frame(&mut buf, &req.encode()).unwrap();
        }
        let mut r = &buf[..];
        for req in &reqs {
            let payload = read_frame(&mut r).unwrap().expect("frame present");
            prop_assert_eq!(&Request::decode(&payload).unwrap(), req);
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn traced_request_roundtrip(req in requests(), trace in trace_contexts()) {
        let payload = req.encode_with_trace(trace);
        let (decoded, back) = Request::decode_with_trace(&payload).unwrap();
        prop_assert_eq!(decoded, req.clone());
        prop_assert_eq!(back, trace);
        // the untraced encoding must be bit-stable regardless of the API used
        if trace.is_none() {
            prop_assert_eq!(payload, req.encode());
        }
    }

    #[test]
    fn truncation_never_panics_and_never_misparses(req in requests(), cut in 0usize..64) {
        let payload = req.encode();
        prop_assume!(cut < payload.len());
        let truncated = &payload[..payload.len() - 1 - cut];
        // Truncated payloads must decode to an error or to a *shorter
        // prefix-compatible* message — never to the original (strict
        // trailing-byte checks make even that impossible here).
        match Request::decode(truncated) {
            Ok(decoded) => prop_assert_ne!(decoded, req),
            Err(WireError::Protocol(_)) => {}
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn traced_truncation_never_panics_and_never_misparses(
        req in requests(),
        trace in trace_contexts(),
        cut in 0usize..80,
    ) {
        let payload = req.encode_with_trace(trace);
        prop_assume!(cut < payload.len());
        let truncated = &payload[..payload.len() - 1 - cut];
        match Request::decode_with_trace(truncated) {
            Ok((decoded, back)) => prop_assert!((decoded, back) != (req.clone(), trace)),
            Err(WireError::Protocol(_)) => {}
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn bitflips_never_panic(resp in responses(), flip_byte in any::<u16>(), flip_bit in 0u8..8) {
        let mut payload = resp.encode();
        let idx = flip_byte as usize % payload.len();
        payload[idx] ^= 1 << flip_bit;
        // decoding may fail or yield a different valid message; it must not panic
        let _ = Response::decode(&payload);
    }

    #[test]
    fn traced_request_bitflips_never_panic(
        req in requests(),
        trace in trace_contexts(),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        // flipping any bit — including the FLAG_TRACED bit itself —
        // must decode to an error or a different message, never panic
        let mut payload = req.encode_with_trace(trace);
        let idx = flip_byte as usize % payload.len();
        payload[idx] ^= 1 << flip_bit;
        let _ = Request::decode_with_trace(&payload);
    }
}

#[test]
fn error_frames_carry_code_and_message() {
    let resp = Response::Error {
        code: ErrorCode::Transient,
        message: "two-color abort; retry".into(),
    };
    let back = Response::decode(&resp.encode()).unwrap();
    assert_eq!(back, resp);
}
