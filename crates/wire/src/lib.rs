//! **mmdb-wire** — the network protocol for serving an mmdb engine.
//!
//! A deliberately small, dependency-free (`std::net` only) binary
//! protocol: every message is one length-prefixed frame whose payload
//! starts with a protocol version byte and an opcode byte
//! ([`frame`]), followed by a fixed-layout little-endian body
//! ([`message`]). The same crate carries both directions — the typed
//! [`Request`]/[`Response`] enums with exact encode/decode round-trips
//! (property-tested) — plus the blocking [`Client`] used by the load
//! driver, the CLI and tests.
//!
//! The protocol surface mirrors the engine's transaction interface
//! (paper §2.4: primitive actions are record reads and writes):
//!
//! * one-shot ops: `Ping`, `Get`, `Put`, `Batch` (a whole transaction,
//!   retried server-side on two-color aborts exactly like
//!   [`run_txn`](../mmdb_core/struct.Mmdb.html#method.run_txn)),
//! * interactive transactions: `Begin` / `Read` / `Write` / `Commit` /
//!   `Abort` (the server aborts a connection's open transactions when
//!   the connection drops),
//! * operations and control: `Stats` (the unified metrics snapshot as
//!   JSON), `Checkpoint` (begin or run-to-completion), `Fingerprint`,
//!   `Info`, and `Shutdown` (graceful server stop).
//!
//! Errors travel as first-class [`Response::Error`] frames carrying an
//! [`ErrorCode`]; [`ErrorCode::Transient`] marks "retry the
//! transaction" outcomes (two-color aborts surfacing through a
//! quiesce, COU quiesce refusals) so closed-loop clients can
//! distinguish protocol failures from ordinary checkpoint interference.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod message;

pub use client::Client;
pub use frame::{
    read_frame, write_frame, FrameError, FrameReader, PollFrame, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use message::{
    CkptStartState, CkptSummary, ErrorCode, ReplWelcome, Request, Response, ScanRecords,
    ServerInfo, TraceContext, FLAG_TRACED, REPL_VERSION,
};

use std::fmt;
use std::io;

/// Errors surfaced by the wire layer and the blocking client.
#[derive(Debug)]
pub enum WireError {
    /// A transport-level I/O failure (connection reset, timeout, ...).
    Io(io::Error),
    /// A malformed frame or message (bad version, unknown opcode,
    /// truncated or trailing bytes, oversized frame).
    Protocol(String),
    /// The server answered with an error frame.
    Remote {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable server-side message.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request that was sent.
    Unexpected(String),
}

impl WireError {
    /// True when the operation may simply be retried (checkpoint
    /// interference, not a caller bug): remote [`ErrorCode::Transient`]
    /// and [`ErrorCode::Busy`] responses.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            WireError::Remote {
                code: ErrorCode::Transient | ErrorCode::Busy,
                ..
            }
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol(msg) => write!(f, "wire protocol error: {msg}"),
            WireError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            WireError::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => WireError::Io(e),
            FrameError::TooLarge { len, max } => {
                WireError::Protocol(format!("frame of {len} bytes exceeds the {max}-byte cap"))
            }
        }
    }
}

/// Convenience alias for wire-layer results.
pub type WireResult<T> = std::result::Result<T, WireError>;
