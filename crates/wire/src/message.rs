//! Typed protocol messages and their binary codecs.
//!
//! Layout: every payload is `[version: u8][opcode: u8][body...]` with
//! all multi-byte integers little-endian. Request opcodes live below
//! `0x80`, response opcodes at or above it, so a stray frame sent in
//! the wrong direction can never decode as valid. Decoding is strict:
//! unknown opcodes, version mismatches, truncated bodies *and trailing
//! bytes* are all errors — the round-trip proptests in
//! `tests/wire_props.rs` pin `decode(encode(m)) == m` for every
//! message shape.

use crate::frame::PROTOCOL_VERSION;
use crate::WireError;
use mmdb_types::{RecordId, TxnId, Word};

/// Machine-readable classification carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Retry the transaction: checkpoint interference (two-color abort
    /// surfaced to the client, COU quiesce refusal), not a caller bug.
    Transient = 1,
    /// A record or transaction id out of range / not active.
    OutOfRange = 2,
    /// Invalid request for the current state (bad record size, wrong
    /// arguments).
    Invalid = 3,
    /// The server detected corrupt on-disk data.
    Corrupt = 4,
    /// An I/O failure on the server side.
    Io = 5,
    /// The engine is busy (e.g. a checkpoint is already in progress).
    Busy = 6,
    /// The client broke the protocol (the connection will be closed).
    Protocol = 7,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown = 8,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Transient,
            2 => ErrorCode::OutOfRange,
            3 => ErrorCode::Invalid,
            4 => ErrorCode::Corrupt,
            5 => ErrorCode::Io,
            6 => ErrorCode::Busy,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// Outcome of an asynchronous checkpoint request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CkptStartState {
    /// The checkpoint began.
    Started = 0,
    /// A COU checkpoint is draining active transactions first.
    Quiescing = 1,
    /// A checkpoint was already running; nothing new was started.
    AlreadyRunning = 2,
}

impl CkptStartState {
    fn from_u8(v: u8) -> Option<CkptStartState> {
        Some(match v {
            0 => CkptStartState::Started,
            1 => CkptStartState::Quiescing,
            2 => CkptStartState::AlreadyRunning,
            _ => return None,
        })
    }
}

/// A completed checkpoint's report, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptSummary {
    /// Checkpoint id.
    pub ckpt: u64,
    /// Ping-pong copy written (0 or 1).
    pub copy: u8,
    /// Segment images written.
    pub segments_flushed: u64,
    /// Segments examined and skipped.
    pub segments_skipped: u64,
    /// Of the flushed images, how many came from COU old copies.
    pub old_copies_flushed: u64,
}

/// Static facts about the served database, for clients sizing their
/// workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of records in the database.
    pub n_records: u64,
    /// Words per record — `Put`/`Write` values must have this length.
    pub record_words: u32,
    /// Number of segments.
    pub n_segments: u64,
    /// The checkpointing algorithm's name (e.g. `"COUCOPY"`).
    pub algorithm: String,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read a committed record outside any transaction.
    Get {
        /// The record to read.
        rid: RecordId,
    },
    /// Commit a single-record update as one transaction (retried
    /// server-side on two-color aborts).
    Put {
        /// The record to update.
        rid: RecordId,
        /// The full new value (`record_words` words).
        value: Vec<Word>,
    },
    /// Commit a multi-record update as one transaction (retried
    /// server-side on two-color aborts).
    Batch {
        /// Distinct records with their full new values.
        updates: Vec<(RecordId, Vec<Word>)>,
    },
    /// Begin an interactive transaction owned by this connection.
    Begin,
    /// Read a record inside an interactive transaction.
    Read {
        /// The transaction.
        txn: TxnId,
        /// The record to read.
        rid: RecordId,
    },
    /// Stage a write inside an interactive transaction.
    Write {
        /// The transaction.
        txn: TxnId,
        /// The record to update.
        rid: RecordId,
        /// The full new value.
        value: Vec<Word>,
    },
    /// Commit an interactive transaction.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// Abort an interactive transaction.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// Fetch the unified metrics snapshot as pretty JSON.
    Stats,
    /// Checkpoint control: `sync` runs a checkpoint to completion and
    /// returns its report; async requests one and returns immediately
    /// (the server's checkpointer thread drives it).
    Checkpoint {
        /// Run to completion before responding?
        sync: bool,
    },
    /// Content fingerprint of the committed database (test aid).
    Fingerprint,
    /// Static facts about the served database.
    Info,
    /// Ask the server to stop accepting work and shut down gracefully.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// A record's committed (or transaction-visible) value.
    Value {
        /// The record's words.
        words: Vec<Word>,
    },
    /// A one-shot or interactive transaction committed.
    Committed {
        /// The committed transaction id.
        txn: TxnId,
        /// Runs it took (1 = no two-color rerun).
        runs: u32,
    },
    /// An interactive transaction began.
    Begun {
        /// The new transaction id.
        txn: TxnId,
    },
    /// Generic success without payload (e.g. `Abort`).
    Ok,
    /// The metrics snapshot as pretty JSON.
    StatsJson {
        /// JSON text of the unified metrics snapshot.
        json: String,
    },
    /// A synchronous checkpoint completed.
    CkptDone(CkptSummary),
    /// An asynchronous checkpoint request was accepted.
    CkptStarted {
        /// What actually happened.
        state: CkptStartState,
    },
    /// The database fingerprint.
    Fingerprint {
        /// Content hash of the committed database.
        fp: u64,
    },
    /// Static server facts.
    Info(ServerInfo),
    /// The server acknowledges a shutdown request.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
}

// ----- opcodes --------------------------------------------------------------

const OP_PING: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_PUT: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_BEGIN: u8 = 0x05;
const OP_READ: u8 = 0x06;
const OP_WRITE: u8 = 0x07;
const OP_COMMIT: u8 = 0x08;
const OP_ABORT: u8 = 0x09;
const OP_STATS: u8 = 0x0A;
const OP_CHECKPOINT: u8 = 0x0B;
const OP_FINGERPRINT: u8 = 0x0C;
const OP_INFO: u8 = 0x0D;
const OP_SHUTDOWN: u8 = 0x0E;

const OP_PONG: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_COMMITTED: u8 = 0x83;
const OP_BEGUN: u8 = 0x84;
const OP_OK: u8 = 0x85;
const OP_STATS_JSON: u8 = 0x86;
const OP_CKPT_DONE: u8 = 0x87;
const OP_CKPT_STARTED: u8 = 0x88;
const OP_FP: u8 = 0x89;
const OP_SERVER_INFO: u8 = 0x8A;
const OP_SHUTTING_DOWN: u8 = 0x8B;
const OP_ERROR: u8 = 0x8C;

impl Request {
    /// Short op name, used for telemetry labels.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Get { .. } => "get",
            Request::Put { .. } => "put",
            Request::Batch { .. } => "batch",
            Request::Begin => "begin",
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::Commit { .. } => "commit",
            Request::Abort { .. } => "abort",
            Request::Stats => "stats",
            Request::Checkpoint { .. } => "checkpoint",
            Request::Fingerprint => "fingerprint",
            Request::Info => "info",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Ping => e.op(OP_PING),
            Request::Get { rid } => {
                e.op(OP_GET);
                e.u64(rid.raw());
            }
            Request::Put { rid, value } => {
                e.op(OP_PUT);
                e.u64(rid.raw());
                e.words(value);
            }
            Request::Batch { updates } => {
                e.op(OP_BATCH);
                e.u32(updates.len() as u32);
                for (rid, value) in updates {
                    e.u64(rid.raw());
                    e.words(value);
                }
            }
            Request::Begin => e.op(OP_BEGIN),
            Request::Read { txn, rid } => {
                e.op(OP_READ);
                e.u64(txn.raw());
                e.u64(rid.raw());
            }
            Request::Write { txn, rid, value } => {
                e.op(OP_WRITE);
                e.u64(txn.raw());
                e.u64(rid.raw());
                e.words(value);
            }
            Request::Commit { txn } => {
                e.op(OP_COMMIT);
                e.u64(txn.raw());
            }
            Request::Abort { txn } => {
                e.op(OP_ABORT);
                e.u64(txn.raw());
            }
            Request::Stats => e.op(OP_STATS),
            Request::Checkpoint { sync } => {
                e.op(OP_CHECKPOINT);
                e.u8(u8::from(*sync));
            }
            Request::Fingerprint => e.op(OP_FINGERPRINT),
            Request::Info => e.op(OP_INFO),
            Request::Shutdown => e.op(OP_SHUTDOWN),
        }
        e.finish()
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Decoder::new(payload)?;
        let req = match d.opcode {
            OP_PING => Request::Ping,
            OP_GET => Request::Get {
                rid: RecordId(d.u64()?),
            },
            OP_PUT => Request::Put {
                rid: RecordId(d.u64()?),
                value: d.words()?,
            },
            OP_BATCH => {
                let n = d.u32()? as usize;
                let mut updates = Vec::new();
                for _ in 0..n {
                    let rid = RecordId(d.u64()?);
                    let value = d.words()?;
                    updates.push((rid, value));
                }
                Request::Batch { updates }
            }
            OP_BEGIN => Request::Begin,
            OP_READ => Request::Read {
                txn: TxnId(d.u64()?),
                rid: RecordId(d.u64()?),
            },
            OP_WRITE => Request::Write {
                txn: TxnId(d.u64()?),
                rid: RecordId(d.u64()?),
                value: d.words()?,
            },
            OP_COMMIT => Request::Commit {
                txn: TxnId(d.u64()?),
            },
            OP_ABORT => Request::Abort {
                txn: TxnId(d.u64()?),
            },
            OP_STATS => Request::Stats,
            OP_CHECKPOINT => Request::Checkpoint { sync: d.u8()? != 0 },
            OP_FINGERPRINT => Request::Fingerprint,
            OP_INFO => Request::Info,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(bad(format!("unknown request opcode {op:#x}"))),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::Pong => e.op(OP_PONG),
            Response::Value { words } => {
                e.op(OP_VALUE);
                e.words(words);
            }
            Response::Committed { txn, runs } => {
                e.op(OP_COMMITTED);
                e.u64(txn.raw());
                e.u32(*runs);
            }
            Response::Begun { txn } => {
                e.op(OP_BEGUN);
                e.u64(txn.raw());
            }
            Response::Ok => e.op(OP_OK),
            Response::StatsJson { json } => {
                e.op(OP_STATS_JSON);
                e.string(json);
            }
            Response::CkptDone(s) => {
                e.op(OP_CKPT_DONE);
                e.u64(s.ckpt);
                e.u8(s.copy);
                e.u64(s.segments_flushed);
                e.u64(s.segments_skipped);
                e.u64(s.old_copies_flushed);
            }
            Response::CkptStarted { state } => {
                e.op(OP_CKPT_STARTED);
                e.u8(*state as u8);
            }
            Response::Fingerprint { fp } => {
                e.op(OP_FP);
                e.u64(*fp);
            }
            Response::Info(info) => {
                e.op(OP_SERVER_INFO);
                e.u64(info.n_records);
                e.u32(info.record_words);
                e.u64(info.n_segments);
                e.string(&info.algorithm);
            }
            Response::ShuttingDown => e.op(OP_SHUTTING_DOWN),
            Response::Error { code, message } => {
                e.op(OP_ERROR);
                e.u16(*code as u16);
                e.string(message);
            }
        }
        e.finish()
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Decoder::new(payload)?;
        let resp = match d.opcode {
            OP_PONG => Response::Pong,
            OP_VALUE => Response::Value { words: d.words()? },
            OP_COMMITTED => Response::Committed {
                txn: TxnId(d.u64()?),
                runs: d.u32()?,
            },
            OP_BEGUN => Response::Begun {
                txn: TxnId(d.u64()?),
            },
            OP_OK => Response::Ok,
            OP_STATS_JSON => Response::StatsJson { json: d.string()? },
            OP_CKPT_DONE => Response::CkptDone(CkptSummary {
                ckpt: d.u64()?,
                copy: d.u8()?,
                segments_flushed: d.u64()?,
                segments_skipped: d.u64()?,
                old_copies_flushed: d.u64()?,
            }),
            OP_CKPT_STARTED => {
                let raw = d.u8()?;
                Response::CkptStarted {
                    state: CkptStartState::from_u8(raw)
                        .ok_or_else(|| bad(format!("unknown checkpoint-start state {raw}")))?,
                }
            }
            OP_FP => Response::Fingerprint { fp: d.u64()? },
            OP_SERVER_INFO => Response::Info(ServerInfo {
                n_records: d.u64()?,
                record_words: d.u32()?,
                n_segments: d.u64()?,
                algorithm: d.string()?,
            }),
            OP_SHUTTING_DOWN => Response::ShuttingDown,
            OP_ERROR => {
                let raw = d.u16()?;
                Response::Error {
                    code: ErrorCode::from_u16(raw)
                        .ok_or_else(|| bad(format!("unknown error code {raw}")))?,
                    message: d.string()?,
                }
            }
            op => return Err(bad(format!("unknown response opcode {op:#x}"))),
        };
        d.finish()?;
        Ok(resp)
    }
}

fn bad(msg: String) -> WireError {
    WireError::Protocol(msg)
}

// ----- little-endian body codec ---------------------------------------------

struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    fn new() -> Encoder {
        Encoder {
            buf: vec![PROTOCOL_VERSION, 0],
        }
    }

    fn op(&mut self, opcode: u8) {
        self.buf[1] = opcode;
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn words(&mut self, words: &[Word]) {
        self.u32(words.len() as u32);
        for w in words {
            self.u32(*w);
        }
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

struct Decoder<'a> {
    body: &'a [u8],
    pos: usize,
    opcode: u8,
}

impl<'a> Decoder<'a> {
    fn new(payload: &'a [u8]) -> Result<Decoder<'a>, WireError> {
        if payload.len() < 2 {
            return Err(bad(format!("{}-byte payload too short", payload.len())));
        }
        if payload[0] != PROTOCOL_VERSION {
            return Err(bad(format!(
                "protocol version {} (this build speaks {PROTOCOL_VERSION})",
                payload[0]
            )));
        }
        Ok(Decoder {
            body: &payload[2..],
            pos: 0,
            opcode: payload[1],
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or_else(|| bad("truncated message body".into()))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn words(&mut self) -> Result<Vec<Word>, WireError> {
        let n = self.u32()? as usize;
        // bound before allocating: each word is 4 body bytes
        if n > self.body.len().saturating_sub(self.pos) / 4 {
            return Err(bad(format!("word vector of {n} exceeds the body")));
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u32()?);
        }
        Ok(words)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8".into()))
    }

    /// Decoding must consume the body exactly.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.body.len() {
            return Err(bad(format!(
                "{} trailing bytes after message body",
                self.body.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_rejected() {
        let mut payload = Request::Ping.encode();
        payload[0] = 9;
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn request_opcodes_never_decode_as_responses() {
        let payload = Request::Get { rid: RecordId(3) }.encode();
        assert!(Response::decode(&payload).is_err());
        let payload = Response::Pong.encode();
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn hostile_word_count_does_not_allocate() {
        // a Put announcing u32::MAX words in a tiny body must error out
        let mut e = Encoder::new();
        e.op(OP_PUT);
        e.u64(0);
        e.u32(u32::MAX);
        let payload = e.finish();
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Protocol(_))
        ));
    }
}
