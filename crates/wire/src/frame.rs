//! Length-prefixed frame transport.
//!
//! Every protocol message travels as one frame:
//!
//! ```text
//! [ u32 LE payload length | payload bytes ... ]
//! ```
//!
//! The payload itself begins with [`PROTOCOL_VERSION`] and an opcode
//! byte (see [`crate::message`]); the frame layer only cares about
//! delimiting it. A hard payload cap ([`MAX_FRAME_BYTES`]) guards both
//! sides against hostile or corrupt lengths — a server must never
//! allocate gigabytes because four bytes on the wire said so.

use std::io::{self, Read, Write};

/// Version byte carried as the first payload byte of every frame.
/// Decoders reject frames from a different major protocol version
/// outright, so a version bump can never be silently misparsed.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame payload in bytes (8 MiB): far above any
/// legitimate message (the largest are `Stats` JSON snapshots and
/// batched record updates), far below an allocation-of-death.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Errors from the frame transport.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The peer announced a payload over the cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix + payload) and flushes the stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES, "oversized outbound frame");
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one complete frame payload. Returns `Ok(None)` on a clean EOF
/// *at a frame boundary* (the peer closed an idle connection); EOF in
/// the middle of a frame is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // the first byte distinguishes clean close from torn frame
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        write_frame(&mut buf, &[7u8; 1000]).expect("write big");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("read"), Some(vec![7u8; 1000]),);
        // clean EOF at a frame boundary
        assert!(read_frame(&mut r).expect("eof").is_none());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full frame").expect("write");
        buf.truncate(buf.len() - 3); // tear the payload
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn torn_length_prefix_is_an_error() {
        let buf = [0x05u8, 0x00]; // two of four length bytes
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }
}
