//! Length-prefixed frame transport.
//!
//! Every protocol message travels as one frame:
//!
//! ```text
//! [ u32 LE payload length | payload bytes ... ]
//! ```
//!
//! The payload itself begins with [`PROTOCOL_VERSION`] and an opcode
//! byte (see [`crate::message`]); the frame layer only cares about
//! delimiting it. A hard payload cap ([`MAX_FRAME_BYTES`]) guards both
//! sides against hostile or corrupt lengths — a server must never
//! allocate gigabytes because four bytes on the wire said so.

use std::io::{self, Read, Write};

/// Version byte carried as the first payload byte of every frame.
/// Decoders reject frames from a different major protocol version
/// outright, so a version bump can never be silently misparsed.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame payload in bytes (8 MiB): far above any
/// legitimate message (the largest are `Stats` JSON snapshots and
/// batched record updates), far below an allocation-of-death.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Errors from the frame transport.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The peer announced a payload over the cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix + payload) and flushes the stream.
///
/// The [`MAX_FRAME_BYTES`] cap is enforced here too (not only on
/// reads): an oversized payload is rejected with
/// [`io::ErrorKind::InvalidInput`] *before* any bytes hit the wire,
/// instead of being written whole only for the peer to kill the
/// connection — or, past `u32::MAX`, silently truncating the length
/// prefix and corrupting the stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge {
                len: payload.len(),
                max: MAX_FRAME_BYTES,
            },
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one complete frame payload. Returns `Ok(None)` on a clean EOF
/// *at a frame boundary* (the peer closed an idle connection); EOF in
/// the middle of a frame is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // the first byte distinguishes clean close from torn frame
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug, PartialEq)]
pub enum PollFrame {
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The read would block (a `SO_RCVTIMEO` read timeout expired, or
    /// the stream is non-blocking) before the frame completed. Any
    /// bytes already received stay buffered in the reader — call
    /// [`FrameReader::poll`] again to resume exactly where it left off.
    Pending {
        /// True if any bytes of an in-flight frame arrived during this
        /// call (i.e. the peer is actively sending, just slowly) —
        /// distinguishes a trickling frame from a genuinely idle
        /// connection for idle-timeout accounting.
        progressed: bool,
    },
}

/// Incremental frame reader for streams with a read timeout.
///
/// [`read_frame`] assumes a fully blocking stream: if a read timeout
/// fires after it has consumed part of the length prefix or payload,
/// those bytes are lost and the connection is permanently
/// desynchronized. `FrameReader` instead buffers partial state across
/// [`poll`](FrameReader::poll) calls, so a poll-style server loop
/// (short `SO_RCVTIMEO` to stay responsive to shutdown) never tears a
/// frame that merely straddles a poll interval — large frames and slow
/// links reassemble across as many polls as they need.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Length-prefix bytes received so far.
    header: [u8; 4],
    header_filled: usize,
    /// Allocated once the full prefix is in (and cap-checked).
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameReader {
    /// A reader at a frame boundary with nothing buffered.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True when bytes of an unfinished frame are buffered (a clean
    /// peer close right now would be a torn frame, not an idle close).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0
    }

    /// Reads as much of the current frame as the stream will give.
    ///
    /// Returns [`PollFrame::Frame`] once a frame completes (the reader
    /// resets to the next boundary), [`PollFrame::Closed`] on clean EOF
    /// at a boundary, and [`PollFrame::Pending`] when the stream would
    /// block mid-read. EOF inside a frame is an
    /// [`io::ErrorKind::UnexpectedEof`] error; a length prefix over
    /// [`MAX_FRAME_BYTES`] is [`FrameError::TooLarge`].
    pub fn poll(&mut self, r: &mut impl Read) -> Result<PollFrame, FrameError> {
        let mut progressed = false;
        loop {
            if self.header_filled < self.header.len() {
                match r.read(&mut self.header[self.header_filled..]) {
                    Ok(0) if self.header_filled == 0 => return Ok(PollFrame::Closed),
                    Ok(0) => {
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed inside a frame length prefix",
                        )))
                    }
                    Ok(n) => {
                        self.header_filled += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if is_would_block(&e) => return Ok(PollFrame::Pending { progressed }),
                    Err(e) => return Err(FrameError::Io(e)),
                }
                continue;
            }
            if self.payload.is_none() {
                let len = u32::from_le_bytes(self.header) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(FrameError::TooLarge {
                        len,
                        max: MAX_FRAME_BYTES,
                    });
                }
                self.payload = Some(vec![0u8; len]);
                self.payload_filled = 0;
            }
            let buf = self.payload.as_mut().expect("allocated above");
            if self.payload_filled < buf.len() {
                match r.read(&mut buf[self.payload_filled..]) {
                    Ok(0) => {
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed inside a frame payload",
                        )))
                    }
                    Ok(n) => {
                        self.payload_filled += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if is_would_block(&e) => return Ok(PollFrame::Pending { progressed }),
                    Err(e) => return Err(FrameError::Io(e)),
                }
                continue;
            }
            let payload = self.payload.take().expect("frame complete");
            self.header_filled = 0;
            self.payload_filled = 0;
            return Ok(PollFrame::Frame(payload));
        }
    }
}

/// Both kinds a read timeout surfaces as, depending on platform.
fn is_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        write_frame(&mut buf, &[7u8; 1000]).expect("write big");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("read"), Some(vec![7u8; 1000]),);
        // clean EOF at a frame boundary
        assert!(read_frame(&mut r).expect("eof").is_none());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full frame").expect("write");
        buf.truncate(buf.len() - 3); // tear the payload
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn torn_length_prefix_is_an_error() {
        let buf = [0x05u8, 0x00]; // two of four length bytes
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_outbound_frame_is_rejected_before_writing() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        let err = write_frame(&mut buf, &huge).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing may reach the wire");
        // exactly at the cap is fine
        write_frame(&mut io::sink(), &huge[..MAX_FRAME_BYTES]).expect("at-cap frame");
    }

    /// A stream that interleaves data with timeout-style blocks, the
    /// way a socket with `SO_RCVTIMEO` behaves under a slow sender.
    struct StutterReader {
        events: std::collections::VecDeque<StutterEvent>,
    }

    enum StutterEvent {
        Data(Vec<u8>),
        Block,
    }

    impl Read for StutterReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.events.front_mut() {
                None => Ok(0), // EOF
                Some(StutterEvent::Block) => {
                    self.events.pop_front();
                    Err(io::ErrorKind::WouldBlock.into())
                }
                Some(StutterEvent::Data(d)) => {
                    let n = d.len().min(buf.len());
                    buf[..n].copy_from_slice(&d[..n]);
                    d.drain(..n);
                    if d.is_empty() {
                        self.events.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_at_every_split_point() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"straddling frame").expect("write");
        // tear the byte stream at every position, with a timeout in the
        // gap: no split may lose bytes or desynchronize
        for split in 0..=wire.len() {
            let mut r = StutterReader {
                events: [
                    StutterEvent::Data(wire[..split].to_vec()),
                    StutterEvent::Block,
                    StutterEvent::Data(wire[split..].to_vec()),
                ]
                .into_iter()
                // an empty Data chunk would read as Ok(0) = EOF
                .filter(|e| !matches!(e, StutterEvent::Data(d) if d.is_empty()))
                .collect(),
            };
            let mut fr = FrameReader::new();
            let first = fr.poll(&mut r).expect("first poll");
            match first {
                PollFrame::Frame(p) => {
                    // split == wire.len(): whole frame before the block
                    assert_eq!(split, wire.len());
                    assert_eq!(p, b"straddling frame");
                    continue;
                }
                PollFrame::Pending { progressed } => {
                    assert_eq!(progressed, split > 0, "split at {split}");
                    assert_eq!(fr.mid_frame(), split > 0);
                }
                PollFrame::Closed => panic!("unexpected close at split {split}"),
            }
            match fr.poll(&mut r).expect("resumed poll") {
                PollFrame::Frame(p) => assert_eq!(p, b"straddling frame", "split at {split}"),
                other => panic!("expected completed frame at split {split}, got {other:?}"),
            }
            // and the reader is back at a boundary
            assert!(!fr.mid_frame());
            assert_eq!(fr.poll(&mut r).expect("eof"), PollFrame::Closed);
        }
    }

    #[test]
    fn frame_reader_reads_back_to_back_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"one").expect("write");
        write_frame(&mut wire, b"").expect("write");
        write_frame(&mut wire, b"three").expect("write");
        let mut r = &wire[..];
        let mut fr = FrameReader::new();
        assert_eq!(fr.poll(&mut r).unwrap(), PollFrame::Frame(b"one".to_vec()));
        assert_eq!(fr.poll(&mut r).unwrap(), PollFrame::Frame(Vec::new()));
        assert_eq!(
            fr.poll(&mut r).unwrap(),
            PollFrame::Frame(b"three".to_vec())
        );
        assert_eq!(fr.poll(&mut r).unwrap(), PollFrame::Closed);
    }

    #[test]
    fn frame_reader_rejects_oversized_and_torn_frames() {
        let mut fr = FrameReader::new();
        let mut r = &(u32::MAX).to_le_bytes()[..];
        assert!(matches!(fr.poll(&mut r), Err(FrameError::TooLarge { .. })));

        let mut wire = Vec::new();
        write_frame(&mut wire, b"whole").expect("write");
        wire.truncate(wire.len() - 2); // EOF inside the payload
        let mut fr = FrameReader::new();
        let mut r = &wire[..];
        match fr.poll(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }
}
