//! The blocking client: one TCP connection speaking the wire protocol.
//!
//! Deliberately synchronous (`std::net::TcpStream`, no async runtime):
//! the load driver runs one closed-loop client per thread, which is
//! exactly the deployment shape the protocol targets. Every method is
//! one request/response exchange; [`Client::request`] is the raw
//! escape hatch for harnesses that want to speak frames directly.

use crate::frame::{read_frame, write_frame};
use crate::message::{
    CkptStartState, CkptSummary, ErrorCode, ReplWelcome, Request, Response, ServerInfo,
    TraceContext, REPL_VERSION,
};
use crate::{WireError, WireResult};
use mmdb_types::{RecordId, TxnId, Word};
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Distinguishes clients within a process so their trace ids never
/// collide even when they trace concurrently.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(1);

/// splitmix64: a cheap, dependency-free bijective mixer — distinct
/// inputs give distinct, well-scattered trace ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A blocking connection to an mmdb server.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    /// When true, every request carries a fresh [`TraceContext`].
    tracing: bool,
    /// Per-client component of the trace id (process-unique).
    trace_seed: u64,
    /// Requests traced so far on this client.
    trace_seq: u64,
    /// The trace id of the most recently sent traced request.
    last_trace_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> WireResult<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Wraps an already-connected stream.
    pub fn over(stream: TcpStream) -> WireResult<Client> {
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
            tracing: false,
            trace_seed: CLIENT_SEQ.fetch_add(1, Ordering::Relaxed),
            trace_seq: 0,
            last_trace_id: 0,
        })
    }

    /// Turns request tracing on or off. While on, every request
    /// carries a fresh [`TraceContext`] in its frame header so the
    /// server's flight recorder can attribute the request's span tree.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace id of the most recently sent traced request (0 if no
    /// traced request has been sent). Lets harnesses correlate a
    /// specific request with the server's trace dump.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Mints the next trace context, or `None` when tracing is off.
    fn next_trace(&mut self) -> Option<TraceContext> {
        if !self.tracing {
            return None;
        }
        self.trace_seq += 1;
        let trace_id = splitmix64(self.trace_seed.rotate_left(32) ^ self.trace_seq);
        self.last_trace_id = trace_id;
        Some(TraceContext {
            trace_id,
            // the client-side root span for this request
            parent_span: splitmix64(trace_id),
        })
    }

    /// Bounds how long any single response may take (`None` waits
    /// forever). Protects closed-loop drivers from a hung server.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> WireResult<()> {
        self.reader.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response. Server-side `Error`
    /// frames come back as [`WireError::Remote`]. With tracing enabled
    /// (see [`Client::set_tracing`]) the request carries a fresh trace
    /// context; otherwise the bytes are identical to an untraced build.
    pub fn request(&mut self, req: &Request) -> WireResult<Response> {
        let trace = self.next_trace();
        write_frame(&mut self.writer, &req.encode_with_trace(trace))?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| WireError::Protocol("server closed the connection".into()))?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> WireResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Static facts about the served database.
    pub fn info(&mut self) -> WireResult<ServerInfo> {
        match self.request(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("Info", &other)),
        }
    }

    /// Reads a committed record outside any transaction.
    pub fn get(&mut self, rid: RecordId) -> WireResult<Vec<Word>> {
        match self.request(&Request::Get { rid })? {
            Response::Value { words } => Ok(words),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Commits a single-record update as one transaction; returns
    /// `(txn, runs)`.
    pub fn put(&mut self, rid: RecordId, value: &[Word]) -> WireResult<(TxnId, u32)> {
        let req = Request::Put {
            rid,
            value: value.to_vec(),
        };
        match self.request(&req)? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Commits a multi-record update as one transaction; returns
    /// `(txn, runs)`.
    pub fn batch(&mut self, updates: &[(RecordId, Vec<Word>)]) -> WireResult<(TxnId, u32)> {
        let req = Request::Batch {
            updates: updates.to_vec(),
        };
        match self.request(&req)? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Begins an interactive transaction owned by this connection.
    pub fn begin(&mut self) -> WireResult<TxnId> {
        match self.request(&Request::Begin)? {
            Response::Begun { txn } => Ok(txn),
            other => Err(unexpected("Begun", &other)),
        }
    }

    /// Reads a record inside an interactive transaction
    /// (read-your-writes semantics, like the engine).
    pub fn read(&mut self, txn: TxnId, rid: RecordId) -> WireResult<Vec<Word>> {
        match self.request(&Request::Read { txn, rid })? {
            Response::Value { words } => Ok(words),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Stages a write inside an interactive transaction.
    pub fn write(&mut self, txn: TxnId, rid: RecordId, value: &[Word]) -> WireResult<()> {
        let req = Request::Write {
            txn,
            rid,
            value: value.to_vec(),
        };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Commits an interactive transaction.
    pub fn commit(&mut self, txn: TxnId) -> WireResult<(TxnId, u32)> {
        match self.request(&Request::Commit { txn })? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Aborts an interactive transaction.
    pub fn abort(&mut self, txn: TxnId) -> WireResult<()> {
        match self.request(&Request::Abort { txn })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// The unified metrics snapshot as pretty JSON.
    pub fn stats_json(&mut self) -> WireResult<String> {
        match self.request(&Request::Stats)? {
            Response::StatsJson { json } => Ok(json),
            other => Err(unexpected("StatsJson", &other)),
        }
    }

    /// Runs a checkpoint to completion and returns its report.
    pub fn checkpoint_sync(&mut self) -> WireResult<CkptSummary> {
        match self.request(&Request::Checkpoint { sync: true })? {
            Response::CkptDone(s) => Ok(s),
            other => Err(unexpected("CkptDone", &other)),
        }
    }

    /// Requests a checkpoint and returns immediately; the server's
    /// checkpointer thread drives it.
    pub fn checkpoint_async(&mut self) -> WireResult<CkptStartState> {
        match self.request(&Request::Checkpoint { sync: false })? {
            Response::CkptStarted { state } => Ok(state),
            other => Err(unexpected("CkptStarted", &other)),
        }
    }

    /// Content fingerprint of the committed database.
    pub fn fingerprint(&mut self) -> WireResult<u64> {
        match self.request(&Request::Fingerprint)? {
            Response::Fingerprint { fp } => Ok(fp),
            other => Err(unexpected("Fingerprint", &other)),
        }
    }

    /// Fetches the server's slow-request log and recent flight-recorder
    /// spans as JSON (schema `mmdb-trace/v1`). `limit` caps the number
    /// of flight-recorder spans returned.
    pub fn trace_dump(&mut self, limit: u32) -> WireResult<String> {
        match self.request(&Request::TraceDump { limit })? {
            Response::TraceDump { json } => Ok(json),
            other => Err(unexpected("TraceDump", &other)),
        }
    }

    /// Introduces this connection as a replication standby and
    /// negotiates the replication version (this build offers exactly
    /// [`REPL_VERSION`]). Returns the primary's welcome: negotiated
    /// version plus topology facts the standby must match.
    pub fn repl_hello(&mut self) -> WireResult<ReplWelcome> {
        let req = Request::ReplHello {
            ver_min: 1,
            ver_max: REPL_VERSION,
        };
        match self.request(&req)? {
            Response::ReplWelcome(w) => Ok(w),
            other => Err(unexpected("ReplWelcome", &other)),
        }
    }

    /// Acknowledges `applied` on one shard's log and pulls the next
    /// batch, long-polling up to `wait_ms` server-side. Returns
    /// `(start, durable, bytes)`; empty `bytes` means the poll timed
    /// out with nothing new past `applied`.
    pub fn repl_pull(
        &mut self,
        shard: u32,
        applied: u64,
        max_bytes: u32,
        wait_ms: u32,
    ) -> WireResult<(u64, u64, Vec<u8>)> {
        let req = Request::ReplAck {
            shard,
            applied,
            max_bytes,
            wait_ms,
        };
        match self.request(&req)? {
            Response::ReplBatch {
                shard: got,
                start,
                durable,
                bytes,
            } => {
                if got != shard {
                    return Err(WireError::Unexpected(format!(
                        "batch for shard {got}, wanted {shard}"
                    )));
                }
                Ok((start, durable, bytes))
            }
            other => Err(unexpected("ReplBatch", &other)),
        }
    }

    /// Bulk-reads one page of a shard's committed records for standby
    /// bootstrap. Returns `(next, records)`: every record id in
    /// `[from, next)` was scanned, and `records` holds the nonzero
    /// ones — an id absent from a scanned range is zero on the
    /// primary. `next == n_records` ends the scan.
    pub fn repl_scan(
        &mut self,
        shard: u32,
        from: u64,
        max_records: u32,
    ) -> WireResult<(u64, crate::ScanRecords)> {
        let req = Request::ReplScan {
            shard,
            from,
            max_records,
        };
        match self.request(&req)? {
            Response::ReplRecords { next, records } => Ok((next, records)),
            other => Err(unexpected("ReplRecords", &other)),
        }
    }

    /// Promotes a standby to primary: it stops pulling, drains replay,
    /// and starts accepting writes.
    pub fn promote(&mut self) -> WireResult<()> {
        match self.request(&Request::Promote)? {
            Response::Promoted => Ok(()),
            other => Err(unexpected("Promoted", &other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> WireResult<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Retries `op` while the server reports transient (checkpoint
    /// interference) errors, up to `max_retries`, backing off briefly.
    /// This is the closed-loop driver's commit discipline: two-color
    /// aborts and COU quiesce refusals are load, not failures.
    pub fn retry_transient<T>(
        &mut self,
        max_retries: u32,
        mut op: impl FnMut(&mut Client) -> WireResult<T>,
    ) -> WireResult<(T, u32)> {
        let mut retries = 0;
        loop {
            match op(self) {
                Ok(v) => return Ok((v, retries)),
                Err(e) if e.is_transient() && retries < max_retries => {
                    retries += 1;
                    std::thread::sleep(Duration::from_micros(200 * u64::from(retries.min(10))));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> WireError {
    let got = match got {
        Response::Pong => "Pong",
        Response::Value { .. } => "Value",
        Response::Committed { .. } => "Committed",
        Response::Begun { .. } => "Begun",
        Response::Ok => "Ok",
        Response::StatsJson { .. } => "StatsJson",
        Response::CkptDone(_) => "CkptDone",
        Response::CkptStarted { .. } => "CkptStarted",
        Response::Fingerprint { .. } => "Fingerprint",
        Response::Info(_) => "Info",
        Response::ShuttingDown => "ShuttingDown",
        Response::TraceDump { .. } => "TraceDump",
        Response::ReplWelcome(_) => "ReplWelcome",
        Response::ReplBatch { .. } => "ReplBatch",
        Response::ReplRecords { .. } => "ReplRecords",
        Response::Promoted => "Promoted",
        Response::Error { .. } => "Error",
    };
    WireError::Unexpected(format!("wanted {wanted}, got {got}"))
}

/// Classifies an `ErrorCode` for drivers that count error kinds.
pub fn is_retryable(code: ErrorCode) -> bool {
    matches!(code, ErrorCode::Transient | ErrorCode::Busy)
}
