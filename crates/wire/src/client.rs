//! The blocking client: one TCP connection speaking the wire protocol.
//!
//! Deliberately synchronous (`std::net::TcpStream`, no async runtime):
//! the load driver runs one closed-loop client per thread, which is
//! exactly the deployment shape the protocol targets. Every method is
//! one request/response exchange; [`Client::request`] is the raw
//! escape hatch for harnesses that want to speak frames directly.

use crate::frame::{read_frame, write_frame};
use crate::message::{CkptStartState, CkptSummary, ErrorCode, Request, Response, ServerInfo};
use crate::{WireError, WireResult};
use mmdb_types::{RecordId, TxnId, Word};
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to an mmdb server.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> WireResult<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Wraps an already-connected stream.
    pub fn over(stream: TcpStream) -> WireResult<Client> {
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
        })
    }

    /// Bounds how long any single response may take (`None` waits
    /// forever). Protects closed-loop drivers from a hung server.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> WireResult<()> {
        self.reader.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response. Server-side `Error`
    /// frames come back as [`WireError::Remote`].
    pub fn request(&mut self, req: &Request) -> WireResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| WireError::Protocol("server closed the connection".into()))?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> WireResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Static facts about the served database.
    pub fn info(&mut self) -> WireResult<ServerInfo> {
        match self.request(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("Info", &other)),
        }
    }

    /// Reads a committed record outside any transaction.
    pub fn get(&mut self, rid: RecordId) -> WireResult<Vec<Word>> {
        match self.request(&Request::Get { rid })? {
            Response::Value { words } => Ok(words),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Commits a single-record update as one transaction; returns
    /// `(txn, runs)`.
    pub fn put(&mut self, rid: RecordId, value: &[Word]) -> WireResult<(TxnId, u32)> {
        let req = Request::Put {
            rid,
            value: value.to_vec(),
        };
        match self.request(&req)? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Commits a multi-record update as one transaction; returns
    /// `(txn, runs)`.
    pub fn batch(&mut self, updates: &[(RecordId, Vec<Word>)]) -> WireResult<(TxnId, u32)> {
        let req = Request::Batch {
            updates: updates.to_vec(),
        };
        match self.request(&req)? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Begins an interactive transaction owned by this connection.
    pub fn begin(&mut self) -> WireResult<TxnId> {
        match self.request(&Request::Begin)? {
            Response::Begun { txn } => Ok(txn),
            other => Err(unexpected("Begun", &other)),
        }
    }

    /// Reads a record inside an interactive transaction
    /// (read-your-writes semantics, like the engine).
    pub fn read(&mut self, txn: TxnId, rid: RecordId) -> WireResult<Vec<Word>> {
        match self.request(&Request::Read { txn, rid })? {
            Response::Value { words } => Ok(words),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Stages a write inside an interactive transaction.
    pub fn write(&mut self, txn: TxnId, rid: RecordId, value: &[Word]) -> WireResult<()> {
        let req = Request::Write {
            txn,
            rid,
            value: value.to_vec(),
        };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Commits an interactive transaction.
    pub fn commit(&mut self, txn: TxnId) -> WireResult<(TxnId, u32)> {
        match self.request(&Request::Commit { txn })? {
            Response::Committed { txn, runs } => Ok((txn, runs)),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Aborts an interactive transaction.
    pub fn abort(&mut self, txn: TxnId) -> WireResult<()> {
        match self.request(&Request::Abort { txn })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// The unified metrics snapshot as pretty JSON.
    pub fn stats_json(&mut self) -> WireResult<String> {
        match self.request(&Request::Stats)? {
            Response::StatsJson { json } => Ok(json),
            other => Err(unexpected("StatsJson", &other)),
        }
    }

    /// Runs a checkpoint to completion and returns its report.
    pub fn checkpoint_sync(&mut self) -> WireResult<CkptSummary> {
        match self.request(&Request::Checkpoint { sync: true })? {
            Response::CkptDone(s) => Ok(s),
            other => Err(unexpected("CkptDone", &other)),
        }
    }

    /// Requests a checkpoint and returns immediately; the server's
    /// checkpointer thread drives it.
    pub fn checkpoint_async(&mut self) -> WireResult<CkptStartState> {
        match self.request(&Request::Checkpoint { sync: false })? {
            Response::CkptStarted { state } => Ok(state),
            other => Err(unexpected("CkptStarted", &other)),
        }
    }

    /// Content fingerprint of the committed database.
    pub fn fingerprint(&mut self) -> WireResult<u64> {
        match self.request(&Request::Fingerprint)? {
            Response::Fingerprint { fp } => Ok(fp),
            other => Err(unexpected("Fingerprint", &other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> WireResult<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Retries `op` while the server reports transient (checkpoint
    /// interference) errors, up to `max_retries`, backing off briefly.
    /// This is the closed-loop driver's commit discipline: two-color
    /// aborts and COU quiesce refusals are load, not failures.
    pub fn retry_transient<T>(
        &mut self,
        max_retries: u32,
        mut op: impl FnMut(&mut Client) -> WireResult<T>,
    ) -> WireResult<(T, u32)> {
        let mut retries = 0;
        loop {
            match op(self) {
                Ok(v) => return Ok((v, retries)),
                Err(e) if e.is_transient() && retries < max_retries => {
                    retries += 1;
                    std::thread::sleep(Duration::from_micros(200 * u64::from(retries.min(10))));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> WireError {
    let got = match got {
        Response::Pong => "Pong",
        Response::Value { .. } => "Value",
        Response::Committed { .. } => "Committed",
        Response::Begun { .. } => "Begun",
        Response::Ok => "Ok",
        Response::StatsJson { .. } => "StatsJson",
        Response::CkptDone(_) => "CkptDone",
        Response::CkptStarted { .. } => "CkptStarted",
        Response::Fingerprint { .. } => "Fingerprint",
        Response::Info(_) => "Info",
        Response::ShuttingDown => "ShuttingDown",
        Response::Error { .. } => "Error",
    };
    WireError::Unexpected(format!("wanted {wanted}, got {got}"))
}

/// Classifies an `ErrorCode` for drivers that count error kinds.
pub fn is_retryable(code: ErrorCode) -> bool {
    matches!(code, ErrorCode::Transient | ErrorCode::Busy)
}
