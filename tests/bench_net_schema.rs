//! The checked-in `BENCH_net.json` must always match the bench-net
//! schema: fixed keys and shapes, wall-clock values. CI regenerates a
//! fresh one and validates it the same way (values legitimately differ
//! run to run, so the file is schema-checked, not byte-diffed).

use mmdb::server::{validate_bench_net_json, BENCH_NET_SCHEMA};

const CHECKED_IN: &str = include_str!("../BENCH_net.json");

#[test]
fn checked_in_bench_net_json_validates() {
    validate_bench_net_json(CHECKED_IN).expect("BENCH_net.json matches the schema");
}

#[test]
fn checked_in_bench_net_json_carries_the_schema_tag() {
    assert!(
        CHECKED_IN.contains(BENCH_NET_SCHEMA),
        "BENCH_net.json must declare {BENCH_NET_SCHEMA}"
    );
}

#[test]
fn checked_in_run_had_no_errors() {
    let v = mmdb::obs::json::parse(CHECKED_IN).expect("valid JSON");
    let errors = v
        .get("results")
        .and_then(|r| r.get("errors"))
        .and_then(mmdb::obs::json::Value::as_u64)
        .expect("results.errors");
    assert_eq!(errors, 0, "the checked-in run must be error-free");
    let committed = v
        .get("results")
        .and_then(|r| r.get("committed"))
        .and_then(mmdb::obs::json::Value::as_u64)
        .expect("results.committed");
    assert!(committed > 0);
}
