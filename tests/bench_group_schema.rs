//! The checked-in `BENCH_group.json` must always match the group-commit
//! comparison schema: fixed keys and shapes, both legs, wall-clock
//! values. CI regenerates a fresh one on its own device and validates
//! it the same way (values legitimately differ run to run, so the file
//! is schema-checked plus claim-checked, not byte-diffed).

use mmdb::obs::json::{parse, Value};
use mmdb::server::{validate_bench_group_json, BENCH_GROUP_SCHEMA};

const CHECKED_IN: &str = include_str!("../BENCH_group.json");

#[test]
fn checked_in_bench_group_json_validates() {
    validate_bench_group_json(CHECKED_IN).expect("BENCH_group.json matches the schema");
}

#[test]
fn checked_in_bench_group_json_carries_the_schema_tag() {
    assert!(
        CHECKED_IN.contains(BENCH_GROUP_SCHEMA),
        "BENCH_group.json must declare {BENCH_GROUP_SCHEMA}"
    );
}

fn leg_u64(v: &Value, leg: &str, key: &str) -> u64 {
    v.get(leg)
        .and_then(|l| l.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing {leg}.{key}"))
}

#[test]
fn checked_in_comparison_had_no_errors_and_enough_concurrency() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    for leg in ["force", "group"] {
        assert_eq!(
            leg_u64(&v, leg, "errors"),
            0,
            "{leg} leg must be error-free"
        );
        assert!(leg_u64(&v, leg, "committed") > 0);
        // the claim is about concurrent committers sharing a force
        assert!(
            leg_u64(&v, leg, "connections") >= 8,
            "{leg} leg ran with too few connections"
        );
    }
}

#[test]
fn checked_in_comparison_shows_the_amortization() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    let speedup = v
        .get("speedup")
        .and_then(Value::as_f64)
        .expect("speedup present");
    assert!(
        speedup >= 2.0,
        "group commit must be >= 2x the per-commit-force baseline on the \
         checked-in run (got {speedup:.2}x)"
    );
    // the mechanism, not just the outcome: the group leg must have
    // committed many transactions per force where the force leg paid
    // one force per commit
    let force_forces = leg_u64(&v, "force", "log_forces");
    let group_forces = leg_u64(&v, "group", "log_forces");
    let group_committed = leg_u64(&v, "group", "committed");
    assert!(
        group_forces * 2 < force_forces,
        "group leg should need far fewer forces ({group_forces} vs {force_forces})"
    );
    assert!(
        group_forces < group_committed,
        "group leg must batch commits into shared forces"
    );
    // and the batched path was actually exercised
    assert!(leg_u64(&v, "group", "group_commits") > 0);
    assert_eq!(leg_u64(&v, "force", "group_commits"), 0);
}
