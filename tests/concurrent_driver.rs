//! Concurrent driving: the engine is single-threaded by design (every
//! interleaving is an explicit step), but it is `Send`, so a concurrent
//! deployment wraps it in a mutex with a dedicated checkpointer thread —
//! exactly the shape the paper's system implies (transactions on the
//! processors, the checkpointer asynchronously alongside). This test runs
//! that deployment: four worker threads committing transfers while a
//! checkpointer thread takes continuous checkpoints, then crashes and
//! verifies the invariants.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::{Algorithm, Mmdb, MmdbConfig, MmdbError, RecordId, StepOutcome};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

const N_ACCOUNTS: u64 = 2048;
const INITIAL: u32 = 1000;

fn total(db: &Mmdb) -> u64 {
    (0..N_ACCOUNTS)
        .map(|a| db.read_committed(RecordId(a)).unwrap()[0] as u64)
        .sum()
}

#[test]
fn threaded_workers_and_checkpointer() {
    for algorithm in [
        Algorithm::CouCopy,
        Algorithm::TwoColorCopy,
        Algorithm::FuzzyCopy,
    ] {
        let cfg = MmdbConfig::small(algorithm);
        let mut db = Mmdb::open_in_memory(cfg).unwrap();
        let words = db.record_words();
        for a in 0..N_ACCOUNTS {
            let mut rec = vec![0u32; words];
            rec[0] = INITIAL;
            db.run_txn(&[(RecordId(a), rec)]).unwrap();
        }
        db.checkpoint().unwrap();

        let db = Arc::new(Mutex::new(db));
        let stop = Arc::new(AtomicBool::new(false));
        let transfers_done = Arc::new(AtomicU64::new(0));
        let checkpoints_done = Arc::new(AtomicU64::new(0));

        // the checkpointer thread: begin + step until told to stop
        let ckpt_handle = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&checkpoints_done);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut guard = db.lock().unwrap_or_else(PoisonError::into_inner);
                    if !guard.is_checkpoint_active() && !guard.is_quiescing() {
                        // ignore "in progress" races
                        let _ = guard.try_begin_checkpoint();
                    }
                    if guard.is_checkpoint_active() {
                        match guard.checkpoint_step() {
                            Ok(StepOutcome::Done { .. }) => {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(StepOutcome::WaitingForLog) => {
                                guard.force_log().unwrap();
                            }
                            Ok(StepOutcome::Progress { .. }) => {}
                            Err(e) => panic!("checkpointer thread: {e}"),
                        }
                    }
                    drop(guard);
                    std::thread::yield_now();
                }
            })
        };

        // worker threads: random transfers with two-color retry
        let workers: Vec<_> = (0..4u64)
            .map(|w| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                let count = Arc::clone(&transfers_done);
                std::thread::spawn(move || {
                    let mut x = 88172645463325252u64 ^ (w + 1); // xorshift
                    let mut next = || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let from = next() % N_ACCOUNTS;
                        let to = (from + 1 + next() % (N_ACCOUNTS - 1)) % N_ACCOUNTS;
                        let amount = (next() % 20 + 1) as u32;
                        let mut guard = db.lock().unwrap_or_else(PoisonError::into_inner);
                        let result = (|| -> mmdb::Result<bool> {
                            let txn = match guard.begin_txn() {
                                Ok(t) => t,
                                Err(MmdbError::Quiesced) => return Ok(false),
                                Err(e) => return Err(e),
                            };
                            let mut src = guard.read(txn, RecordId(from))?;
                            let mut dst = guard.read(txn, RecordId(to))?;
                            if src[0] < amount {
                                guard.abort(txn)?;
                                return Ok(false);
                            }
                            src[0] -= amount;
                            dst[0] += amount;
                            guard.write(txn, RecordId(from), &src)?;
                            guard.write(txn, RecordId(to), &dst)?;
                            guard.commit(txn)?;
                            Ok(true)
                        })();
                        match result {
                            Ok(true) => {
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(false) => {} // quiesced or insufficient funds
                            Err(MmdbError::TwoColorViolation { .. }) => {} // retried later
                            Err(e) => panic!("worker {w}: {e}"),
                        }
                    }
                })
            })
            .collect();

        // let the system churn until real work has accumulated
        loop {
            std::thread::sleep(std::time::Duration::from_millis(20));
            if transfers_done.load(Ordering::Relaxed) > 2_000
                && checkpoints_done.load(Ordering::Relaxed) > 2
            {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        ckpt_handle.join().unwrap();

        let mut db = Arc::try_unwrap(db)
            .unwrap_or_else(|_| panic!("threads leaked an Arc"))
            .into_inner()
            .unwrap();

        // money is conserved under concurrency...
        assert_eq!(total(&db), N_ACCOUNTS * INITIAL as u64, "{algorithm}");
        // ...and across a crash
        let before = db.fingerprint();
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), before, "{algorithm}");
        assert_eq!(total(&db), N_ACCOUNTS * INITIAL as u64, "{algorithm}");
        println!(
            "{algorithm}: {} transfers, {} checkpoints, {} two-color aborts",
            transfers_done.load(Ordering::Relaxed),
            checkpoints_done.load(Ordering::Relaxed),
            db.txn_stats().aborted_two_color
        );
    }
}
