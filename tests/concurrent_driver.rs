//! Concurrent driving: the engine is single-threaded by design (every
//! interleaving is an explicit step), but it is `Send`, so a concurrent
//! deployment wraps it in a mutex with a dedicated checkpointer thread —
//! exactly the shape the paper's system implies (transactions on the
//! processors, the checkpointer asynchronously alongside). This test runs
//! that deployment: four worker threads committing transfers while a
//! checkpointer thread takes continuous checkpoints, then crashes and
//! verifies the invariants.
//!
//! The second test drives the *within-shard* concurrency design instead:
//! lock-free seqlock readers racing single-shard committers racing a
//! live two-color checkpoint on one `ShardedMmdb` shard, asserting that
//! no read ever returns a torn value and the content survives a crash.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::shard::ShardedMmdb;
use mmdb::{Algorithm, Mmdb, MmdbConfig, MmdbError, RecordId, StepOutcome};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

const N_ACCOUNTS: u64 = 2048;
const INITIAL: u32 = 1000;

fn total(db: &Mmdb) -> u64 {
    (0..N_ACCOUNTS)
        .map(|a| db.read_committed(RecordId(a)).unwrap()[0] as u64)
        .sum()
}

#[test]
fn threaded_workers_and_checkpointer() {
    for algorithm in [
        Algorithm::CouCopy,
        Algorithm::TwoColorCopy,
        Algorithm::FuzzyCopy,
    ] {
        let cfg = MmdbConfig::small(algorithm);
        let mut db = Mmdb::open_in_memory(cfg).unwrap();
        let words = db.record_words();
        for a in 0..N_ACCOUNTS {
            let mut rec = vec![0u32; words];
            rec[0] = INITIAL;
            db.run_txn(&[(RecordId(a), rec)]).unwrap();
        }
        db.checkpoint().unwrap();

        let db = Arc::new(Mutex::new(db));
        let stop = Arc::new(AtomicBool::new(false));
        let transfers_done = Arc::new(AtomicU64::new(0));
        let checkpoints_done = Arc::new(AtomicU64::new(0));

        // the checkpointer thread: begin + step until told to stop
        let ckpt_handle = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&checkpoints_done);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut guard = db.lock().unwrap_or_else(PoisonError::into_inner);
                    if !guard.is_checkpoint_active() && !guard.is_quiescing() {
                        // ignore "in progress" races
                        let _ = guard.try_begin_checkpoint();
                    }
                    if guard.is_checkpoint_active() {
                        match guard.checkpoint_step() {
                            Ok(StepOutcome::Done { .. }) => {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(StepOutcome::WaitingForLog) => {
                                guard.force_log().unwrap();
                            }
                            Ok(StepOutcome::Progress { .. }) => {}
                            Err(e) => panic!("checkpointer thread: {e}"),
                        }
                    }
                    drop(guard);
                    std::thread::yield_now();
                }
            })
        };

        // worker threads: random transfers with two-color retry
        let workers: Vec<_> = (0..4u64)
            .map(|w| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                let count = Arc::clone(&transfers_done);
                std::thread::spawn(move || {
                    let mut x = 88172645463325252u64 ^ (w + 1); // xorshift
                    let mut next = || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let from = next() % N_ACCOUNTS;
                        let to = (from + 1 + next() % (N_ACCOUNTS - 1)) % N_ACCOUNTS;
                        let amount = (next() % 20 + 1) as u32;
                        let mut guard = db.lock().unwrap_or_else(PoisonError::into_inner);
                        let result = (|| -> mmdb::Result<bool> {
                            let txn = match guard.begin_txn() {
                                Ok(t) => t,
                                Err(MmdbError::Quiesced) => return Ok(false),
                                Err(e) => return Err(e),
                            };
                            let mut src = guard.read(txn, RecordId(from))?;
                            let mut dst = guard.read(txn, RecordId(to))?;
                            if src[0] < amount {
                                guard.abort(txn)?;
                                return Ok(false);
                            }
                            src[0] -= amount;
                            dst[0] += amount;
                            guard.write(txn, RecordId(from), &src)?;
                            guard.write(txn, RecordId(to), &dst)?;
                            guard.commit(txn)?;
                            Ok(true)
                        })();
                        match result {
                            Ok(true) => {
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(false) => {} // quiesced or insufficient funds
                            Err(MmdbError::TwoColorViolation { .. }) => {} // retried later
                            Err(e) => panic!("worker {w}: {e}"),
                        }
                    }
                })
            })
            .collect();

        // let the system churn until real work has accumulated
        loop {
            std::thread::sleep(std::time::Duration::from_millis(20));
            if transfers_done.load(Ordering::Relaxed) > 2_000
                && checkpoints_done.load(Ordering::Relaxed) > 2
            {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        ckpt_handle.join().unwrap();

        let mut db = Arc::try_unwrap(db)
            .unwrap_or_else(|_| panic!("threads leaked an Arc"))
            .into_inner()
            .unwrap();

        // money is conserved under concurrency...
        assert_eq!(total(&db), N_ACCOUNTS * INITIAL as u64, "{algorithm}");
        // ...and across a crash
        let before = db.fingerprint();
        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), before, "{algorithm}");
        assert_eq!(total(&db), N_ACCOUNTS * INITIAL as u64, "{algorithm}");
        println!(
            "{algorithm}: {} transfers, {} checkpoints, {} two-color aborts",
            transfers_done.load(Ordering::Relaxed),
            checkpoints_done.load(Ordering::Relaxed),
            db.txn_stats().aborted_two_color
        );
    }
}

/// The within-shard concurrency design under fire: lock-free seqlock
/// readers race single-shard committers race a live two-color
/// checkpoint, all against ONE shard. Every committed value is uniform
/// (all words equal), so a reader observing a mixed-word record proves
/// a torn seqlock read. Afterwards the shard must crash-recover to the
/// same fingerprint with zero audit violations.
#[test]
fn intra_shard_readers_and_committers_race_a_live_checkpoint() {
    let cfg = MmdbConfig::small(Algorithm::TwoColorCopy);
    let db = Arc::new(ShardedMmdb::open_in_memory(cfg, 1).unwrap());
    let words = db.record_words();
    let n = db.n_records();

    // seed every record with a uniform value so readers can check
    // torn-ness from the very first read
    let mut batch = Vec::new();
    for r in 0..n {
        batch.push((RecordId(r), vec![1u32; words]));
        if batch.len() == 64 {
            db.run_txn(&batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.run_txn(&batch).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let commits_done = Arc::new(AtomicU64::new(0));
    let checkpoints_done = Arc::new(AtomicU64::new(0));
    let reads_done = Arc::new(AtomicU64::new(0));

    // the checkpointer: step a two-color checkpoint through the shard's
    // exclusive gate, one step per lock acquisition so committers and
    // the gate interleave with it
    let ckpt_handle = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let done = Arc::clone(&checkpoints_done);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.with_shard(0, |e| {
                    if !e.is_checkpoint_active() && !e.is_quiescing() {
                        let _ = e.try_begin_checkpoint();
                    }
                    if e.is_checkpoint_active() {
                        match e.checkpoint_step() {
                            Ok(StepOutcome::Done { .. }) => {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(StepOutcome::WaitingForLog) => e.force_log().unwrap(),
                            Ok(StepOutcome::Progress { .. }) => {}
                            Err(e) => panic!("checkpointer thread: {e}"),
                        }
                    }
                });
                std::thread::yield_now();
            }
        })
    };

    // committers: single-record uniform writes through the router's
    // single-shard fast path (per-segment latches, not the shard mutex)
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let count = Arc::clone(&commits_done);
            std::thread::spawn(move || {
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (w + 1);
                let mut next = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let rid = RecordId(next() % n);
                    let value = (next() % u32::MAX as u64) as u32 | 1;
                    match db.run_txn(&[(rid, vec![value; words])]) {
                        Ok(_) => {
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        // begin-quiesce window: retry on the next spin
                        Err(MmdbError::Quiesced) => {}
                        Err(e) => panic!("committer {w}: {e}"),
                    }
                }
            })
        })
        .collect();

    // readers: lock-free committed reads, never touching the shard
    // mutex — any record with unequal words is a torn seqlock read
    let readers: Vec<_> = (0..2u64)
        .map(|r| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let count = Arc::clone(&reads_done);
            std::thread::spawn(move || {
                let mut x = 0xD1B5_4A32_D192_ED03u64 ^ (r + 1);
                let mut next = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let rid = RecordId(next() % n);
                    let value = db.read_committed(rid).unwrap();
                    assert!(
                        value.iter().all(|&w| w == value[0]),
                        "torn read on {rid:?}: {value:?}"
                    );
                    count.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        if commits_done.load(Ordering::Relaxed) > 2_000
            && checkpoints_done.load(Ordering::Relaxed) > 2
            && reads_done.load(Ordering::Relaxed) > 10_000
        {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    ckpt_handle.join().unwrap();

    // the racing never tripped an audit checker...
    let violations = db.audit_violations();
    assert!(violations.is_empty(), "audit violations: {violations:?}");

    // ...every record is still uniform through the locked read path...
    db.set_lockfree_reads(false);
    for r in 0..n {
        let value = db.read_committed(RecordId(r)).unwrap();
        assert!(
            value.iter().all(|&w| w == value[0]),
            "non-uniform record {r} after the race: {value:?}"
        );
    }

    // ...and the shard crash-recovers to the identical fingerprint
    let before = db.fingerprint();
    db.with_shard(0, |e| {
        e.crash().unwrap();
        e.recover().unwrap();
    });
    assert_eq!(db.fingerprint(), before, "fingerprint changed across crash");
    println!(
        "intra-shard race: {} commits, {} checkpoints, {} lock-free reads",
        commits_done.load(Ordering::Relaxed),
        checkpoints_done.load(Ordering::Relaxed),
        reads_done.load(Ordering::Relaxed)
    );
}
