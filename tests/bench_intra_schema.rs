//! The checked-in `BENCH_intra.json` must always match the intra-shard
//! sweep schema: fixed keys and shapes, the full
//! `{read, mixed} × {lockfree, locked} × {1, 2, 4, 8}` grid,
//! wall-clock values. CI regenerates a fresh one and validates it the
//! same way (values legitimately differ run to run, so the file is
//! schema-checked plus speedup-checked, not byte-diffed).

use mmdb::obs::json::{parse, Value};
use mmdb::server::{validate_bench_intra_json, BENCH_INTRA_SCHEMA};

const CHECKED_IN: &str = include_str!("../BENCH_intra.json");

#[test]
fn checked_in_bench_intra_json_validates() {
    validate_bench_intra_json(CHECKED_IN).expect("BENCH_intra.json matches the schema");
}

#[test]
fn checked_in_bench_intra_json_carries_the_schema_tag() {
    assert!(
        CHECKED_IN.contains(BENCH_INTRA_SCHEMA),
        "BENCH_intra.json must declare {BENCH_INTRA_SCHEMA}"
    );
}

#[test]
fn checked_in_sweep_had_no_errors() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    for entry in v.get("sweep").and_then(Value::as_arr).expect("sweep") {
        let errors = entry
            .get("errors")
            .and_then(Value::as_u64)
            .expect("entry.errors");
        assert_eq!(errors, 0, "every checked-in sweep point must be error-free");
        let reads = entry.get("reads").and_then(Value::as_u64).expect("reads");
        assert!(reads > 0, "every point must have completed reads");
    }
}

#[test]
fn checked_in_sweep_shows_the_lockfree_read_win() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    let speedup = v
        .get("read_speedup_4t")
        .and_then(Value::as_f64)
        .expect("read_speedup_4t headline");
    assert!(
        speedup >= 2.0,
        "lock-free point reads at 4 threads must be >= 2x the forced-locked \
         baseline (got {speedup:.2}x)"
    );
    // the mixed leg must not regress below the locked baseline either
    let mixed = v
        .get("mixed_speedup_4t")
        .and_then(Value::as_f64)
        .expect("mixed_speedup_4t headline");
    assert!(
        mixed >= 1.0,
        "mixed-leg lock-free throughput at 4 threads fell below the locked \
         baseline ({mixed:.2}x)"
    );
}
