//! Mutation tests for the protocol-invariant audit subsystem.
//!
//! Each test drives a real engine with auditing enabled, then injects the
//! exact event a protocol-violating implementation would have emitted —
//! a segment image flushed past the WAL gate, a segment painted black
//! twice, a COU old copy that is never swept, a recovery that restores
//! the stale ping-pong copy, a durable-LSN regression — and asserts that
//! the matching checker (and only that checker) fires. This proves the
//! checkers detect real violations rather than merely staying quiet on
//! correct runs.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::audit::{AuditEvent, CheckerId, PaintColor};
use mmdb::checkpoint::BeginReport;
use mmdb::shard::ShardedMmdb;
use mmdb::types::{CheckpointId, Lsn, SegmentId};
use mmdb::{Algorithm, CheckpointStart, Mmdb, MmdbConfig, RecordId, StepOutcome};

fn engine(algorithm: Algorithm) -> Mmdb {
    let mut cfg = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = mmdb::LogMode::StableTail;
    }
    assert!(cfg.audit, "small() must enable auditing");
    Mmdb::open_in_memory(cfg).expect("open")
}

fn dirty_some_records(db: &mut Mmdb, n: u64) {
    for rid in 0..n {
        let value = vec![rid as u32 + 1; db.record_words()];
        db.run_txn(&[(RecordId(rid), value)]).expect("txn");
    }
}

fn begin_checkpoint(db: &mut Mmdb) -> BeginReport {
    match db.try_begin_checkpoint().expect("begin") {
        CheckpointStart::Started(report) => report,
        CheckpointStart::Quiescing => panic!("no active txns, must start immediately"),
    }
}

fn finish_checkpoint(db: &mut Mmdb) {
    while db.is_checkpoint_active() {
        if let StepOutcome::WaitingForLog = db.checkpoint_step().expect("step") {
            db.force_log().expect("force");
        }
    }
}

/// The checkers that fired, deduplicated in order of first firing.
fn fired(db: &Mmdb) -> Vec<CheckerId> {
    let mut out: Vec<CheckerId> = Vec::new();
    for v in db.audit_violations() {
        if !out.contains(&v.checker) {
            out.push(v.checker);
        }
    }
    out
}

#[test]
fn wal_gate_checker_catches_an_ungated_flush() {
    let mut db = engine(Algorithm::FuzzyCopy);
    dirty_some_records(&mut db, 4);
    let begin = begin_checkpoint(&mut db);
    assert!(
        db.audit_violations().is_empty(),
        "clean before the mutation"
    );

    // A buggy checkpointer writes a segment image containing log records
    // far past the durable horizon, without consulting the gate.
    // (`durable` is ahead of the real horizon so only the gate invariant
    // is broken, not LSN monotonicity.)
    db.audit().emit(|| AuditEvent::SegmentFlushed {
        ckpt: begin.ckpt,
        copy: begin.copy,
        sid: SegmentId(0),
        image_max_lsn: Lsn(2_000_000),
        durable: Lsn(1_000_000),
        from_old_copy: false,
    });

    assert_eq!(fired(&db), vec![CheckerId::WalGate]);
    let v = &db.audit_violations()[0];
    assert!(
        v.message.contains("durable horizon"),
        "violation should name the broken invariant: {v}"
    );
}

#[test]
fn paint_checker_catches_a_double_black() {
    let mut db = engine(Algorithm::TwoColorFlush);
    dirty_some_records(&mut db, 4);
    begin_checkpoint(&mut db);
    assert!(
        db.audit_violations().is_empty(),
        "clean before the mutation"
    );

    // A buggy sweep paints a white segment black; the real sweep then
    // paints the same segment again (record 0 lives in segment 0, which
    // the transactions above dirtied — it is in the white set).
    db.audit().emit(|| AuditEvent::PaintFlipped {
        sid: SegmentId(0),
        to: PaintColor::Black,
    });
    finish_checkpoint(&mut db);

    assert_eq!(fired(&db), vec![CheckerId::Paint]);
}

#[test]
fn cou_checker_catches_a_leaked_old_copy() {
    let mut db = engine(Algorithm::CouCopy);
    dirty_some_records(&mut db, 4);
    begin_checkpoint(&mut db);
    assert!(
        db.audit_violations().is_empty(),
        "clean before the mutation"
    );

    // A buggy COU hook saves an old copy the sweep never consumes (the
    // segment has no real old copy, so nothing will sweep it).
    db.audit()
        .emit(|| AuditEvent::OldCopyCreated { sid: SegmentId(1) });
    finish_checkpoint(&mut db);

    assert_eq!(fired(&db), vec![CheckerId::CouLifetime]);
    let v = &db.audit_violations()[0];
    assert!(v.message.contains("old cop"), "{v}");
}

#[test]
fn ping_pong_checker_catches_a_stale_recovery_choice() {
    let mut db = engine(Algorithm::FuzzyCopy);
    dirty_some_records(&mut db, 4);
    db.checkpoint().expect("ckpt 1");
    dirty_some_records(&mut db, 4);
    db.checkpoint().expect("ckpt 2");
    db.crash().expect("crash");
    assert!(
        db.audit_violations().is_empty(),
        "clean before the mutation"
    );

    // A buggy recovery restores checkpoint 1 even though copy 0 holds the
    // more recent complete checkpoint 2.
    db.audit().emit(|| AuditEvent::RecoveryChosen {
        ckpt: CheckpointId(1),
        copy: 1,
        copies: [
            mmdb::audit::CopySummary::Complete(CheckpointId(2)),
            mmdb::audit::CopySummary::Complete(CheckpointId(1)),
        ],
    });

    assert_eq!(fired(&db), vec![CheckerId::PingPong]);
}

#[test]
fn monotonic_checker_catches_a_durable_lsn_regression() {
    let mut db = engine(Algorithm::FuzzyCopy);
    dirty_some_records(&mut db, 2); // forced commits move the durable LSN
    assert!(
        db.audit_violations().is_empty(),
        "clean before the mutation"
    );

    // A buggy log manager reports its durable horizon moving backwards.
    db.audit()
        .emit(|| AuditEvent::LogForced { durable: Lsn(0) });

    assert_eq!(fired(&db), vec![CheckerId::Monotonic]);
}

/// The flip side of the mutation tests: an unmutated engine driven through
/// every algorithm — transactions, interleaved checkpoints, crash,
/// recovery, more work — must come out violation-free with every checker
/// having actually performed checks.
#[test]
fn shard_checker_catches_a_misrouted_record() {
    let mut db = engine(Algorithm::FuzzyCopy);
    dirty_some_records(&mut db, 2);
    assert!(db.audit_violations().is_empty(), "clean before mutation");

    // A buggy router sends a record to the wrong partition: under a
    // 4-way topology, record 5 hashes to shard 1, not shard 2. After a
    // crash its REDO records would be replayed into the wrong engine.
    db.audit().emit(|| AuditEvent::ShardTopology { shards: 4 });
    db.audit().emit(|| AuditEvent::ShardRouted {
        record: RecordId(5),
        shard: 2,
    });

    assert_eq!(fired(&db), vec![CheckerId::Shard]);
    let v = &db.audit_violations()[0];
    assert!(
        v.message.contains("hash partition"),
        "violation should name the routing invariant: {v}"
    );
}

/// Same mutation, but against the real router: `ShardedMmdb::run_txn`
/// audits every route it actually takes (through the same `shard_of`
/// that filled the per-shard buckets), so real traffic is clean — and a
/// router that re-derived the route divergently would emit exactly the
/// event injected here, which must trip the checker.
#[test]
fn shard_checker_catches_a_divergent_router_rederivation() {
    let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
    let db = ShardedMmdb::open_in_memory(cfg, 4).expect("open");
    let words = db.record_words();

    // real routed traffic — single-shard fast path and 2PC — is clean
    db.run_txn(&[(RecordId(5), vec![7; words])]).expect("txn");
    db.run_txn(&[(RecordId(2), vec![8; words]), (RecordId(7), vec![9; words])])
        .expect("cross-shard txn");
    assert!(
        db.audit_violations().is_empty(),
        "the real router's own emits audit clean"
    );

    // mutate: report record 5 as routed to shard 2 (its home under the
    // 4-way topology run_txn announced is 5 % 4 = 1)
    db.audit().emit(|| AuditEvent::ShardRouted {
        record: RecordId(5),
        shard: 2,
    });

    let fired: Vec<CheckerId> = {
        let mut out = Vec::new();
        for v in db.audit_violations() {
            if !out.contains(&v.checker) {
                out.push(v.checker);
            }
        }
        out
    };
    assert_eq!(fired, vec![CheckerId::Shard]);
}

#[test]
fn shard_checker_catches_unordered_lock_acquisition() {
    let db = engine(Algorithm::FuzzyCopy);
    db.audit().emit(|| AuditEvent::ShardTopology { shards: 4 });

    // A correctly ordered cross-shard transaction audits clean...
    for shard in [0usize, 2] {
        db.audit()
            .emit(|| AuditEvent::ShardLockAcquired { gid: 1, shard });
    }
    for shard in [2usize, 0] {
        db.audit()
            .emit(|| AuditEvent::ShardLockReleased { gid: 1, shard });
    }
    assert!(db.audit_violations().is_empty(), "ordered 2PC is clean");

    // ...but a deadlock-prone one (descending acquisition) fires.
    db.audit()
        .emit(|| AuditEvent::ShardLockAcquired { gid: 2, shard: 3 });
    db.audit()
        .emit(|| AuditEvent::ShardLockAcquired { gid: 2, shard: 1 });
    assert_eq!(fired(&db), vec![CheckerId::Shard]);
    let v = &db.audit_violations()[0];
    assert!(
        v.message.contains("strictly ascending"),
        "violation should name the lock discipline: {v}"
    );
}

#[test]
fn shard_checker_catches_a_non_lifo_release() {
    let db = engine(Algorithm::FuzzyCopy);
    db.audit().emit(|| AuditEvent::ShardTopology { shards: 4 });
    db.audit()
        .emit(|| AuditEvent::ShardLockAcquired { gid: 9, shard: 0 });
    db.audit()
        .emit(|| AuditEvent::ShardLockAcquired { gid: 9, shard: 3 });
    // Releasing the bottom of the stack first breaks the reverse-order
    // discipline the torn-commit-freedom argument rests on.
    db.audit()
        .emit(|| AuditEvent::ShardLockReleased { gid: 9, shard: 0 });
    assert_eq!(fired(&db), vec![CheckerId::Shard]);
}

#[test]
fn unmutated_engines_audit_clean_across_all_algorithms() {
    for algorithm in Algorithm::ALL_EXTENDED {
        let mut db = engine(algorithm);
        dirty_some_records(&mut db, 6);
        begin_checkpoint(&mut db);
        // interleave transactions with the sweep (aborts/COU saves happen)
        for rid in 0..6 {
            let value = vec![99; db.record_words()];
            db.run_txn(&[(RecordId(rid), value)]).expect("txn");
            if db.is_checkpoint_active() {
                if let StepOutcome::WaitingForLog = db.checkpoint_step().expect("step") {
                    db.force_log().expect("force");
                }
            }
        }
        finish_checkpoint(&mut db);
        db.checkpoint().expect("second checkpoint");
        db.crash().expect("crash");
        db.recover().expect("recover");
        dirty_some_records(&mut db, 2);
        db.checkpoint().expect("post-recovery checkpoint");

        let report = db.audit_report().expect("audited");
        assert!(
            report.is_clean(),
            "{algorithm}: unexpected violations:\n{report}"
        );
        // Every checker relevant to the algorithm must have actually
        // performed checks (paint only sees two-color events, COU only
        // copy-on-update events).
        for (checker, checks) in &report.checks {
            let relevant = match checker {
                CheckerId::Paint => algorithm.is_two_color(),
                CheckerId::CouLifetime => algorithm.is_cou(),
                // a single unsharded engine never routes across shards;
                // the shard checker is exercised by the mutation tests
                // above and the sharded server end-to-end tests
                CheckerId::Shard => false,
                _ => true,
            };
            if relevant {
                assert!(
                    *checks > 0,
                    "{algorithm}: checker {checker} never ran a check\n{report}"
                );
            }
        }
    }
}
