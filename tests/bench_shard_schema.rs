//! The checked-in `BENCH_shard.json` must always match the shard-sweep
//! schema: fixed keys and shapes, the full {1, 2, 4, 8} shard curve,
//! wall-clock values. CI regenerates a fresh one and validates it the
//! same way (values legitimately differ run to run, so the file is
//! schema-checked plus scaling-checked, not byte-diffed).

use mmdb::obs::json::{parse, Value};
use mmdb::server::{validate_bench_shard_json, BENCH_SHARD_SCHEMA};

const CHECKED_IN: &str = include_str!("../BENCH_shard.json");

#[test]
fn checked_in_bench_shard_json_validates() {
    validate_bench_shard_json(CHECKED_IN).expect("BENCH_shard.json matches the schema");
}

#[test]
fn checked_in_bench_shard_json_carries_the_schema_tag() {
    assert!(
        CHECKED_IN.contains(BENCH_SHARD_SCHEMA),
        "BENCH_shard.json must declare {BENCH_SHARD_SCHEMA}"
    );
}

/// Uniform-workload throughput at the given shard count, straight from
/// the checked-in sweep.
fn uniform_tps(v: &Value, shards: u64) -> f64 {
    let sweep = v.get("sweep").and_then(Value::as_arr).expect("sweep array");
    sweep
        .iter()
        .find(|e| {
            e.get("shards").and_then(Value::as_u64) == Some(shards)
                && e.get("workload").and_then(Value::as_str) == Some("uniform")
        })
        .and_then(|e| e.get("throughput_tps"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("no uniform entry at {shards} shards"))
}

#[test]
fn checked_in_sweep_had_no_errors() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    for entry in v.get("sweep").and_then(Value::as_arr).expect("sweep") {
        let errors = entry
            .get("errors")
            .and_then(Value::as_u64)
            .expect("entry.errors");
        assert_eq!(errors, 0, "every checked-in sweep point must be error-free");
        let committed = entry
            .get("committed")
            .and_then(Value::as_u64)
            .expect("entry.committed");
        assert!(committed > 0);
    }
}

#[test]
fn checked_in_sweep_shows_shard_scaling() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    let base = uniform_tps(&v, 1);
    assert!(base > 0.0);
    let at4 = uniform_tps(&v, 4);
    assert!(
        at4 >= 2.5 * base,
        "4-shard uniform throughput must be >= 2.5x the single-shard baseline \
         (got {:.2}x: {at4:.0} vs {base:.0} tps)",
        at4 / base
    );
    // the curve should keep rising through 8 shards
    assert!(uniform_tps(&v, 8) > at4);
}
