//! Property-based tests of the log substrate: arbitrary record streams
//! must round-trip through the frame encoding, survive torn tails, and
//! scan identically forward and backward.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::log::{LogRecord, LogScanner};
use mmdb::types::{CheckpointId, Lsn, RecordId, Timestamp, TxnId};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(t, tau)| LogRecord::TxnBegin {
            txn: TxnId(t),
            tau: Timestamp(tau),
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..64)
        )
            .prop_map(|(t, r, value)| LogRecord::Update {
                txn: TxnId(t),
                record: RecordId(r),
                value,
            }),
        any::<u64>().prop_map(|t| LogRecord::Commit { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Abort { txn: TxnId(t) }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>().prop_map(TxnId), 0..8)
        )
            .prop_map(|(c, tau, active)| LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(c),
                tau: Timestamp(tau),
                active,
            }),
        any::<u64>().prop_map(|c| LogRecord::EndCheckpoint {
            ckpt: CheckpointId(c)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrip(rec in record_strategy()) {
        let bytes = rec.encode();
        prop_assert_eq!(bytes.len(), rec.encoded_len());
        let (decoded, used) = LogRecord::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn stream_scans_forward_and_backward(recs in proptest::collection::vec(record_strategy(), 0..50)) {
        let mut bytes = Vec::new();
        for r in &recs {
            r.encode_into(&mut bytes);
        }
        let scanner = LogScanner::from_bytes(bytes);
        let forward: Vec<_> = scanner.forward_from(Lsn::ZERO).map(|(_, r)| r).collect();
        prop_assert_eq!(&forward, &recs);
        let mut backward: Vec<_> = scanner.backward().map(|(_, r)| r).collect();
        backward.reverse();
        prop_assert_eq!(&backward, &recs);
    }

    #[test]
    fn torn_tail_keeps_exactly_the_intact_prefix(
        recs in proptest::collection::vec(record_strategy(), 1..30),
        cut_back in 1usize..64,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            r.encode_into(&mut bytes);
            boundaries.push(bytes.len());
        }
        // tear somewhere inside the last record (or further back)
        let cut = bytes.len().saturating_sub(cut_back.min(bytes.len() - boundaries[boundaries.len() - 2] + 1).max(1));
        let torn = bytes[..cut].to_vec();
        let scanner = LogScanner::from_bytes(torn);
        // the validated prefix must end exactly at a record boundary ≤ cut
        let expected_intact = boundaries.iter().rev().find(|&&b| b <= cut).copied().unwrap();
        prop_assert_eq!(scanner.valid_len() as usize, expected_intact);
        // and every surviving record decodes to the original
        let survivors = boundaries.iter().filter(|&&b| b < expected_intact).count();
        let scanned: Vec<_> = scanner.forward_from(Lsn::ZERO).map(|(_, r)| r).collect();
        prop_assert_eq!(scanned.len(), survivors);
        prop_assert_eq!(&scanned[..], &recs[..survivors]);
    }

    #[test]
    fn corruption_never_panics(
        recs in proptest::collection::vec(record_strategy(), 1..10),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        for r in &recs {
            r.encode_into(&mut bytes);
        }
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        // scanning corrupt data must terminate cleanly, never panic, and
        // only yield records that decode (prefix property)
        let scanner = LogScanner::from_bytes(bytes);
        let n = scanner.forward_from(Lsn::ZERO).count();
        prop_assert!(n <= recs.len());
        let _ = scanner.last_complete_checkpoint();
        let _ = scanner.backward().count();
    }
}
