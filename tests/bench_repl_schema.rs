//! The checked-in `BENCH_repl.json` must pass the replication-bench
//! validator (schema tag, full key set, and the no-lost-ack invariant
//! `present_after_promote == acked_at_kill`) and stay inside the
//! headline bounds the subsystem promises: steady-state lag under 50ms
//! at p99 and a sub-5s failover. Values are wall-clock, so CI
//! validates shape and bounds, not bytes.

#![allow(clippy::unwrap_used)]

use mmdb::obs::json::Value;
use mmdb::repl::validate_bench_repl_json;

const CHECKED_IN: &str = include_str!("../BENCH_repl.json");

#[test]
fn checked_in_bench_repl_json_passes_the_validator() {
    validate_bench_repl_json(CHECKED_IN).expect("BENCH_repl.json must validate");
}

#[test]
fn checked_in_bench_repl_json_is_a_plausible_run() {
    let v = mmdb::obs::json::parse(CHECKED_IN).expect("valid JSON");
    let results = v.get("results").unwrap();
    let committed = results.get("committed").and_then(Value::as_u64).unwrap();
    assert!(committed > 0, "a run with zero commits measured nothing");

    let lag = results.get("lag_us").unwrap();
    let count = lag.get("count").and_then(Value::as_u64).unwrap();
    assert!(count > 0, "no lag samples — the standby never acked");
    let p50 = lag.get("p50").and_then(Value::as_u64).unwrap();
    let p99 = lag.get("p99").and_then(Value::as_u64).unwrap();
    let p999 = lag.get("p999").and_then(Value::as_u64).unwrap();
    let max = lag.get("max").and_then(Value::as_u64).unwrap();
    assert!(
        p50 <= p99 && p99 <= p999 && p999 <= max,
        "lag percentile ladder must be monotone (p50 {p50} <= p99 {p99} <= p999 {p999} <= max {max})"
    );
    // the headline freshness promise: steady-state replication lag
    // stays under 50ms at p99 (paper terms: the hot standby keeps the
    // backup near-current, so C_recovery after failover is bounded by
    // promotion, not replay)
    assert!(
        p99 < 50_000,
        "steady-state replication lag p99 {p99}us breaches the 50ms bound"
    );

    let fo = results.get("failover").unwrap();
    let ms = fo.get("failover_ms").and_then(Value::as_f64).unwrap();
    assert!(
        ms < 5_000.0,
        "failover took {ms}ms — promotion is supposed to be near-instant"
    );
}
