//! Property-based tests of the analytic model: bounds, monotonicities
//! and scaling laws that must hold at *every* parameter setting, not
//! just the paper's defaults.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::model::AnalyticModel;
use mmdb::types::{Algorithm, DbParams, DiskParams, LogMode, Params, TxnParams};
use proptest::prelude::*;

/// A strategy over well-formed parameter sets (valid shapes, sane loads).
fn params_strategy() -> impl Strategy<Value = Params> {
    (
        1u64..6, // db size: 2^k Mwords
        prop_oneof![
            Just(1024u64),
            Just(2048),
            Just(4096),
            Just(8192),
            Just(16384)
        ],
        1.0f64..4000.0, // lambda
        1u32..12,       // n_ru
        1u32..64,       // disks
        prop_oneof![Just(LogMode::VolatileTail), Just(LogMode::StableTail)],
    )
        .prop_map(|(mw, s_seg, lambda, n_ru, n_bdisks, log_mode)| Params {
            db: DbParams {
                s_db: mw << 20,
                s_rec: 32,
                s_seg,
            },
            txn: TxnParams {
                lambda,
                n_ru,
                c_trans: 25_000,
            },
            disk: DiskParams {
                n_bdisks,
                ..DiskParams::default()
            },
            log_mode,
            ..Params::default()
        })
}

fn algorithms(log_mode: LogMode) -> Vec<Algorithm> {
    Algorithm::ALL_EXTENDED
        .into_iter()
        .filter(|a| a.sound_under(log_mode))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn model_outputs_are_sane(p in params_strategy()) {
        for algorithm in algorithms(p.log_mode) {
            let m = AnalyticModel::new(p, algorithm);
            let point = m.evaluate(None);
            prop_assert!(point.duration > 0.0, "{algorithm}: duration");
            prop_assert!(point.active_duration > 0.0 && point.active_duration <= point.duration + 1e-9);
            prop_assert!(point.segments_flushed >= 0.0);
            prop_assert!(point.segments_flushed <= p.db.n_segments() as f64 + 1e-9);
            prop_assert!((0.0..1.0).contains(&point.p_restart), "{algorithm}: p_restart {}", point.p_restart);
            prop_assert!(point.sync_per_txn >= 0.0);
            prop_assert!(point.async_per_txn > 0.0, "{algorithm}: checkpointing is never free");
            prop_assert!(point.recovery_seconds > 0.0);
            prop_assert!(point.overhead_per_txn().is_finite());
        }
    }

    #[test]
    fn longer_interval_never_raises_overhead_or_lowers_recovery(p in params_strategy()) {
        for algorithm in algorithms(p.log_mode) {
            let m = AnalyticModel::new(p, algorithm);
            let fast = m.evaluate(None);
            let slow = m.evaluate(Some(fast.duration * 3.0));
            // Overhead monotonicity holds for the non-painting
            // algorithms. For the two-color pair it genuinely does NOT:
            // a longer interval accumulates a larger white set, so the
            // abort tax can grow faster than the amortization saves —
            // which is why Figure 4b's 2CCOPY curve needs the copy costs
            // to dominate before it slopes downward.
            if !algorithm.is_two_color() {
                prop_assert!(
                    slow.overhead_per_txn() <= fast.overhead_per_txn() * (1.0 + 1e-9),
                    "{algorithm}: stretching the interval must not raise overhead \
                     ({} -> {})", fast.overhead_per_txn(), slow.overhead_per_txn()
                );
            }
            prop_assert!(
                slow.recovery_seconds >= fast.recovery_seconds - 1e-9,
                "{algorithm}: stretching the interval must not shrink recovery"
            );
        }
    }

    #[test]
    fn more_disks_never_hurt(p in params_strategy()) {
        for algorithm in algorithms(p.log_mode) {
            let base = AnalyticModel::new(p, algorithm).evaluate(None);
            let mut p2 = p;
            p2.disk.n_bdisks *= 2;
            let fast = AnalyticModel::new(p2, algorithm).evaluate(None);
            prop_assert!(
                fast.recovery_seconds <= base.recovery_seconds + 1e-9,
                "{algorithm}: doubling disks must not slow recovery"
            );
            prop_assert!(
                AnalyticModel::new(p2, algorithm).min_duration()
                    <= AnalyticModel::new(p, algorithm).min_duration() + 1e-9,
                "{algorithm}: doubling disks must not lengthen the minimum duration"
            );
        }
    }

    #[test]
    fn two_color_costs_at_least_as_much_as_its_non_painting_twin(p in params_strategy()) {
        // Painting and aborts only ever add cost relative to the same
        // flush/copy discipline without them, at equal duration.
        let m2c = AnalyticModel::new(p, Algorithm::TwoColorCopy);
        let mfz = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        let d = m2c.min_duration().max(mfz.min_duration());
        let two_color = m2c.evaluate(Some(d));
        let fuzzy = mfz.evaluate(Some(d));
        prop_assert!(
            two_color.overhead_per_txn() >= fuzzy.overhead_per_txn() - 1e-6,
            "2CCOPY ({}) must dominate FUZZYCOPY ({}) at equal duration",
            two_color.overhead_per_txn(),
            fuzzy.overhead_per_txn()
        );
    }

    #[test]
    fn recovery_grows_with_log_bulk(p in params_strategy(), words in 0u64..100_000_000) {
        let m = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        let base = m.recovery_seconds(0.0);
        let with_log = m.recovery_seconds(words as f64);
        prop_assert!(with_log >= base);
        let with_more = m.recovery_seconds(words as f64 * 2.0);
        prop_assert!(with_more >= with_log);
    }

    #[test]
    fn p_restart_bounds_and_activity_monotonicity(
        p in params_strategy(),
        w0 in 0.0f64..1.0,
        f in 0.0f64..1.0,
    ) {
        let m = AnalyticModel::new(p, Algorithm::TwoColorFlush);
        let base = m.p_restart(w0, f);
        prop_assert!((0.0..1.0).contains(&base));
        // no whites, or an idle checkpointer → no aborts
        prop_assert_eq!(m.p_restart(0.0, f), 0.0);
        prop_assert_eq!(m.p_restart(w0, 0.0), 0.0);
        // (note: p̄ is NOT monotone in w0 — an all-white begin lets early
        // arrivals run all-white and pass, so the peak sits below w0=1)
        // a busier checkpointer (higher active fraction) aborts more
        let busier = m.p_restart(w0, (f + 0.3).min(1.0));
        prop_assert!(busier >= base - 1e-9);
    }

    #[test]
    fn stable_tail_never_costs_more(p in params_strategy()) {
        let mut pv = p;
        pv.log_mode = LogMode::VolatileTail;
        let mut ps = p;
        ps.log_mode = LogMode::StableTail;
        for algorithm in Algorithm::BASE_FIVE {
            let volatile = AnalyticModel::new(pv, algorithm).evaluate(None).overhead_per_txn();
            let stable = AnalyticModel::new(ps, algorithm).evaluate(None).overhead_per_txn();
            prop_assert!(
                stable <= volatile + 1e-6,
                "{algorithm}: a stable tail removes LSN work, never adds ({volatile} -> {stable})"
            );
        }
    }

    #[test]
    fn min_duration_is_a_fixed_point(p in params_strategy()) {
        let m = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        let d = m.min_duration();
        let roundtrip = m.active_time(m.expected_flushed(d));
        prop_assert!(
            (roundtrip - d).abs() < 1e-6 * d.max(1.0),
            "fixed point violated: D={d}, f(D)={roundtrip}"
        );
    }
}
