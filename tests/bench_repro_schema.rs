//! The checked-in `BENCH_repro.json` must match the repro-bench
//! schema: one entry per algorithm, each carrying the checkpoint-pass
//! and recovery latency digests with the full percentile ladder
//! (p50/p90/p99/p999/max). CI regenerates the file and byte-diffs it,
//! so the digest shape here is exactly what the generator emits.

#![allow(clippy::unwrap_used)]

use mmdb::obs::json::Value;

const CHECKED_IN: &str = include_str!("../BENCH_repro.json");

const DIGEST_KEYS: [&str; 7] = [
    "count", "p50_us", "p90_us", "p99_us", "p999_us", "max_us", "mean_us",
];

fn assert_digest(algo: &str, which: &str, digest: &Value) {
    for key in DIGEST_KEYS {
        assert!(
            digest.get(key).is_some(),
            "algorithms.{algo}.{which} is missing {key}"
        );
    }
    let p99 = digest.get("p99_us").and_then(Value::as_u64).unwrap();
    let p999 = digest.get("p999_us").and_then(Value::as_u64).unwrap();
    let max = digest.get("max_us").and_then(Value::as_u64).unwrap();
    assert!(
        p99 <= p999 && p999 <= max,
        "algorithms.{algo}.{which}: percentile ladder must be monotone (p99 {p99} <= p999 {p999} <= max {max})"
    );
}

#[test]
fn checked_in_bench_repro_json_carries_the_schema_tag() {
    let v = mmdb::obs::json::parse(CHECKED_IN).expect("valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("mmdb-bench-repro/v1")
    );
}

#[test]
fn every_algorithm_has_full_latency_digests() {
    let v = mmdb::obs::json::parse(CHECKED_IN).expect("valid JSON");
    let Some(Value::Obj(algorithms)) = v.get("algorithms") else {
        panic!("BENCH_repro.json must carry an algorithms object");
    };
    assert_eq!(
        algorithms.len(),
        mmdb::types::Algorithm::ALL_EXTENDED.len(),
        "one entry per algorithm"
    );
    for (name, entry) in algorithms {
        for key in ["committed", "checkpoints", "p_restart"] {
            assert!(
                entry.get(key).is_some(),
                "algorithms.{name} is missing {key}"
            );
        }
        assert_digest(name, "ckpt_pass", entry.get("ckpt_pass").unwrap());
        assert_digest(name, "recovery", entry.get("recovery").unwrap());
    }
}
