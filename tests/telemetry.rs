//! The telemetry layer's two load-bearing contracts, checked for every
//! algorithm:
//!
//! 1. **Reconciliation** — the `paper` section of a `MetricsSnapshot`
//!    must equal the engine's own `OverheadReport` *exactly* (bit-equal
//!    f64s, not approximately): both are derived from the same meters,
//!    so any drift means the telemetry layer double-counts or drops
//!    cost terms.
//! 2. **Zero cost when disabled** — running the identical seeded
//!    workload with telemetry on and off must produce identical
//!    database fingerprints and identical paper-cost totals. Telemetry
//!    observes; it must never perturb.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, RecordId, StepOutcome};

fn config(algorithm: Algorithm, telemetry: bool) -> MmdbConfig {
    let mut cfg = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    cfg.telemetry = telemetry;
    cfg
}

fn val(db: &Mmdb, fill: u32) -> Vec<u32> {
    vec![fill; db.record_words()]
}

/// A fixed seeded workload: commits, two checkpoints (one raced by
/// commits), a crash, and a recovery — enough to exercise every meter.
fn drive(db: &mut Mmdb, seed: u64) {
    for i in 0..50u64 {
        db.run_txn(&[(RecordId((i * 37 + seed) % 2048), val(db, 100 + i as u32))])
            .unwrap();
    }
    db.checkpoint().unwrap();
    db.try_begin_checkpoint().unwrap();
    let mut step = 0u64;
    while db.is_checkpoint_active() {
        db.run_txn(&[(
            RecordId((step * 29 + seed + 11) % 2048),
            val(db, 900 + step as u32),
        )])
        .unwrap();
        if let StepOutcome::WaitingForLog = db.checkpoint_step().unwrap() {
            db.force_log().unwrap();
        }
        step += 1;
    }
    db.crash().unwrap();
    db.recover().unwrap();
    for i in 0..10u64 {
        db.run_txn(&[(RecordId((i * 53 + seed) % 2048), val(db, 500 + i as u32))])
            .unwrap();
    }
}

#[test]
fn snapshot_paper_section_reconciles_with_overhead_report_exactly() {
    for algorithm in Algorithm::ALL_EXTENDED {
        let mut db = Mmdb::open_in_memory(config(algorithm, true)).unwrap();
        drive(&mut db, 7);

        let report = db.overhead_report();
        let snap = db.metrics_snapshot();
        let paper = snap
            .paper
            .as_ref()
            .unwrap_or_else(|| panic!("{algorithm}: snapshot must carry the paper section"));

        assert!(report.committed > 0, "{algorithm}: workload must commit");
        assert_eq!(paper.committed, report.committed, "{algorithm}");
        assert_eq!(
            paper.sync_ckpt_total,
            report.sync_ckpt.total(),
            "{algorithm}"
        );
        assert_eq!(
            paper.async_ckpt_total,
            report.async_ckpt.total(),
            "{algorithm}"
        );
        assert_eq!(paper.logging_total, report.logging.total(), "{algorithm}");
        assert_eq!(paper.base_total, report.base.total(), "{algorithm}");
        // exact f64 equality is intentional: same meters, same arithmetic
        assert_eq!(
            paper.sync_ckpt_per_txn,
            report.sync_per_txn(),
            "{algorithm}"
        );
        assert_eq!(
            paper.async_ckpt_per_txn,
            report.async_per_txn(),
            "{algorithm}"
        );
        assert_eq!(
            paper.logging_per_txn,
            report.logging.total() as f64 / report.committed as f64,
            "{algorithm}"
        );
        assert_eq!(
            paper.ckpt_overhead_per_txn,
            report.ckpt_overhead_per_txn(),
            "{algorithm}"
        );

        // the same numbers must survive the JSON round trip
        let parsed = mmdb::obs::MetricsSnapshot::from_json(&snap.to_json_pretty()).unwrap();
        assert_eq!(parsed.paper.as_ref(), Some(paper), "{algorithm}");
    }
}

#[test]
fn snapshot_counters_match_engine_session_stats() {
    for algorithm in Algorithm::ALL_EXTENDED {
        let mut db = Mmdb::open_in_memory(config(algorithm, true)).unwrap();
        drive(&mut db, 13);

        let snap = db.metrics_snapshot();
        let txn = db.txn_stats();
        let ckpt = db.ckpt_stats();
        let log = db.log_stats();
        assert_eq!(
            snap.counter("txn.committed"),
            Some(txn.committed),
            "{algorithm}"
        );
        assert_eq!(snap.counter("txn.begun"), Some(txn.begun), "{algorithm}");
        assert_eq!(
            snap.counter("ckpt.completed"),
            Some(ckpt.completed),
            "{algorithm}"
        );
        assert_eq!(
            snap.counter("ckpt.segments_flushed"),
            Some(ckpt.segments_flushed),
            "{algorithm}"
        );
        assert_eq!(
            snap.counter("log.records"),
            Some(log.records),
            "{algorithm}"
        );
        assert_eq!(snap.counter("recovery.runs"), Some(1), "{algorithm}");
        // the crash-and-recover in the workload emits both recovery spans
        assert!(
            snap.hist("recovery.backup_load_ns").is_some()
                && snap.hist("recovery.redo_replay_ns").is_some(),
            "{algorithm}: recovery phase histograms missing"
        );
    }
}

#[test]
fn disabled_telemetry_is_invisible_to_the_engine() {
    for algorithm in Algorithm::ALL_EXTENDED {
        let mut on = Mmdb::open_in_memory(config(algorithm, true)).unwrap();
        let mut off = Mmdb::open_in_memory(config(algorithm, false)).unwrap();
        drive(&mut on, 21);
        drive(&mut off, 21);

        assert!(on.is_observed(), "{algorithm}");
        assert!(!off.is_observed(), "{algorithm}");
        assert_eq!(
            on.fingerprint(),
            off.fingerprint(),
            "{algorithm}: telemetry must not change execution"
        );
        let (ron, roff) = (on.overhead_report(), off.overhead_report());
        assert_eq!(ron.committed, roff.committed, "{algorithm}");
        assert_eq!(ron.sync_ckpt.total(), roff.sync_ckpt.total(), "{algorithm}");
        assert_eq!(
            ron.async_ckpt.total(),
            roff.async_ckpt.total(),
            "{algorithm}"
        );
        assert_eq!(ron.logging.total(), roff.logging.total(), "{algorithm}");

        // disabled: no samples recorded, but the snapshot still carries
        // the engine-side stats and paper section
        let snap = off.metrics_snapshot();
        assert!(snap.hists.is_empty(), "{algorithm}: no histograms when off");
        assert_eq!(
            snap.counter("txn.committed"),
            Some(ron.committed),
            "{algorithm}"
        );
        assert!(snap.paper.is_some(), "{algorithm}");
        let (spans, dropped) = off.trace_spans(100);
        assert!(spans.is_empty() && dropped == 0, "{algorithm}");
    }
}
