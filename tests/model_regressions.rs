//! Pinned replays of the shrunk inputs recorded in
//! `model_props.proptest-regressions`.
//!
//! The offline proptest stand-in (vendor/proptest) generates fresh cases but
//! does not replay regression files, so the two historical failure inputs are
//! encoded here verbatim as deterministic tests and run every time.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::model::AnalyticModel;
use mmdb::types::{Algorithm, DbParams, DiskParams, LogMode, Params, TxnParams};

fn recorded_params(lambda: f64, n_ru: u32, n_bdisks: u32) -> Params {
    Params {
        db: DbParams {
            s_db: 1_048_576,
            s_rec: 32,
            s_seg: 1024,
        },
        txn: TxnParams {
            lambda,
            n_ru,
            c_trans: 25_000,
        },
        disk: DiskParams {
            n_bdisks,
            ..DiskParams::default()
        },
        log_mode: LogMode::VolatileTail,
        ..Params::default()
    }
}

fn sound_algorithms(log_mode: LogMode) -> Vec<Algorithm> {
    Algorithm::ALL_EXTENDED
        .into_iter()
        .filter(|a| a.sound_under(log_mode))
        .collect()
}

fn assert_sane_at(p: Params) {
    for algorithm in sound_algorithms(p.log_mode) {
        let m = AnalyticModel::new(p, algorithm);
        let point = m.evaluate(None);
        assert!(point.duration > 0.0, "{algorithm}: duration");
        assert!(
            point.active_duration > 0.0 && point.active_duration <= point.duration + 1e-9,
            "{algorithm}: active duration"
        );
        assert!(
            (0.0..=p.db.n_segments() as f64 + 1e-9).contains(&point.segments_flushed),
            "{algorithm}: segments_flushed {}",
            point.segments_flushed
        );
        assert!(
            (0.0..1.0).contains(&point.p_restart),
            "{algorithm}: p_restart {}",
            point.p_restart
        );
        assert!(point.sync_per_txn >= 0.0, "{algorithm}: sync_per_txn");
        assert!(point.async_per_txn > 0.0, "{algorithm}: async_per_txn");
        assert!(point.recovery_seconds > 0.0, "{algorithm}: recovery");
        assert!(
            point.overhead_per_txn().is_finite(),
            "{algorithm}: overhead"
        );
    }
}

/// Regression `119b2988…`: p_restart bounds/monotonicity at an idle load
/// (`lambda = 1`, one disk) with a busy checkpointer.
#[test]
fn recorded_case_p_restart_bounds() {
    let p = recorded_params(1.0, 2, 1);
    let (w0, f) = (0.827_056_886_728_680_6, 0.859_174_617_342_155_5);
    let m = AnalyticModel::new(p, Algorithm::TwoColorFlush);
    let base = m.p_restart(w0, f);
    assert!(
        (0.0..1.0).contains(&base),
        "p_restart out of bounds: {base}"
    );
    assert_eq!(m.p_restart(0.0, f), 0.0, "no whites means no aborts");
    assert_eq!(
        m.p_restart(w0, 0.0),
        0.0,
        "idle checkpointer aborts nothing"
    );
    let busier = m.p_restart(w0, (f + 0.3).min(1.0));
    assert!(busier >= base - 1e-9, "busier {busier} < base {base}");
    assert_sane_at(p);
}

/// Regression `66ac62fa…`: model sanity at a moderate load on ten backup
/// disks (`lambda ≈ 52.9`, `n_ru = 3`).
#[test]
fn recorded_case_model_sanity_ten_disks() {
    let p = recorded_params(52.908_098_689_458_05, 3, 10);
    assert_sane_at(p);
    for algorithm in sound_algorithms(p.log_mode) {
        let m = AnalyticModel::new(p, algorithm);
        let fast = m.evaluate(None);
        let slow = m.evaluate(Some(fast.duration * 3.0));
        if !algorithm.is_two_color() {
            assert!(
                slow.overhead_per_txn() <= fast.overhead_per_txn() * (1.0 + 1e-9),
                "{algorithm}: stretching the interval must not raise overhead"
            );
        }
        assert!(
            slow.recovery_seconds >= fast.recovery_seconds - 1e-9,
            "{algorithm}: stretching the interval must not shrink recovery"
        );
        let mut p2 = p;
        p2.disk.n_bdisks *= 2;
        let wider = AnalyticModel::new(p2, algorithm).evaluate(None);
        assert!(
            wider.recovery_seconds <= fast.recovery_seconds + 1e-9,
            "{algorithm}: doubling disks must not slow recovery"
        );
    }
}
