//! The checked-in `BENCH_recovery.json` must pass the recovery-bench
//! validator (schema tag and full key set) and stay inside the
//! headline bounds the subsystem promises: parallel replay at 4
//! workers at least 1.8x faster than serial on the largest point,
//! compression actually shrinking the cold footprint, and the bounded
//! replay window keeping recovery flat while total log written grows
//! an order of magnitude. Values are wall-clock, so CI validates shape
//! and bounds, not bytes.

#![allow(clippy::unwrap_used)]

use mmdb::obs::json::{parse, Value};
use mmdb::rescale::validate_bench_recovery_json;

const CHECKED_IN: &str = include_str!("../BENCH_recovery.json");

#[test]
fn checked_in_bench_recovery_json_passes_the_validator() {
    validate_bench_recovery_json(CHECKED_IN).expect("BENCH_recovery.json must validate");
}

fn speedup_at(point: &Value, workers: u64) -> f64 {
    point
        .get("parallel")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .find(|p| p.get("workers").and_then(Value::as_u64) == Some(workers))
        .unwrap_or_else(|| panic!("no parallel entry at {workers} workers"))
        .get("speedup")
        .and_then(Value::as_f64)
        .unwrap()
}

#[test]
fn parallel_replay_clears_the_headline_speedup_gate() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    let points = v.get("points").and_then(Value::as_arr).unwrap();
    let large = points
        .iter()
        .find(|p| p.get("label").and_then(Value::as_str) == Some("large"))
        .expect("a point labeled \"large\"");

    // one lane through the parallel entry point is the serial oracle —
    // it must not be meaningfully slower than the serial path itself
    let at1 = speedup_at(large, 1);
    assert!(
        (0.5..=2.0).contains(&at1),
        "1-worker speedup {at1} is not ~1 — the measurement is broken"
    );

    // the headline gate: partitioned replay at 4 workers recovers the
    // large point at least 1.8x faster than the serial oracle
    let at4 = speedup_at(large, 4);
    assert!(
        at4 >= 1.8,
        "4-worker parallel recovery is only {at4:.2}x serial on the large point \
         (gate: >= 1.8x)"
    );
}

#[test]
fn compression_shrinks_the_cold_footprint() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    for p in v.get("points").and_then(Value::as_arr).unwrap() {
        let label = p.get("label").and_then(Value::as_str).unwrap();
        let ratio = p
            .get("compressed_disk_ratio")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(
            ratio < 1.0,
            "{label}: compressed twin occupies {ratio:.2}x the raw disk — compression \
             bought nothing"
        );
    }
}

#[test]
fn replay_window_stays_bounded_as_the_log_grows() {
    let v = parse(CHECKED_IN).expect("valid JSON");
    let window = v.get("bounded_window").and_then(Value::as_arr).unwrap();
    let first = &window[0];
    let last = window.last().unwrap();

    let growth = last.get("growth").and_then(Value::as_u64).unwrap() as f64
        / first.get("growth").and_then(Value::as_u64).unwrap().max(1) as f64;
    assert!(
        growth >= 10.0,
        "the demo needs a 10x work spread, got {growth}x"
    );

    // total log written scales with the work...
    let total_first = first
        .get("total_log_bytes")
        .and_then(Value::as_u64)
        .unwrap();
    let total_last = last.get("total_log_bytes").and_then(Value::as_u64).unwrap();
    assert!(
        total_last as f64 >= 5.0 * total_first as f64,
        "10x the work wrote only {total_last} vs {total_first} log bytes — the run \
         did not actually grow"
    );

    // ...while the replay window, and with it recovery time, stays flat
    let window_first = first.get("window_bytes").and_then(Value::as_u64).unwrap();
    let window_last = last.get("window_bytes").and_then(Value::as_u64).unwrap();
    assert!(
        window_last as f64 <= 4.0 * window_first as f64,
        "replay window grew {window_first} -> {window_last} bytes — checkpoints are \
         not truncating"
    );
    let rec_first = first.get("recovery_s").and_then(Value::as_f64).unwrap();
    let rec_last = last.get("recovery_s").and_then(Value::as_f64).unwrap();
    assert!(
        rec_last <= 3.0 * rec_first.max(0.005),
        "recovery time grew {rec_first:.3}s -> {rec_last:.3}s across a 10x run — \
         the replay window is not bounded"
    );
}
