//! The crash matrix: every algorithm × every crash point.
//!
//! For each checkpointing algorithm, the test drives a fixed workload
//! with a checkpoint interleaved, crashing after *every possible number
//! of checkpoint steps* (including before the first and after the last),
//! and checks that recovery reproduces the committed state exactly.
//! This is the paper's §2.7 system-failure model made exhaustive: a
//! memory-resident database may die at any instant, and the ping-pong
//! backup plus REDO log must always reconstruct the committed state.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, RecordId, StepOutcome};

fn config(algorithm: Algorithm) -> MmdbConfig {
    let mut cfg = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    cfg
}

fn val(db: &Mmdb, fill: u32) -> Vec<u32> {
    vec![fill; db.record_words()]
}

/// Runs the scenario, crashing after `crash_after_steps` checkpoint
/// steps of the *second* checkpoint; returns (pre-crash fingerprint,
/// post-recovery fingerprint). `steps_taken` reports how many steps the
/// checkpoint actually had.
fn scenario(algorithm: Algorithm, crash_after_steps: usize) -> (u64, u64, usize) {
    let mut db = Mmdb::open_in_memory(config(algorithm)).unwrap();

    // phase 1: base data + a first complete checkpoint
    for i in 0..60u64 {
        db.run_txn(&[(RecordId((i * 37) % 2048), val(&db, 100 + i as u32))])
            .unwrap();
    }
    db.checkpoint().unwrap();

    // phase 2: more commits, then a second checkpoint interleaved with
    // commits, crashed after N steps
    for i in 0..20u64 {
        db.run_txn(&[(RecordId((i * 53 + 5) % 2048), val(&db, 500 + i as u32))])
            .unwrap();
    }
    db.try_begin_checkpoint().unwrap();
    let mut steps = 0usize;
    while steps < crash_after_steps && db.is_checkpoint_active() {
        // one commit between steps so the checkpoint races real updates
        db.run_txn(&[(
            RecordId((steps as u64 * 29 + 11) % 2048),
            val(&db, 900 + steps as u32),
        )])
        .unwrap();
        match db.checkpoint_step().unwrap() {
            StepOutcome::Done { .. } => {}
            StepOutcome::WaitingForLog => db.force_log().unwrap(),
            StepOutcome::Progress { .. } => {}
        }
        steps += 1;
    }

    let before = db.fingerprint();
    db.crash().unwrap();
    db.recover().unwrap();
    (before, db.fingerprint(), steps)
}

#[test]
fn crash_matrix_all_algorithms_all_points() {
    for algorithm in Algorithm::ALL_EXTENDED {
        // first find out how many steps a full run takes
        let (_, _, max_steps) = scenario(algorithm, usize::MAX >> 1);
        assert!(
            max_steps > 3,
            "{algorithm}: scenario too short to be interesting"
        );
        // crash at every point: 0 steps (just begun), each mid-point,
        // and past the end (checkpoint completed, then crash)
        for crash_at in 0..=max_steps + 1 {
            let (before, after, _) = scenario(algorithm, crash_at);
            assert_eq!(
                before, after,
                "{algorithm}: recovery diverged when crashing after {crash_at} steps"
            );
        }
    }
}

#[test]
fn double_crash_during_recovery_window() {
    // Crash again immediately after recovery (before any new checkpoint):
    // the same backup must still be there.
    for algorithm in Algorithm::ALL_EXTENDED {
        let mut db = Mmdb::open_in_memory(config(algorithm)).unwrap();
        for i in 0..30u64 {
            db.run_txn(&[(RecordId(i % 2048), val(&db, i as u32 + 1))])
                .unwrap();
        }
        db.checkpoint().unwrap();
        db.run_txn(&[(RecordId(7), val(&db, 777))]).unwrap();
        let committed = db.fingerprint();

        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), committed, "{algorithm}: first recovery");

        db.crash().unwrap();
        db.recover().unwrap();
        assert_eq!(db.fingerprint(), committed, "{algorithm}: second recovery");
    }
}

#[test]
fn repeated_crash_checkpoint_cycles() {
    // Ten cycles of work → checkpoint → more work → crash → recover,
    // alternating ping-pong copies throughout.
    for algorithm in [
        Algorithm::FuzzyCopy,
        Algorithm::CouCopy,
        Algorithm::TwoColorCopy,
    ] {
        let mut db = Mmdb::open_in_memory(config(algorithm)).unwrap();
        for round in 0..10u64 {
            for i in 0..15u64 {
                db.run_txn(&[(
                    RecordId((round * 211 + i * 13) % 2048),
                    val(&db, (round * 100 + i) as u32),
                )])
                .unwrap();
            }
            db.checkpoint().unwrap();
            db.run_txn(&[(RecordId(round % 2048), val(&db, 4242 + round as u32))])
                .unwrap();
            let committed = db.fingerprint();
            db.crash().unwrap();
            db.recover().unwrap();
            assert_eq!(db.fingerprint(), committed, "{algorithm}: round {round}");
        }
    }
}

#[test]
fn crash_during_quiesce_wait() {
    // A COU checkpoint stuck waiting for a straggler transaction when the
    // system dies: the straggler's staged writes must vanish, the
    // checkpoint must not exist, and the previous checkpoint must recover.
    let mut db = Mmdb::open_in_memory(config(Algorithm::CouCopy)).unwrap();
    for i in 0..20u64 {
        db.run_txn(&[(RecordId(i), val(&db, i as u32 + 1))])
            .unwrap();
    }
    db.checkpoint().unwrap();
    let committed = db.fingerprint();

    let straggler = db.begin_txn().unwrap();
    db.write(straggler, RecordId(100), &val(&db, 666)).unwrap();
    assert_eq!(
        db.try_begin_checkpoint().unwrap(),
        mmdb::CheckpointStart::Quiescing
    );
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.fingerprint(), committed);
    assert_eq!(db.read_committed(RecordId(100)).unwrap(), val(&db, 0));
}
