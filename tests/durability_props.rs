//! Property-based durability: arbitrary interleavings of transactions,
//! checkpoint begins/steps and crashes must always recover to exactly
//! the committed state, for every algorithm.
//!
//! A reference model (a plain `HashMap` of committed record values) is
//! maintained alongside the engine; after every crash+recovery the whole
//! database is compared against it.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, MmdbError, RecordId, StepOutcome};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Run a transaction updating the given (record, fill) pairs.
    Txn(Vec<(u64, u32)>),
    /// Request a checkpoint (no-op if one is active).
    CkptBegin,
    /// Take up to N checkpoint steps (no-op if none active).
    CkptSteps(u8),
    /// Crash and recover, then verify against the reference model.
    CrashRecover,
}

fn op_strategy(n_records: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec((0..n_records, 1u32..u32::MAX), 1..6).prop_map(Op::Txn),
        2 => Just(Op::CkptBegin),
        3 => (1u8..20).prop_map(Op::CkptSteps),
        1 => Just(Op::CrashRecover),
    ]
}

fn check_against_reference(db: &Mmdb, reference: &HashMap<u64, u32>) {
    let words = db.record_words();
    for rid in 0..db.n_records() {
        let expected_fill = reference.get(&rid).copied().unwrap_or(0);
        let actual = db.read_committed(RecordId(rid)).unwrap();
        assert_eq!(
            actual,
            vec![expected_fill; words],
            "record {rid} diverged from the reference model"
        );
    }
}

fn run_ops(algorithm: Algorithm, ops: &[Op]) {
    let mut cfg = MmdbConfig::small(algorithm);
    // an even smaller database keeps the full-database comparison fast
    cfg.params.db.s_db = 16 << 10; // 8 segments, 512 records
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    let mut db = Mmdb::open_in_memory(cfg).unwrap();
    let words = db.record_words();
    let mut reference: HashMap<u64, u32> = HashMap::new();
    let mut has_checkpoint = false;

    for op in ops {
        match op {
            Op::Txn(updates) => {
                let materialized: Vec<(RecordId, Vec<u32>)> = updates
                    .iter()
                    .map(|(rid, fill)| (RecordId(*rid), vec![*fill; words]))
                    .collect();
                db.run_txn(&materialized).unwrap();
                for (rid, fill) in updates {
                    reference.insert(*rid, *fill);
                }
            }
            Op::CkptBegin => match db.try_begin_checkpoint() {
                Ok(_) => {}
                Err(MmdbError::CheckpointInProgress) => {}
                Err(e) => panic!("unexpected begin error: {e}"),
            },
            Op::CkptSteps(n) => {
                for _ in 0..*n {
                    if !db.is_checkpoint_active() {
                        break;
                    }
                    match db.checkpoint_step().unwrap() {
                        StepOutcome::Done { .. } => {
                            has_checkpoint = true;
                            break;
                        }
                        StepOutcome::WaitingForLog => db.force_log().unwrap(),
                        StepOutcome::Progress { .. } => {}
                    }
                }
            }
            Op::CrashRecover => {
                db.crash().unwrap();
                match db.recover() {
                    Ok(_) => check_against_reference(&db, &reference),
                    Err(MmdbError::NoCompleteBackup) => {
                        // legitimate only if no checkpoint ever completed
                        assert!(!has_checkpoint, "backup vanished");
                        assert_audit_clean(&db);
                        return; // the engine is unusable from here
                    }
                    Err(e) => panic!("recovery failed: {e}"),
                }
            }
        }
    }
    // final verdict: crash at the very end too
    db.crash().unwrap();
    match db.recover() {
        Ok(_) => check_against_reference(&db, &reference),
        Err(MmdbError::NoCompleteBackup) => assert!(!has_checkpoint),
        Err(e) => panic!("final recovery failed: {e}"),
    }
    assert_audit_clean(&db);
}

/// `MmdbConfig::small` runs these interleavings with the protocol audit
/// on; no checker may have fired at any point.
fn assert_audit_clean(db: &Mmdb) {
    let violations = db.audit_violations();
    assert!(
        violations.is_empty(),
        "protocol audit violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn fuzzycopy_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::FuzzyCopy, &ops);
    }

    #[test]
    fn fastfuzzy_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::FastFuzzy, &ops);
    }

    #[test]
    fn coucopy_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::CouCopy, &ops);
    }

    #[test]
    fn couflush_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::CouFlush, &ops);
    }

    #[test]
    fn two_color_copy_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::TwoColorCopy, &ops);
    }

    #[test]
    fn two_color_flush_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::TwoColorFlush, &ops);
    }

    #[test]
    fn couac_durable(ops in proptest::collection::vec(op_strategy(512), 1..40)) {
        run_ops(Algorithm::CouAc, &ops);
    }
}
