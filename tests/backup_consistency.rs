//! Consistency of the backup *image itself* — the property that
//! distinguishes the algorithm families (paper §3):
//!
//! * **COU** checkpoints must write exactly the database state that
//!   existed at the quiesce point (`τ(CH)`), no matter what commits race
//!   the sweep;
//! * **two-color** checkpoints must reflect every transaction atomically
//!   (all of its writes in the image, or none);
//! * **fuzzy** checkpoints carry no such guarantee — the test
//!   demonstrates an actual torn image, which is why fuzzy recovery
//!   leans on the REDO log.
//!
//! The engine's public API never exposes the raw backup (recovery always
//! replays the log on top), so these tests drive the substrate crates
//! directly: real storage, log, checkpointer, and an in-memory backup
//! whose segments we can read back.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::checkpoint::{Checkpointer, StepOutcome, WalPolicy};
use mmdb::disk::{BackupStore, MemBackup};
use mmdb::log::{LogManager, LogRecord, MemLogDevice};
use mmdb::storage::{Color, Storage};
use mmdb::types::{
    hash::Fnv1a, Algorithm, CkptMode, CostMeter, CostParams, LogMode, Params, RecordId, SegmentId,
    Timestamp, TxnId, Word,
};

/// A minimal transaction-processing rig over the substrate crates, with
/// direct access to the backup store.
struct Rig {
    storage: Storage,
    log: LogManager,
    backup: MemBackup,
    ckpt: Checkpointer,
    meter: CostMeter,
    tau: u64,
    next_txn: u64,
    aborted: u64,
}

impl Rig {
    fn new(algorithm: Algorithm) -> Rig {
        let p = Params::small();
        let log_mode = if algorithm == Algorithm::FastFuzzy {
            LogMode::StableTail
        } else {
            LogMode::VolatileTail
        };
        Rig {
            storage: Storage::new(p.db).unwrap(),
            log: LogManager::new(
                Box::new(MemLogDevice::new()),
                log_mode,
                CostMeter::shared(CostParams::default()),
            ),
            backup: MemBackup::new(p.db),
            ckpt: Checkpointer::new(
                algorithm,
                CkptMode::Partial,
                WalPolicy::Force,
                CostMeter::shared(CostParams::default()),
            ),
            meter: CostMeter::new(CostParams::default()),
            tau: 0,
            next_txn: 0,
            aborted: 0,
        }
    }

    fn tau(&mut self) -> Timestamp {
        self.tau += 1;
        Timestamp(self.tau)
    }

    /// Commits a whole transaction atomically (shadow-copy semantics),
    /// honoring the two-color rule: if the write set straddles colors
    /// during an active 2C checkpoint, the transaction aborts.
    /// Returns true if it committed.
    fn txn(&mut self, writes: &[(u64, u32)]) -> bool {
        let tau = self.tau();
        self.next_txn += 1;
        let txn = TxnId(self.next_txn);

        if self.ckpt.two_color_active() {
            let mut seen: Option<Color> = None;
            for (rid, _) in writes {
                let sid = self.storage.segment_of(RecordId(*rid)).unwrap();
                let color = self.storage.color(sid).unwrap();
                match seen {
                    None => seen = Some(color),
                    Some(c) if c == color => {}
                    Some(_) => {
                        self.aborted += 1;
                        return false; // two-color abort
                    }
                }
            }
        }

        self.log.append(&LogRecord::TxnBegin { txn, tau });
        let s_rec = self.storage.db_params().s_rec as usize;
        let mut installs = Vec::new();
        for (rid, fill) in writes {
            let value = vec![*fill as Word; s_rec];
            let rec = LogRecord::Update {
                txn,
                record: RecordId(*rid),
                value: value.clone(),
            };
            let lsn = self.log.append(&rec);
            installs.push((RecordId(*rid), value, rec.end_lsn(lsn)));
        }
        self.log.append_forced(&LogRecord::Commit { txn }).unwrap();
        for (rid, value, end_lsn) in installs {
            let sid = self.storage.segment_of(rid).unwrap();
            self.ckpt
                .on_before_install(&mut self.storage, sid, &self.meter)
                .unwrap();
            self.storage
                .install_record(rid, &value, end_lsn, tau, &self.meter)
                .unwrap();
        }
        true
    }

    fn begin_ckpt(&mut self) {
        let tau = self.tau();
        self.ckpt
            .begin(&mut self.storage, &mut self.log, &mut self.backup, &[], tau)
            .unwrap();
    }

    fn step(&mut self) -> StepOutcome {
        self.ckpt
            .step(&mut self.storage, &mut self.log, &mut self.backup)
            .unwrap()
    }

    fn finish_ckpt(&mut self) {
        while self.ckpt.is_active() {
            self.step();
        }
    }

    fn checkpoint(&mut self) {
        self.begin_ckpt();
        self.finish_ckpt();
    }

    /// Fingerprint of the live database.
    fn live_fingerprint(&self) -> u64 {
        self.storage.fingerprint()
    }

    /// Fingerprint of the assembled backup image in `copy`.
    fn backup_fingerprint(&mut self, copy: usize) -> u64 {
        let s_seg = self.storage.db_params().s_seg as usize;
        let mut buf = vec![0 as Word; s_seg];
        let mut h = Fnv1a::new();
        for sid in 0..self.storage.n_segments() as u32 {
            self.backup
                .read_segment(copy, SegmentId(sid), &mut buf)
                .unwrap();
            h.update_words(&buf);
        }
        h.finish()
    }

    /// Reads word 0 of a record out of the backup image.
    fn backup_record_head(&mut self, copy: usize, rid: u64) -> Word {
        let db = *self.storage.db_params();
        let sid = self.storage.segment_of(RecordId(rid)).unwrap();
        let mut buf = vec![0 as Word; db.s_seg as usize];
        self.backup.read_segment(copy, sid, &mut buf).unwrap();
        let off = ((rid % db.records_per_segment()) * db.s_rec) as usize;
        buf[off]
    }
}

#[test]
fn cou_backup_equals_quiesce_point_state_exactly() {
    // COUAC is included: with commit-atomic installs (this engine's
    // shadow-copy scheme), its non-quiesced snapshot still lands on a
    // transaction boundary — the AC/TC gap only opens up for engines
    // that install mid-transaction.
    for algorithm in [Algorithm::CouCopy, Algorithm::CouFlush, Algorithm::CouAc] {
        let mut rig = Rig::new(algorithm);
        for i in 0..40 {
            rig.txn(&[(i * 40 % 2048, 100 + i as u32)]);
        }
        rig.checkpoint(); // seed copy 1
        rig.checkpoint(); // seed copy 0

        for i in 0..30 {
            rig.txn(&[(i * 67 % 2048, 200 + i as u32)]);
        }
        let snapshot = rig.live_fingerprint();

        // checkpoint 3 → copy 1, racing a storm of updates
        rig.begin_ckpt();
        let mut k = 0u64;
        while rig.ckpt.is_active() {
            k += 1;
            rig.txn(&[
                (k * 31 % 2048, 5000 + k as u32),
                ((k * 31 + 1000) % 2048, 6000 + k as u32),
            ]);
            rig.step();
        }
        assert!(k > 5, "{algorithm}: the race must actually happen");
        assert_ne!(
            rig.live_fingerprint(),
            snapshot,
            "{algorithm}: live state moved on"
        );
        assert_eq!(
            rig.backup_fingerprint(1),
            snapshot,
            "{algorithm}: the backup must be the exact quiesce-point snapshot"
        );
    }
}

#[test]
fn two_color_backup_reflects_transactions_atomically() {
    let mut rig = Rig::new(Algorithm::TwoColorCopy);
    // Base state: dirty every segment so the whole database is white at
    // the next checkpoint.
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 1)]);
    }
    rig.checkpoint();
    rig.checkpoint();
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 2)]);
    }

    // Fresh-record transactions racing the sweep: each writes 3 records
    // in 3 different segments, never touched before (records 1..64 of
    // each segment are virgin).
    rig.begin_ckpt();
    let mut committed: Vec<(u64, Vec<(u64, u32)>)> = Vec::new(); // (txn-id, writes)
    let mut t = 0u64;
    while rig.ckpt.is_active() {
        t += 1;
        let base = 1 + (t % 60); // record offset within segment, never 0
        let writes: Vec<(u64, u32)> = (0..3)
            .map(|j| {
                let seg = (t * 7 + j * 11) % 32;
                (seg * 64 + base, (1000 + t * 10 + j) as u32)
            })
            .collect();
        if rig.txn(&writes) {
            committed.push((t, writes));
        }
        rig.step();
    }
    assert!(rig.aborted > 0, "the race should produce two-color aborts");
    assert!(!committed.is_empty(), "some racers should commit");

    // Atomicity audit: for every committed racer, the backup holds either
    // all of its writes or none of them.
    let mut wholly_in = 0;
    let mut wholly_out = 0;
    for (t, writes) in &committed {
        let present: Vec<bool> = writes
            .iter()
            .map(|(rid, fill)| rig.backup_record_head(1, *rid) == *fill)
            .collect();
        if present.iter().all(|&p| p) {
            wholly_in += 1;
        } else if present.iter().all(|&p| !p) {
            wholly_out += 1;
        } else {
            panic!("transaction {t} is TORN in the two-color backup: {present:?} for {writes:?}");
        }
    }
    // both classes should exist in a genuine race
    assert!(
        wholly_in > 0,
        "some transactions serialized before the checkpoint"
    );
    assert!(
        wholly_out > 0,
        "some transactions serialized after the checkpoint"
    );
}

#[test]
fn fuzzy_backup_can_be_torn_but_log_repairs_it() {
    // The demonstration that fuzziness is real: a transaction whose two
    // writes land on opposite sides of the sweep cursor shows up torn in
    // a FUZZYCOPY backup image. (Recovery replays the log, so the
    // *recovered database* is still correct — that part is covered by the
    // crash tests.)
    let mut rig = Rig::new(Algorithm::FuzzyCopy);
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 1)]);
    }
    rig.checkpoint();
    rig.checkpoint();
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 2)]);
    }

    rig.begin_ckpt();
    // let the sweep pass segment 0
    loop {
        match rig.step() {
            StepOutcome::Progress { io_words } if io_words > 0 => break,
            StepOutcome::Done { .. } => panic!("finished too early"),
            _ => {}
        }
    }
    // one transaction spanning the cursor: segment 0 (already flushed)
    // and segment 31 (not yet flushed)
    assert!(rig.txn(&[(5, 4242), (31 * 64 + 5, 4242)]));
    rig.finish_ckpt();

    let first = rig.backup_record_head(1, 5);
    let second = rig.backup_record_head(1, 31 * 64 + 5);
    assert_eq!(first, 0, "segment 0 was flushed before the write");
    assert_eq!(second, 4242, "segment 31 was flushed after the write");
    assert_ne!(first, second, "the fuzzy image is torn, as §3.1 warns");
}

#[test]
fn two_color_white_count_decreases_monotonically() {
    let mut rig = Rig::new(Algorithm::TwoColorFlush);
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 9)]);
    }
    rig.checkpoint();
    rig.checkpoint();
    for s in 0..32u64 {
        rig.txn(&[(s * 64, 10)]);
    }
    rig.begin_ckpt();
    let mut last = rig.storage.white_count();
    assert_eq!(last, 32);
    while rig.ckpt.is_active() {
        rig.step();
        let now = rig.storage.white_count();
        assert!(now <= last, "white count must never grow mid-checkpoint");
        last = now;
    }
    assert_eq!(last, 0);
}
