//! Archival cold backups (paper §2.7): `dump_archive` captures the
//! newest complete checkpoint image plus the log slice that brings it to
//! the committed state; `restore_archive_dir` rebuilds an identical
//! database in a fresh directory.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::{Algorithm, Mmdb, MmdbConfig, MmdbError, RecordId};

fn tmp(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("mmdb-archtest-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn archive_captures_exact_committed_state() {
    let src_dir = tmp("src");
    let dst_dir = tmp("dst");
    let archive = tmp("file.mmdbarch");

    let config = MmdbConfig::small(Algorithm::CouCopy);
    let fingerprint = {
        let (mut db, _) = Mmdb::open_dir(config, &src_dir).unwrap();
        let words = db.record_words();
        for i in 0..80u64 {
            db.run_txn(&[(RecordId(i * 23 % 2048), vec![i as u32 + 1; words])])
                .unwrap();
        }
        db.checkpoint().unwrap();
        // committed after the checkpoint: must travel in the log slice
        for i in 0..30u64 {
            db.run_txn(&[(RecordId(i), vec![90_000 + i as u32; words])])
                .unwrap();
        }
        let info = db.dump_archive(&archive).unwrap();
        assert!(info.log_bytes > 0, "the log slice must carry the tail");
        db.fingerprint()
    };

    let (mut db, report) = Mmdb::restore_archive_dir(config, &dst_dir, &archive).unwrap();
    assert!(report.txns_replayed >= 30);
    assert_eq!(db.fingerprint(), fingerprint, "bit-identical restore");

    // the restored database is fully operational: new work, checkpoints,
    // crash recovery
    db.run_txn(&[(RecordId(0), vec![5; db.record_words()])])
        .unwrap();
    db.checkpoint().unwrap();
    let before = db.fingerprint();
    db.crash().unwrap();
    db.recover().unwrap();
    assert_eq!(db.fingerprint(), before);

    for p in [&src_dir, &dst_dir] {
        let _ = std::fs::remove_dir_all(p);
    }
    let _ = std::fs::remove_file(&archive);
}

#[test]
fn restore_refuses_existing_database() {
    let src_dir = tmp("src2");
    let archive = tmp("file2.mmdbarch");
    let config = MmdbConfig::small(Algorithm::FuzzyCopy);
    {
        let (mut db, _) = Mmdb::open_dir(config, &src_dir).unwrap();
        db.run_txn(&[(RecordId(0), vec![1; db.record_words()])])
            .unwrap();
        db.checkpoint().unwrap();
        db.dump_archive(&archive).unwrap();
    }
    // restoring over the SOURCE directory (which has a database) must fail
    let err = Mmdb::restore_archive_dir(config, &src_dir, &archive).unwrap_err();
    assert!(matches!(err, MmdbError::Invalid(_)));
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_file(&archive);
}

#[test]
fn dump_without_checkpoint_fails() {
    let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::FuzzyCopy)).unwrap();
    db.run_txn(&[(RecordId(0), vec![1; db.record_words()])])
        .unwrap();
    let archive = tmp("nockpt.mmdbarch");
    assert!(matches!(
        db.dump_archive(&archive),
        Err(MmdbError::NoCompleteBackup)
    ));
    let _ = std::fs::remove_file(&archive);
}
