//! Log truncation: after each completed checkpoint, the engine discards
//! the log prefix that no future recovery can need (everything before
//! the replay floor of the *older* complete ping-pong copy). With the
//! segmented on-disk log, that reclaims real space — the property a
//! long-running system lives or dies by.

// Test helpers exercise infallible setup paths; panicking on them is the point.
#![allow(clippy::unwrap_used)]

use mmdb::log::{LogDevice, SegmentedLogDevice};
use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, RecordId};

fn config(algorithm: Algorithm) -> MmdbConfig {
    let mut cfg = MmdbConfig::small(algorithm);
    cfg.log_chunk_bytes = 4096; // small chunks so truncation is visible
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    cfg
}

fn log_dir_bytes(dir: &std::path::Path) -> u64 {
    let d = SegmentedLogDevice::open(&dir.join("log"), 4096, false).unwrap();
    let bytes = d.disk_bytes();
    // keep borrowck happy about the unused read capability
    let _ = d.len();
    bytes
}

#[test]
fn log_disk_usage_stays_bounded_across_checkpoint_cycles() {
    for algorithm in [Algorithm::FuzzyCopy, Algorithm::CouCopy] {
        let dir = std::env::temp_dir().join(format!(
            "mmdb-trunc-{}-{}",
            algorithm.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut peak_after_ckpt = Vec::new();
        {
            let (mut db, _) = Mmdb::open_dir(config(algorithm), &dir).unwrap();
            let words = db.record_words();
            for cycle in 0..12u64 {
                // ~40 KiB of log per cycle (well past several chunks)
                for i in 0..60u64 {
                    db.run_txn(&[(
                        RecordId((cycle * 61 + i * 7) % 2048),
                        vec![(cycle * 100 + i) as u32; words],
                    )])
                    .unwrap();
                }
                db.checkpoint().unwrap();
                peak_after_ckpt.push(db.log_stats().bytes);
            }
            // total log *written* grows without bound...
            // (12 cycles × 60 txns × ~220 bytes ≈ 160 KB)
            assert!(peak_after_ckpt.last().unwrap() > &150_000);
        }
        // ...but the disk footprint is bounded by ~2 checkpoint intervals
        // of log plus chunk rounding
        let on_disk = log_dir_bytes(&dir);
        let total_written = *peak_after_ckpt.last().unwrap();
        assert!(
            on_disk < total_written / 3,
            "{algorithm}: truncation should have reclaimed most of the \
             {total_written} written bytes, but {on_disk} remain"
        );

        // and the database still recovers from what remains
        let (db, recovered) = Mmdb::open_dir(config(algorithm), &dir).unwrap();
        assert!(recovered.is_some(), "{algorithm}");
        assert!(db.read_committed(RecordId(0)).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_after_truncation_is_exact() {
    let dir = std::env::temp_dir().join(format!("mmdb-trunc-exact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fingerprint = {
        let (mut db, _) = Mmdb::open_dir(config(Algorithm::FuzzyCopy), &dir).unwrap();
        let words = db.record_words();
        for cycle in 0..6u64 {
            for i in 0..50u64 {
                db.run_txn(&[(
                    RecordId((cycle * 97 + i * 3) % 2048),
                    vec![(cycle * 1000 + i) as u32; words],
                )])
                .unwrap();
            }
            db.checkpoint().unwrap();
        }
        // post-checkpoint transactions that live only in the (recent) log
        for i in 0..20u64 {
            db.run_txn(&[(RecordId(i), vec![999_000 + i as u32; words])])
                .unwrap();
        }
        db.fingerprint()
    };

    let (db, recovered) = Mmdb::open_dir(config(Algorithm::FuzzyCopy), &dir).unwrap();
    assert!(recovered.is_some());
    assert_eq!(
        db.fingerprint(),
        fingerprint,
        "truncation must never eat log that recovery needs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_keeps_enough_for_the_older_copy() {
    // After checkpoints k and k+1 complete, recovery might still use
    // either copy (a crash during checkpoint k+2 invalidates its target).
    // So the log must reach back to checkpoint k's begin marker — crash
    // mid-checkpoint and verify.
    let dir = std::env::temp_dir().join(format!("mmdb-trunc-older-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (mut db, _) = Mmdb::open_dir(config(Algorithm::CouCopy), &dir).unwrap();
    let words = db.record_words();
    for i in 0..40u64 {
        db.run_txn(&[(RecordId(i * 13 % 2048), vec![i as u32 + 1; words])])
            .unwrap();
    }
    db.checkpoint().unwrap(); // ckpt 1 → copy 1
    db.run_txn(&[(RecordId(5), vec![111; words])]).unwrap();
    db.checkpoint().unwrap(); // ckpt 2 → copy 0 (truncation may fire now)
    db.run_txn(&[(RecordId(6), vec![222; words])]).unwrap();

    // begin ckpt 3 (targets copy 1, invalidating it) and crash mid-way
    db.try_begin_checkpoint().unwrap();
    db.checkpoint_step().unwrap();
    let before = db.fingerprint();
    db.crash().unwrap();
    let report = db.recover().unwrap();
    assert_eq!(report.ckpt.raw(), 2, "copy 0 (ckpt 2) is the survivor");
    assert_eq!(db.fingerprint(), before);
    let _ = std::fs::remove_dir_all(&dir);
}
