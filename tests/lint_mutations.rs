//! Mutation tests for the concurrency-discipline lint: each fixture
//! plants exactly one discipline violation and must trip exactly its
//! rule — no more, no less — while the clean twin of every fixture
//! passes. This is the lint's own regression suite: if a rule's
//! matcher drifts (misses the mutation or starts flagging the clean
//! form), one of these fails.

use mmdb_lint::{check_source, Baseline};

/// Rule ids reported for `src` when checked under `path`.
fn rules(path: &str, src: &str) -> Vec<&'static str> {
    check_source(path, src)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

#[test]
fn l1_guard_held_across_blocking_op() {
    let bad = r#"
        fn flush(&self) {
            let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            self.file.sync_all().ok();
            drop(g);
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad), vec!["L1"]);

    // Clean twin: the guard is dropped before the blocking call.
    let good = r#"
        fn flush(&self) {
            let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            drop(g);
            self.file.sync_all().ok();
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", good), Vec::<&str>::new());
}

#[test]
fn l1_statement_temporary_guard_across_blocking_op() {
    // The guard only lives for the statement, but the blocking call is
    // chained onto it — the lock IS held across the recv_timeout.
    let bad = r#"
        fn next(&self) {
            let msg = self.queue.lock().recv_timeout(POLL);
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad), vec!["L1"]);
}

#[test]
fn l2_direct_engine_lock_outside_the_helper() {
    let bad = r#"
        fn sneak(&self, i: usize) {
            let g = self.shards[i].lock().unwrap_or_else(PoisonError::into_inner);
            g.commit();
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad), vec!["L2"]);

    // Clean twin: other collections may be indexed-and-locked freely.
    let good = r#"
        fn fine(&self, i: usize) {
            let g = self.signals[i].lock().unwrap_or_else(PoisonError::into_inner);
            g.ring();
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", good), Vec::<&str>::new());
}

#[test]
fn l3_condvar_wait_outside_a_predicate_loop() {
    let bad = r#"
        fn park(&self) {
            let mut g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad), vec!["L3"]);

    // Clean twin: the same wait inside a `while` predicate loop.
    let good = r#"
        fn park(&self) {
            let mut g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
            while !*g {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", good), Vec::<&str>::new());

    // `Child::wait()` takes no guard and is not a condvar wait.
    let child = r#"
        fn reap(child: &mut Child) {
            child.wait().ok();
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", child), Vec::<&str>::new());
}

#[test]
fn l4_wall_clock_in_sim_paths_only() {
    let src = r#"
        fn stamp(&self) -> Instant {
            Instant::now()
        }
    "#;
    // In a sim-clocked crate this is the determinism bug L4 exists for…
    assert_eq!(rules("crates/sim/src/lib.rs", src), vec!["L4"]);
    assert_eq!(rules("crates/model/src/cost.rs", src), vec!["L4"]);
    // …everywhere else wall clocks are fine.
    assert_eq!(rules("crates/server/src/lib.rs", src), Vec::<&str>::new());

    let sys = r#"
        fn stamp(&self) -> SystemTime {
            SystemTime::now()
        }
    "#;
    assert_eq!(rules("crates/sim/src/time.rs", sys), vec!["L4"]);
}

#[test]
fn l5_poison_unsafe_guard_acquisition() {
    let bad = r#"
        fn peek(&self) -> u64 {
            *self.state.lock().unwrap()
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad), vec!["L5"]);

    let bad_expect = r#"
        fn peek(&self) -> u64 {
            *self.state.lock().expect("poisoned")
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", bad_expect), vec!["L5"]);

    // Clean twin: poison-tolerant acquisition.
    let good = r#"
        fn peek(&self) -> u64 {
            *self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", good), Vec::<&str>::new());
}

#[test]
fn a_clean_composite_module_reports_nothing() {
    // Every discipline observed at once: poison-tolerant locks, drop
    // before blocking, predicate-looped waits, the sanctioned helper.
    let src = r#"
        impl Core {
            fn lock_engine(&self, i: usize) -> Guard<'_> {
                self.engine_at(i)
            }
            fn flush(&self) {
                let lsn = {
                    let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    g.lsn
                };
                self.device.sync_all().ok();
                self.mark(lsn);
            }
            fn park(&self) {
                let mut g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if *g {
                        break;
                    }
                    g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    "#;
    assert_eq!(rules("crates/x/src/lib.rs", src), Vec::<&str>::new());
}

#[test]
fn violations_carry_the_enclosing_function_and_line() {
    let src = "fn outer() {\n    let g = s.lock().unwrap();\n}\n";
    let vs = check_source("crates/x/src/lib.rs", src);
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].func, "outer");
    assert_eq!(vs[0].line, 2);
    assert_eq!(vs[0].path, "crates/x/src/lib.rs");
}

#[test]
fn baseline_suppresses_by_rule_path_and_function_and_reports_stale() {
    let src = "fn hot() {\n    let g = s.lock().unwrap();\n}\n";
    let vs = check_source("crates/x/src/lib.rs", src);
    assert_eq!(vs.len(), 1);

    let bl = Baseline::parse(
        "# reviewed\n\
         L5 crates/x/src/lib.rs hot legacy poison handling, tracked in the hierarchy doc\n\
         L5 crates/x/src/lib.rs gone this entry matches nothing\n",
    )
    .expect("baseline parses");
    let (open, suppressed, stale) = bl.apply(vs);
    assert!(open.is_empty(), "the reviewed site is suppressed");
    assert_eq!(suppressed, 1);
    assert_eq!(stale.len(), 1, "the unmatched entry is reported stale");
    assert!(stale[0].contains("gone"));
}

#[test]
fn baseline_entries_require_a_reason() {
    assert!(Baseline::parse("L5 crates/x/src/lib.rs hot\n").is_err());
    assert!(Baseline::parse("L9 crates/x/src/lib.rs hot not a real rule\n").is_err());
}
