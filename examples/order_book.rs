//! An order-book application on top of the engine — the downstream-user
//! pattern the paper's introduction motivates: the *data* is protected by
//! checkpointing + the REDO log, while *secondary structures* (indexes)
//! stay volatile and are rebuilt from the recovered records, exactly as
//! the main-memory index literature the paper cites assumes (indexes are
//! cheap to rebuild from memory-resident data; only the base data needs
//! durable protection).
//!
//! Records encode limit orders; an in-memory price index (a `BTreeMap`
//! the engine knows nothing about) answers best-bid/best-ask queries and
//! is reconstructed by a full scan after every recovery.
//!
//! ```text
//! cargo run --example order_book
//! ```

use mmdb::{Algorithm, Mmdb, MmdbConfig, RecordId};
use std::collections::BTreeMap;

/// Order layout within a 32-word record:
/// word 0: state (0 = empty, 1 = open-buy, 2 = open-sell, 3 = filled)
/// word 1: price (integer cents)
/// word 2: quantity
/// remaining words: padding / "client data".
#[derive(Debug, Clone, Copy, PartialEq)]
struct Order {
    state: u32,
    price: u32,
    qty: u32,
}

impl Order {
    fn encode(self, words: usize) -> Vec<u32> {
        let mut rec = vec![0; words];
        rec[0] = self.state;
        rec[1] = self.price;
        rec[2] = self.qty;
        rec
    }

    fn decode(rec: &[u32]) -> Order {
        Order {
            state: rec[0],
            price: rec[1],
            qty: rec[2],
        }
    }
}

/// The volatile secondary index: price → order slots, per side.
#[derive(Debug, Default)]
struct PriceIndex {
    bids: BTreeMap<u32, Vec<u64>>, // buy orders by price
    asks: BTreeMap<u32, Vec<u64>>, // sell orders by price
}

impl PriceIndex {
    fn insert(&mut self, slot: u64, order: Order) {
        let side = match order.state {
            1 => &mut self.bids,
            2 => &mut self.asks,
            _ => return,
        };
        side.entry(order.price).or_default().push(slot);
    }

    fn remove(&mut self, slot: u64, order: Order) {
        let side = match order.state {
            1 => &mut self.bids,
            2 => &mut self.asks,
            _ => return,
        };
        if let Some(v) = side.get_mut(&order.price) {
            v.retain(|s| *s != slot);
            if v.is_empty() {
                side.remove(&order.price);
            }
        }
    }

    fn best_bid(&self) -> Option<u32> {
        self.bids.keys().next_back().copied()
    }

    fn best_ask(&self) -> Option<u32> {
        self.asks.keys().next().copied()
    }

    /// Rebuild from a full scan of the recovered store — the post-crash
    /// step that replaces durable index maintenance.
    fn rebuild(db: &Mmdb) -> PriceIndex {
        let mut index = PriceIndex::default();
        db.for_each_record(|rid, words| {
            index.insert(rid.raw(), Order::decode(words));
        })
        .expect("scan recovered store");
        index
    }
}

fn place_order(db: &mut Mmdb, index: &mut PriceIndex, slot: u64, order: Order) -> mmdb::Result<()> {
    db.run_txn(&[(RecordId(slot), order.encode(db.record_words()))])?;
    index.insert(slot, order);
    Ok(())
}

fn fill_order(db: &mut Mmdb, index: &mut PriceIndex, slot: u64) -> mmdb::Result<()> {
    let mut order = Order::decode(&db.read_committed(RecordId(slot))?);
    index.remove(slot, order);
    order.state = 3; // filled
    db.run_txn(&[(RecordId(slot), order.encode(db.record_words()))])?;
    Ok(())
}

fn main() -> mmdb::Result<()> {
    let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::CouCopy))?;
    let mut index = PriceIndex::default();

    // an opening book: 400 orders across both sides
    let mut slot = 0u64;
    for i in 0..200u32 {
        place_order(
            &mut db,
            &mut index,
            slot,
            Order {
                state: 1,
                price: 9_900 - i % 50,
                qty: 10 + i,
            },
        )?;
        slot += 1;
        place_order(
            &mut db,
            &mut index,
            slot,
            Order {
                state: 2,
                price: 10_000 + i % 50,
                qty: 10 + i,
            },
        )?;
        slot += 1;
    }
    db.checkpoint()?;
    println!(
        "book open: best bid {:?}, best ask {:?} ({} orders)",
        index.best_bid(),
        index.best_ask(),
        slot
    );

    // trading: fills + new orders tighten the spread, checkpoint mid-way
    for i in 0..60u64 {
        fill_order(&mut db, &mut index, i * 2)?; // eat some bids
        place_order(
            &mut db,
            &mut index,
            slot,
            Order {
                state: 1,
                price: 9_901 + i as u32,
                qty: 5,
            },
        )?;
        slot += 1;
        if i == 30 {
            db.checkpoint()?;
        }
    }
    let (bid, ask) = (index.best_bid(), index.best_ask());
    println!("after trading: best bid {bid:?}, best ask {ask:?}");

    // the machine dies; the index is volatile and gone, the orders are not
    db.crash()?;
    let report = db.recover()?;
    println!(
        "crash + recovery (checkpoint {}, {} txns replayed); rebuilding index...",
        report.ckpt.raw(),
        report.txns_replayed
    );
    let rebuilt = PriceIndex::rebuild(&db);

    assert_eq!(rebuilt.best_bid(), bid, "rebuilt index must agree");
    assert_eq!(rebuilt.best_ask(), ask);
    println!(
        "rebuilt index agrees: best bid {:?}, best ask {:?} ✓",
        rebuilt.best_bid(),
        rebuilt.best_ask()
    );
    Ok(())
}
