//! Recovery-budget pacing: Figure 4b's trade-off turned into a policy.
//!
//! An operator doesn't pick a checkpoint interval; they pick a *recovery
//! time objective* ("after a crash, be back in ≤ N seconds"). This
//! example inverts the paper's analytic model to find the longest (=
//! cheapest) checkpoint interval that honors the budget, then runs the
//! discrete-event simulator at that interval to confirm the predicted
//! overhead and recovery time on the executed system.
//!
//! ```text
//! cargo run --release --example recovery_budget
//! ```

use mmdb::model::AnalyticModel;
use mmdb::sim::{SimConfig, Simulator};
use mmdb::types::Algorithm;

fn main() {
    let algorithm = Algorithm::CouCopy;
    let base = SimConfig::validation(algorithm);
    let model = AnalyticModel::new(base.params, algorithm);

    let floor = model.evaluate(None).recovery_seconds;
    println!(
        "system: {} at scaled parameters — minimum possible recovery {:.1}s \
         (backup read dominates)\n",
        algorithm, floor
    );
    println!(
        "{:>12} {:>14} {:>16} {:>18} {:>16}",
        "budget (s)", "interval (s)", "model instr/txn", "sim recovery (s)", "sim instr/txn"
    );

    for factor in [1.05, 1.2, 1.5, 2.0] {
        let budget = floor * factor;
        let Some(interval) = model.interval_for_recovery(budget) else {
            println!("{budget:>12.1} {:>14}", "infeasible");
            continue;
        };
        let predicted = model.evaluate(Some(interval));

        let mut cfg = base;
        cfg.ckpt_interval = Some(interval);
        // measure at least a few full checkpoint cycles
        cfg.warmup = interval + 50.0;
        cfg.duration = (interval * 2.5).max(200.0);
        let sim = Simulator::new(cfg).run().expect("simulation failed");

        println!(
            "{budget:>12.1} {interval:>14.1} {:>16.0} {:>18.1} {:>16.0}",
            predicted.overhead_per_txn(),
            sim.est_recovery_seconds,
            sim.overhead_per_txn()
        );
        assert!(
            sim.est_recovery_seconds <= budget * 1.15,
            "executed recovery estimate should respect the budget \
             (got {:.1}s for a {budget:.1}s budget)",
            sim.est_recovery_seconds
        );
    }
    println!(
        "\nLooser budgets buy cheaper checkpointing — the paper's Figure 4b \
         trade-off, driven backwards from the operator's requirement."
    );
}
