//! Quickstart: open a main-memory database, run transactions, take a
//! transaction-consistent checkpoint, crash, and recover.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mmdb::{Algorithm, Mmdb, MmdbConfig, RecordId};

fn main() -> mmdb::Result<()> {
    // A small in-memory database (64 Kwords: 32 segments of 2 Kwords,
    // 2048 records of 32 words) using copy-on-update checkpointing —
    // the algorithm the paper found to give transaction-consistent
    // backups at fuzzy-checkpoint cost.
    let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::CouCopy))?;
    println!(
        "opened: {} records x {} words, {} segments, algorithm {}",
        db.n_records(),
        db.record_words(),
        db.n_segments(),
        db.config().algorithm,
    );

    // Transactions use shadow-copy updates: writes are buffered privately
    // and installed atomically at commit.
    let txn = db.begin_txn()?;
    db.write(txn, RecordId(7), &vec![1234; db.record_words()])?;
    db.write(txn, RecordId(1999), &vec![5678; db.record_words()])?;
    // read-your-writes before commit:
    assert_eq!(db.read(txn, RecordId(7))?[0], 1234);
    db.commit(txn)?;
    println!("committed a 2-record transaction");

    // run_txn packages begin/write/commit (and rerun-on-abort for the
    // two-color algorithms):
    for i in 0..100u64 {
        db.run_txn(&[(RecordId(i * 17 % 2048), vec![i as u32; db.record_words()])])?;
    }
    println!("committed 100 more; total = {}", db.txn_stats().committed);

    // A checkpoint writes a complete, consistent backup to one of the
    // two ping-pong copies on (simulated) disk.
    let report = db.checkpoint()?;
    println!(
        "checkpoint {} -> copy {}: {} segments flushed, {} skipped",
        report.ckpt.raw(),
        report.copy,
        report.segments_flushed,
        report.segments_skipped
    );

    // Transactions after the checkpoint live only in the REDO log...
    db.run_txn(&[(RecordId(7), vec![9999; db.record_words()])])?;
    let fingerprint_before = db.fingerprint();

    // ...until the machine dies. The primary database, log tail and
    // transaction table are lost; the backup copies and the durable log
    // survive.
    db.crash()?;
    println!("crash! volatile state gone");

    let recovery = db.recover()?;
    println!(
        "recovered from checkpoint {} ({} segments, {} log words replayed, \
         {} transactions redone) — modeled recovery time {:.1}s",
        recovery.ckpt.raw(),
        recovery.segments_loaded,
        recovery.log_words,
        recovery.txns_replayed,
        recovery.total_seconds()
    );

    assert_eq!(db.fingerprint(), fingerprint_before);
    assert_eq!(db.read_committed(RecordId(7))?[0], 9999);
    println!("post-crash state identical to pre-crash committed state ✓");

    // The paper's metric: checkpoint-related instructions per transaction.
    let overhead = db.overhead_report();
    println!(
        "checkpoint overhead: {:.0} instr/txn ({:.0} sync + {:.0} async)",
        overhead.ckpt_overhead_per_txn(),
        overhead.sync_per_txn(),
        overhead.async_per_txn()
    );
    Ok(())
}
