//! Bank-teller (debit/credit) workload: the canonical main-memory-DBMS
//! scenario the paper's era benchmarked (TPC-A style). Accounts live in
//! memory; tellers transfer money; a copy-on-update checkpointer runs
//! *concurrently* with the transfers; the machine crashes mid-checkpoint;
//! recovery must preserve every committed transfer — and the bank's
//! books must still balance.
//!
//! ```text
//! cargo run --example bank_teller
//! ```

use mmdb::{Algorithm, CheckpointStart, Mmdb, MmdbConfig, RecordId, StepOutcome};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N_ACCOUNTS: u64 = 2048;
const INITIAL_BALANCE: u32 = 1_000;

/// Account records store the balance in word 0 (the remaining words are
/// "customer data" padding).
fn account_record(balance: u32, words: usize) -> Vec<u32> {
    let mut rec = vec![0xC0FFEE; words];
    rec[0] = balance;
    rec
}

fn balance(db: &Mmdb, account: u64) -> u32 {
    db.read_committed(RecordId(account))
        .expect("account exists")[0]
}

fn total_balance(db: &Mmdb) -> u64 {
    (0..N_ACCOUNTS).map(|a| balance(db, a) as u64).sum()
}

/// One transfer: debit `from`, credit `to`, atomically.
fn transfer(db: &mut Mmdb, from: u64, to: u64, amount: u32) -> mmdb::Result<()> {
    let words = db.record_words();
    let txn = db.begin_txn()?;
    let mut src = db.read(txn, RecordId(from))?;
    let mut dst = db.read(txn, RecordId(to))?;
    if src[0] < amount {
        // insufficient funds: application abort
        db.abort(txn)?;
        return Ok(());
    }
    src[0] -= amount;
    dst[0] += amount;
    debug_assert_eq!(src.len(), words);
    db.write(txn, RecordId(from), &src)?;
    db.write(txn, RecordId(to), &dst)?;
    db.commit(txn)?;
    Ok(())
}

fn main() -> mmdb::Result<()> {
    let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::CouCopy))?;
    let words = db.record_words();
    let mut rng = StdRng::seed_from_u64(7);

    // Open the bank: every account starts with the same balance.
    for a in 0..N_ACCOUNTS {
        db.run_txn(&[(RecordId(a), account_record(INITIAL_BALANCE, words))])?;
    }
    let expected_total = N_ACCOUNTS * INITIAL_BALANCE as u64;
    assert_eq!(total_balance(&db), expected_total);
    db.checkpoint()?; // opening-day backup
    println!("bank open: {N_ACCOUNTS} accounts x {INITIAL_BALANCE}, total {expected_total}");

    // Business hours: transfers interleaved with an online checkpoint.
    // COU quiesces at begin, then transfers continue while the
    // checkpointer sweeps — transactions touching not-yet-swept segments
    // transparently save old copies to protect the snapshot.
    match db.try_begin_checkpoint()? {
        CheckpointStart::Started(_) => {}
        CheckpointStart::Quiescing => unreachable!("no open transactions"),
    }
    let mut transfers = 0u64;
    let mut ckpt_done = false;
    for i in 0..5_000u64 {
        let from = rng.random_range(0..N_ACCOUNTS);
        let to = (from + 1 + rng.random_range(0..N_ACCOUNTS - 1)) % N_ACCOUNTS;
        transfer(&mut db, from, to, rng.random_range(1..50))?;
        transfers += 1;
        // checkpointer runs "in the background": one step every few txns
        if i % 3 == 0 && db.is_checkpoint_active() {
            if let StepOutcome::Done { .. } = db.checkpoint_step()? {
                ckpt_done = true;
            }
        }
    }
    println!(
        "{transfers} transfers processed; concurrent checkpoint {} \
         (snapshot buffer peak existed: {} old-copy words now)",
        if ckpt_done {
            "completed"
        } else {
            "still running"
        },
        db.old_copy_words()
    );
    assert_eq!(total_balance(&db), expected_total, "books must balance");

    // Disaster strikes mid-afternoon — possibly mid-checkpoint.
    let books_before = db.fingerprint();
    db.crash()?;
    let report = db.recover()?;
    println!(
        "crash + recovery from checkpoint {} ({} txns replayed)",
        report.ckpt.raw(),
        report.txns_replayed
    );

    // Every committed transfer survived, none were torn, and the books
    // still balance to the cent.
    assert_eq!(db.fingerprint(), books_before);
    assert_eq!(total_balance(&db), expected_total);
    println!("audit passed: total balance {expected_total} ✓, state bit-identical ✓");

    let stats = db.txn_stats();
    println!(
        "stats: {} committed, {} application aborts, {} checkpoint-induced aborts",
        stats.committed, stats.aborted_other, stats.aborted_two_color
    );
    Ok(())
}
