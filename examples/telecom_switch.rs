//! Telephone-switch subscriber database: the other classic
//! memory-resident workload of the paper's era (call routing cannot
//! wait for disk). Subscriber records take a very high update rate
//! (call counters, last-seen cell); the switch has battery-backed RAM
//! for the log tail, so it runs FASTFUZZY — the paper's cheapest
//! algorithm (§4, Figure 4e) — and checkpoints continuously.
//!
//! The example also shows the *file-backed* engine: the database
//! survives a real process-level stop/restart through the on-disk
//! ping-pong backups and log.
//!
//! ```text
//! cargo run --example telecom_switch
//! ```

use mmdb::workload::{HotSetWorkload, Workload};
use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, RecordId};

fn config() -> MmdbConfig {
    let mut cfg = MmdbConfig::small(Algorithm::FastFuzzy);
    // FASTFUZZY is only sound with a stable (battery-backed) log tail.
    cfg.params.log_mode = LogMode::StableTail;
    cfg
}

fn main() -> mmdb::Result<()> {
    let dir = std::env::temp_dir().join("mmdb-telecom-switch");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- first "boot" of the switch -----------------------------------
    let (mut db, recovered) = Mmdb::open_dir(config(), &dir)?;
    assert!(recovered.is_none(), "fresh installation");
    let words = db.record_words();

    // Call traffic is heavily skewed: 90% of updates hit the busiest 10%
    // of subscribers.
    let mut calls = HotSetWorkload::new(db.n_records(), 3, 0.10, 0.90, 42);

    println!(
        "switch up: {} subscribers, FASTFUZZY + stable log tail",
        db.n_records()
    );
    let mut ckpts = 0;
    for minute in 0..10 {
        // a burst of call-detail updates...
        for _ in 0..200 {
            let spec = calls.next_txn();
            db.run_txn(&spec.materialize(words))?;
        }
        // ...then the continuous checkpointer takes its pass. FASTFUZZY
        // flushes dirty segments in place: no locks, no copies, no LSNs.
        let report = db.checkpoint()?;
        ckpts += 1;
        if minute % 3 == 0 {
            println!(
                "minute {minute}: checkpoint {} flushed {} dirty segments",
                report.ckpt.raw(),
                report.segments_flushed
            );
        }
    }
    let overhead = db.overhead_report();
    println!(
        "after {ckpts} checkpoints: overhead {:.0} instr/txn \
         (paper: 'only a few hundred instructions per transaction')",
        overhead.ckpt_overhead_per_txn()
    );

    // capture state, then "power failure": drop the engine cold
    let before = db.fingerprint();
    let committed = db.txn_stats().committed;
    drop(db);
    println!("power failure — process gone ({committed} transactions committed)");

    // ---- second boot: recovery happens inside open_dir -----------------
    let (db, recovered) = Mmdb::open_dir(config(), &dir)?;
    let report = recovered.expect("backups exist on disk");
    println!(
        "switch rebooted: recovered from checkpoint {} — read {} backup words \
         + {} log words in a modeled {:.1}s",
        report.ckpt.raw(),
        report.backup_words,
        report.log_words,
        report.total_seconds()
    );
    assert_eq!(db.fingerprint(), before, "no call records lost");
    println!("subscriber database bit-identical across the outage ✓");

    // spot-check a busy subscriber record survived
    let v = db.read_committed(RecordId(5))?;
    println!("subscriber 5 record head: {:#x}", v[0]);

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
