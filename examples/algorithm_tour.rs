//! A tour of all six checkpointing algorithms on the real engine: the
//! same workload runs against each, with the checkpointer interleaved,
//! and the engine's cost meters report the paper's metric — checkpoint
//! overhead in instructions per transaction — plus the behavioural
//! differences (two-color aborts, COU snapshot copies, log forces).
//!
//! This is Figure 4a re-enacted on the executable engine rather than the
//! analytic model (the `repro` binary does the model version; the
//! `simval` experiment does the full timed comparison).
//!
//! ```text
//! cargo run --release --example algorithm_tour
//! ```

use mmdb::types::CostCategory;
use mmdb::workload::{UniformWorkload, Workload};
use mmdb::{Algorithm, LogMode, Mmdb, MmdbConfig, StepOutcome};

struct TourRow {
    algorithm: Algorithm,
    overhead: f64,
    sync: f64,
    asynch: f64,
    aborts: u64,
    cou_copy_words: u64,
    ckpt_log_forces: u64,
}

fn tour(algorithm: Algorithm) -> mmdb::Result<TourRow> {
    let mut cfg = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    let mut db = Mmdb::open_in_memory(cfg)?;
    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), 5, 99);

    // seed the ping-pong copies, then measure
    for _ in 0..50 {
        let u = wl.next_txn().materialize(words);
        db.run_txn(&u)?;
    }
    db.checkpoint()?;
    db.checkpoint()?;
    db.meters().reset();
    let committed_before = db.txn_stats().committed;

    // measured phase: 3 checkpoints, each interleaved with transactions
    for _ in 0..3 {
        db.try_begin_checkpoint()?;
        loop {
            let u = wl.next_txn().materialize(words);
            db.run_txn(&u)?;
            if !db.is_checkpoint_active() {
                break;
            }
            match db.checkpoint_step()? {
                StepOutcome::Done { .. } => break,
                StepOutcome::WaitingForLog => db.force_log()?,
                StepOutcome::Progress { .. } => {}
            }
        }
    }

    let committed = db.txn_stats().committed - committed_before;
    let report = db.overhead_report();
    let sync_total = report.sync_ckpt.total() as f64;
    let async_total = report.async_ckpt.total() as f64;
    Ok(TourRow {
        algorithm,
        overhead: (sync_total + async_total) / committed as f64,
        sync: sync_total / committed as f64,
        asynch: async_total / committed as f64,
        aborts: db.txn_stats().aborted_two_color,
        cou_copy_words: report.sync_ckpt.get(CostCategory::Move),
        ckpt_log_forces: db.ckpt_stats().log_forces,
    })
}

fn main() -> mmdb::Result<()> {
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>9} {:>14} {:>11}",
        "algorithm", "instr/txn", "sync", "async", "2C-aborts", "COU-copy-words", "log-forces"
    );
    for algorithm in Algorithm::ALL {
        let row = tour(algorithm)?;
        println!(
            "{:<10} {:>14.0} {:>10.0} {:>10.0} {:>9} {:>14} {:>11}",
            row.algorithm.name(),
            row.overhead,
            row.sync,
            row.asynch,
            row.aborts,
            row.cou_copy_words,
            row.ckpt_log_forces
        );
    }
    println!(
        "\nexpected shape (paper Fig 4a/4e): 2C* carry abort cost; COU* ≈ FUZZYCOPY; \
         FASTFUZZY cheapest; only COU* copy segments on the transaction path"
    );
    Ok(())
}
