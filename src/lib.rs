//! **mmdb** — a crash-recoverable main-memory database with pluggable
//! checkpointing, reproducing Salem & Garcia-Molina, *Checkpointing
//! Memory-Resident Databases* (ICDE 1989).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * the engine ([`Mmdb`], [`MmdbConfig`]) from `mmdb-core`,
//! * the analytic model ([`model`]) that regenerates the paper's figures,
//! * the discrete-event simulator ([`sim`]) that cross-validates it,
//! * workload generators ([`workload`]),
//! * the network layer ([`wire`], [`server`]) for serving an engine over
//!   TCP and load-testing it,
//! * the sharding layer ([`shard`]) that hash-partitions the record
//!   space across independent engines with two-phase cross-shard commit,
//! * and the substrate crates ([`storage`], [`log`], [`disk`], [`txn`],
//!   [`checkpoint`], [`recovery`]) for users building their own harnesses.
//!
//! ```
//! use mmdb::{Algorithm, Mmdb, MmdbConfig, RecordId};
//!
//! let mut db = Mmdb::open_in_memory(MmdbConfig::small(Algorithm::CouCopy)).unwrap();
//! let txn = db.begin_txn().unwrap();
//! db.write(txn, RecordId(0), &vec![7; db.record_words()]).unwrap();
//! db.commit(txn).unwrap();
//! db.checkpoint().unwrap();
//! db.crash().unwrap();
//! db.recover().unwrap();
//! assert_eq!(db.read_committed(RecordId(0)).unwrap()[0], 7);
//! ```

#![warn(missing_docs)]

pub use mmdb_core::{
    Algorithm, AuditReport, AuditViolation, CheckerId, CheckpointStart, CkptMode, CkptReport,
    CkptStats, CommitDurability, LogMode, Meters, Mmdb, MmdbConfig, MmdbError, OverheadReport,
    Params, RecordId, RecoveryReport, Result, StepOutcome, TxnId, TxnRun, WalPolicy,
};

/// The analytic performance model and figure generators.
pub mod model {
    pub use mmdb_model::*;
}

/// The discrete-event simulation testbed.
pub mod sim {
    pub use mmdb_sim::*;
}

/// Workload generators (uniform, Zipf, hot-set, Poisson arrivals).
pub mod workload {
    pub use mmdb_workload::*;
}

/// Common types: parameters, identifiers, cost meters.
pub mod types {
    pub use mmdb_types::*;
}

/// The memory-resident storage substrate.
pub mod storage {
    pub use mmdb_storage::*;
}

/// The REDO log substrate.
pub mod log {
    pub use mmdb_log::*;
}

/// The backup-disk substrate (ping-pong stores, disk model).
pub mod disk {
    pub use mmdb_disk::*;
}

/// The transaction-table substrate.
pub mod txn {
    pub use mmdb_txn::*;
}

/// The checkpointing algorithms.
pub mod checkpoint {
    pub use mmdb_checkpoint::*;
}

/// Crash recovery.
pub mod recovery {
    pub use mmdb_recovery::*;
}

/// Online protocol-invariant auditing (event stream + checkers).
pub mod audit {
    pub use mmdb_audit::*;
}

/// Telemetry: tracing spans, latency histograms, metrics snapshots.
pub mod obs {
    pub use mmdb_obs::*;
}

/// Hash-partitioned sharding: per-shard logs, backups and
/// checkpointers, with two-phase cross-shard commit.
pub mod shard {
    pub use mmdb_shard::*;
}

/// Ranked locks: the global lock hierarchy, debug-build deadlock
/// detection, and per-lock contention telemetry (DESIGN.md §6.6).
pub mod sync {
    pub use mmdb_sync::*;
}

/// The network wire protocol and blocking client.
pub mod wire {
    pub use mmdb_wire::*;
}

/// The threaded TCP server and closed-loop network load driver.
pub mod server {
    pub use mmdb_server::*;
}

/// Log-shipping replication: primary-side shipping, standby replay,
/// promotion, and the replication benchmark report.
pub mod repl {
    pub use mmdb_repl::*;
}

/// Recovery at scale: parallel partitioned replay, log compaction with
/// compressed cold storage, and the recovery benchmark report.
pub mod rescale {
    pub use mmdb_rescale::*;
}
